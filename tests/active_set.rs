//! Differential and property tests for the active-set tick engine:
//! a cluster ticked with the lazy active-set engine must be
//! *bit-identical* to the full-scan reference engine under arbitrary
//! admit/remove/fault/recovery/warp churn, at every worker count — same
//! per-tick reports, same snapshot bytes — and the active set itself
//! must satisfy the park invariant (no node that needs per-tick
//! simulation is ever parked, and every parked node is provably idle).

use hyscale::cluster::{
    Cluster, ClusterConfig, Cohort, ContainerId, ContainerSpec, Cores, MemMb, NodeId, NodeSpec,
    Request, ServiceId,
};
use hyscale::core::{AlgorithmKind, ScenarioBuilder};
use hyscale::sim::{SimDuration, SimRng, SimTime, SnapWriter};
use hyscale::workload::{LoadPattern, ServiceProfile};

const NODES: usize = 8;
const SERVICES: u32 = 3;

/// Twin clusters that only differ in the `active_set` engine flag.
fn twins(workers: usize) -> (Cluster, Cluster) {
    let enabled_cfg = ClusterConfig::default();
    assert!(enabled_cfg.active_set, "active set should default on");
    let disabled_cfg = ClusterConfig {
        active_set: false,
        ..ClusterConfig::default()
    };
    let mut enabled = Cluster::new(enabled_cfg);
    let mut disabled = Cluster::new(disabled_cfg);
    enabled.set_parallelism(workers);
    disabled.set_parallelism(workers);
    for _ in 0..NODES {
        enabled.add_node(NodeSpec::uniform_worker());
        disabled.add_node(NodeSpec::uniform_worker());
    }
    (enabled, disabled)
}

/// Applies one churn op to both clusters and asserts identical outcomes.
/// `containers` tracks ids the op stream may target (including removed
/// ones — errors must match too).
fn churn(
    rng: &mut SimRng,
    enabled: &mut Cluster,
    disabled: &mut Cluster,
    containers: &mut Vec<ContainerId>,
    now: SimTime,
) {
    match rng.uniform_usize(12) {
        0 | 1 => {
            let node = NodeId::new(rng.uniform_usize(NODES) as u32);
            let svc = ServiceId::new(rng.uniform_usize(SERVICES as usize) as u32);
            let spec = ContainerSpec::new(svc)
                .with_queue_cap(64)
                .with_startup_secs(if rng.uniform_usize(3) == 0 { 0.3 } else { 0.0 });
            let a = enabled.start_container(node, spec.clone(), now);
            let b = disabled.start_container(node, spec, now);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            if let Ok(id) = a {
                containers.push(id);
            }
        }
        2 if !containers.is_empty() => {
            let id = containers[rng.uniform_usize(containers.len())];
            let a = enabled.remove_container(id, now);
            let b = disabled.remove_container(id, now);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        3..=6 if !containers.is_empty() => {
            let id = containers[rng.uniform_usize(containers.len())];
            let svc = ServiceId::new(rng.uniform_usize(SERVICES as usize) as u32);
            let req = Request::new(svc, now, rng.uniform_range(0.01, 0.1), MemMb(2.0), 0.0);
            let a = enabled.admit_request(id, req.clone(), now);
            let b = disabled.admit_request(id, req, now);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        7 if !containers.is_empty() => {
            let id = containers[rng.uniform_usize(containers.len())];
            let svc = ServiceId::new(rng.uniform_usize(SERVICES as usize) as u32);
            let count = 1 + rng.uniform_usize(16) as u64;
            let cohort = Cohort::new(
                svc,
                now,
                count,
                rng.uniform_range(0.005, 0.05),
                MemMb(0.5),
                0.0,
            );
            let a = enabled.admit_cohort(id, cohort.clone(), now);
            let b = disabled.admit_cohort(id, cohort, now);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        8 => {
            // Fault: crash a node (all its replicas die) …
            let node = NodeId::new(rng.uniform_usize(NODES) as u32);
            let a = enabled.crash_node(node, now);
            let b = disabled.crash_node(node, now);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        9 => {
            // … recovery: reboot it (containers did not survive).
            let node = NodeId::new(rng.uniform_usize(NODES) as u32);
            let a = enabled.reboot_node(node);
            let b = disabled.reboot_node(node);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        10 => {
            let node = NodeId::new(rng.uniform_usize(NODES) as u32);
            let f = rng.uniform_range(0.3, 1.0);
            let a = enabled.set_nic_factor(node, f);
            let b = disabled.set_nic_factor(node, f);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        11 if !containers.is_empty() => {
            let id = containers[rng.uniform_usize(containers.len())];
            let cpu = Cores(rng.uniform_range(0.2, 1.5));
            let mem = MemMb(rng.uniform_range(128.0, 512.0));
            let a = enabled.update_container(id, cpu, mem);
            let b = disabled.update_container(id, cpu, mem);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        _ => {}
    }
}

/// The park invariant, brute-forced from raw container state:
/// * soundness — every node that needs per-tick simulation (anything in
///   flight, a slot still starting up, or a live antagonist) is in the
///   active set;
/// * safety — every node *outside* the active set is provably idle, so
///   the closed-form replay is valid.
fn assert_active_set_invariant(cluster: &Cluster, now: SimTime, tick: u64) {
    let active = cluster.active_node_indices();
    let is_active = |idx: u32| active.binary_search(&idx).is_ok();
    // Per-node flags brute-forced from raw container state.
    let mut needs_tick = [false; NODES];
    let mut idle_parkable = [true; NODES];
    for c in cluster.containers() {
        let n = c.node().as_usize();
        if c.in_flight_count() > 0 || c.ready_at() > now || (c.spec().antagonist && c.live(now)) {
            needs_tick[n] = true;
        }
        if c.in_flight_count() > 0 || c.spec().antagonist || c.ready_at() > now {
            idle_parkable[n] = false;
        }
    }
    for idx in 0..NODES {
        if needs_tick[idx] {
            assert!(
                is_active(idx as u32),
                "tick {tick}: node {idx} needs simulation but is parked"
            );
        }
        if !is_active(idx as u32) {
            assert!(
                idle_parkable[idx],
                "tick {tick}: node {idx} is parked but not provably idle"
            );
        }
    }
}

/// Snapshot bytes of a cluster, flushing lazy state on a clone first so
/// the original's parked nodes stay parked.
fn snapshot_bytes(cluster: &Cluster) -> Vec<u8> {
    let mut clone = cluster.clone();
    clone.flush_pending();
    let mut w = SnapWriter::new();
    clone.snapshot_write(&mut w);
    w.finish()
}

fn run_twin(seed: u64, workers: usize) {
    let mut rng = SimRng::seed_from(seed);
    let (mut enabled, mut disabled) = twins(workers);
    let mut containers = Vec::new();
    let mut now = SimTime::ZERO;
    let mut dt = SimDuration::from_millis(100);

    for tick in 0..400u64 {
        // Exercise the dt-constancy flush: the span length changes
        // mid-run and parked spans must replay under the old dt.
        if tick == 173 {
            dt = SimDuration::from_millis(50);
        }
        churn(&mut rng, &mut enabled, &mut disabled, &mut containers, now);

        if tick % 89 == 88 {
            // Time warp: both engines must agree on how far they can
            // jump, and the enabled engine must flush before warping.
            let a = enabled.advance_warp(now, dt, 40);
            let b = disabled.advance_warp(now, dt, 40);
            assert_eq!(a, b, "tick {tick}: warp span diverged");
            for _ in 0..a {
                now += dt;
            }
        }

        let ra = enabled.advance(now, dt);
        let rb = disabled.advance(now, dt);
        assert_eq!(
            ra, rb,
            "tick {tick} diverged (seed {seed:#x}, workers {workers})"
        );
        assert_eq!(enabled.total_in_flight(), disabled.total_in_flight());
        now += dt;

        assert_active_set_invariant(&enabled, now, tick);

        if tick % 50 == 49 {
            assert_eq!(
                snapshot_bytes(&enabled),
                snapshot_bytes(&disabled),
                "tick {tick}: snapshot bytes diverged (seed {seed:#x}, workers {workers})"
            );
        }
    }

    // Final full-state comparison after draining everything.
    enabled.flush_pending();
    assert_eq!(snapshot_bytes(&enabled), snapshot_bytes(&disabled));
}

#[test]
fn active_set_engine_is_bit_identical_under_churn() {
    for &seed in &[0xAC71u64, 0xBEEF, 0x5EED] {
        for &workers in &[1usize, 2, 4] {
            run_twin(seed, workers);
        }
    }
}

/// Driver-level twin: full scenario runs (scaling, recovery, faults,
/// warp) across all four benchmark algorithms must produce identical
/// reports with the active-set engine on and off.
#[test]
fn driver_reports_identical_with_and_without_active_set() {
    let run = |kind: AlgorithmKind, active_set: bool| {
        ScenarioBuilder::new("active-set-twin")
            .nodes(6)
            .services(
                3,
                ServiceProfile::Mixed,
                LoadPattern::high_burst().scaled(6.0),
            )
            .algorithm(kind)
            .duration_secs(90.0)
            .seed(11)
            .parallelism(2)
            .cluster_config(ClusterConfig {
                active_set,
                ..ClusterConfig::default()
            })
            .run()
            .expect("scenario runs")
    };
    for kind in [
        AlgorithmKind::Kubernetes,
        AlgorithmKind::Network,
        AlgorithmKind::HyScaleCpu,
        AlgorithmKind::HyScaleCpuMem,
    ] {
        let on = run(kind, true);
        let off = run(kind, false);
        assert_eq!(
            format!("{on:?}"),
            format!("{off:?}"),
            "algorithm {kind:?} diverged between engines"
        );
    }
}
