//! Property-style tests on the core invariants, driven by the repo's own
//! deterministic [`SimRng`] instead of an external property-testing crate
//! (the offline build cannot reach crates.io).
//!
//! DESIGN.md §8 lists the invariants; each gets a randomized-but-seeded
//! check here: resource conservation in the allocators, memory-model
//! sanity, load pattern envelopes, algorithm action well-formedness, and
//! end-to-end accounting conservation in the driver.

use hyscale::cluster::{
    ContainerId, Cores, CpuAllocator, CpuDemand, MemMb, MemoryModel, NodeId, OverheadModel,
    ServiceId,
};
use hyscale::core::{
    AlgorithmKind, ClusterView, HpaConfig, HyScaleConfig, NodeView, ReplicaView, ScalingAction,
    ScenarioBuilder, ServiceView,
};
use hyscale::sim::{SimRng, SimTime};
use hyscale::workload::{LoadPattern, ServiceProfile};

// ---------------------------------------------------------------------
// CPU / network allocator invariants
// ---------------------------------------------------------------------

fn random_demands(rng: &mut SimRng) -> Vec<CpuDemand> {
    let count = rng.uniform_usize(12);
    (0..count)
        .map(|i| {
            let demand = rng.uniform_range(0.0, 50.0);
            let weight = rng.uniform_range(0.0, 4.0);
            let cap = rng.uniform_range(0.1, 100.0);
            CpuDemand::new(ContainerId::new(i as u32), demand, weight).with_cap(cap)
        })
        .collect()
}

#[test]
fn allocator_never_exceeds_capacity() {
    let mut rng = SimRng::seed_from(0xA110C);
    for _ in 0..256 {
        let capacity = rng.uniform_range(0.0, 64.0);
        let demands = random_demands(&mut rng);
        let grants = CpuAllocator::allocate(capacity, &demands);
        let total: f64 = grants.iter().map(|g| g.granted).sum();
        assert!(total <= capacity + 1e-6, "granted {total} of {capacity}");
    }
}

#[test]
fn allocator_never_exceeds_demand_or_cap() {
    let mut rng = SimRng::seed_from(0xA110D);
    for _ in 0..256 {
        let capacity = rng.uniform_range(0.0, 64.0);
        let demands = random_demands(&mut rng);
        let grants = CpuAllocator::allocate(capacity, &demands);
        for (grant, demand) in grants.iter().zip(&demands) {
            assert!(grant.granted <= demand.demand.max(0.0) + 1e-9);
            assert!(grant.granted <= demand.cap + 1e-9);
            assert!(grant.granted >= 0.0);
        }
    }
}

#[test]
fn allocator_is_work_conserving() {
    // If aggregate (weighted-eligible) demand saturates capacity, the
    // allocator must hand out (almost) all of it.
    let mut rng = SimRng::seed_from(0xA110E);
    for _ in 0..256 {
        let capacity = rng.uniform_range(0.1, 64.0);
        let demands = random_demands(&mut rng);
        let grants = CpuAllocator::allocate(capacity, &demands);
        let total: f64 = grants.iter().map(|g| g.granted).sum();
        let effective: f64 = demands.iter().map(|d| d.demand.max(0.0).min(d.cap)).sum();
        let expected = capacity.min(effective);
        assert!(
            total >= expected - 1e-6,
            "granted {total}, expected {expected}"
        );
    }
}

// ---------------------------------------------------------------------
// Memory model invariants
// ---------------------------------------------------------------------

#[test]
fn memory_pressure_is_sane() {
    let mut rng = SimRng::seed_from(0x3E3);
    let model = MemoryModel::new(OverheadModel::default());
    for _ in 0..512 {
        let resident = rng.uniform_range(0.0, 10_000.0);
        let limit = rng.uniform_range(0.0, 10_000.0);
        let p = model.pressure(MemMb(resident), MemMb(limit));
        assert!(p.swapped.get() >= 0.0);
        assert!(p.swapped.get() <= p.resident.get() + 1e-9);
        assert!((0.0..=1.0).contains(&p.swapped_fraction));
        assert!(p.slowdown >= 1.0);
    }
}

#[test]
fn swap_slowdown_is_monotone() {
    let mut rng = SimRng::seed_from(0x3E4);
    let m = OverheadModel::default();
    for _ in 0..512 {
        let f1 = rng.uniform_f64();
        let f2 = rng.uniform_f64();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        assert!(m.swap_slowdown(lo) <= m.swap_slowdown(hi) + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Load pattern invariants
// ---------------------------------------------------------------------

fn random_pattern(rng: &mut SimRng) -> LoadPattern {
    match rng.uniform_usize(4) {
        0 => LoadPattern::Constant {
            rate: rng.uniform_range(0.0, 50.0),
        },
        1 => LoadPattern::Wave {
            base: rng.uniform_range(0.0, 20.0),
            amplitude: rng.uniform_range(0.0, 30.0),
            period_secs: rng.uniform_range(1.0, 1000.0),
        },
        2 => LoadPattern::Burst {
            base: rng.uniform_range(0.0, 20.0),
            peak: rng.uniform_range(0.0, 50.0),
            period_secs: rng.uniform_range(1.0, 1000.0),
            duty: rng.uniform_range(0.01, 0.99),
        },
        _ => {
            let samples = (0..rng.uniform_usize(20))
                .map(|_| rng.uniform_range(0.0, 40.0))
                .collect();
            LoadPattern::Trace {
                samples,
                interval_secs: rng.uniform_range(0.1, 600.0),
            }
        }
    }
}

#[test]
fn rate_never_exceeds_envelope() {
    let mut rng = SimRng::seed_from(0x10AD);
    for _ in 0..512 {
        let pattern = random_pattern(&mut rng);
        let t = rng.uniform_range(0.0, 10_000.0);
        let rate = pattern.rate_at(SimTime::from_secs(t));
        assert!(rate >= 0.0);
        assert!(rate <= pattern.peak_rate() + 1e-9);
    }
}

#[test]
fn scaling_scales_the_envelope() {
    let mut rng = SimRng::seed_from(0x10AE);
    for _ in 0..512 {
        let pattern = random_pattern(&mut rng);
        let factor = rng.uniform_range(0.0, 4.0);
        let scaled = pattern.scaled(factor);
        assert!((scaled.peak_rate() - pattern.peak_rate() * factor).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------
// Algorithm action well-formedness over arbitrary views
// ---------------------------------------------------------------------

fn random_view(rng: &mut SimRng) -> ClusterView {
    let service = ServiceId::new(0);
    let replica_count = 1 + rng.uniform_usize(5);
    let replicas: Vec<ReplicaView> = (0..replica_count)
        .map(|i| ReplicaView {
            container: ContainerId::new(i as u32),
            node: NodeId::new(rng.uniform_usize(3) as u32),
            cpu_used: Cores(rng.uniform_range(0.0, 4.0)),
            cpu_requested: Cores(rng.uniform_range(0.05, 4.0)),
            mem_used: MemMb(rng.uniform_range(0.0, 2048.0)),
            mem_limit: MemMb(rng.uniform_range(32.0, 2048.0)),
            net_used: hyscale::cluster::Mbps(0.0),
            net_requested: hyscale::cluster::Mbps(50.0),
            in_flight: 1,
            swapping: false,
            ready: true,
            age_ticks: 0,
        })
        .collect();
    let nodes: Vec<(f64, f64)> = (0..3)
        .map(|_| (rng.uniform_range(0.0, 8.0), rng.uniform_range(0.0, 8192.0)))
        .collect();
    let hosted: Vec<Vec<ServiceId>> = (0..3)
        .map(|n| {
            if replicas.iter().any(|r| r.node == NodeId::new(n)) {
                vec![service]
            } else {
                vec![]
            }
        })
        .collect();
    ClusterView {
        now: SimTime::from_secs(100.0),
        period_secs: 5.0,
        services: vec![ServiceView {
            service,
            replicas,
            template_cpu: Cores(0.5),
            template_mem: MemMb(256.0),
            base_mem: MemMb(64.0),
        }],
        nodes: (0..3u32)
            .map(|n| NodeView {
                node: NodeId::new(n),
                free_cpu: Cores(nodes[n as usize].0),
                free_mem: MemMb(nodes[n as usize].1),
                hosted_services: hosted[n as usize].clone(),
            })
            .collect(),
        staleness_budget_ticks: 1,
    }
}

/// Checks the action list is well-formed with respect to the view.
fn assert_actions_well_formed(view: &ClusterView, actions: &[ScalingAction]) {
    let known: Vec<ContainerId> = view.services[0]
        .replicas
        .iter()
        .map(|r| r.container)
        .collect();
    let min_replicas = 1;
    let mut removed = 0usize;
    for action in actions {
        match action {
            ScalingAction::Update {
                container,
                cpu,
                mem,
            } => {
                assert!(known.contains(container), "update of unknown {container}");
                if let Some(c) = cpu {
                    assert!(c.get() >= 0.0 && c.get().is_finite());
                }
                if let Some(m) = mem {
                    assert!(m.get() >= 0.0 && m.get().is_finite());
                }
            }
            ScalingAction::Remove { container } => {
                assert!(known.contains(container));
                removed += 1;
            }
            ScalingAction::Spawn { node, cpu, mem, .. } => {
                assert!(view.node(*node).is_some(), "spawn on unknown node");
                assert!(cpu.get() > 0.0 && cpu.get().is_finite());
                assert!(mem.get() > 0.0 && mem.get().is_finite());
            }
            ScalingAction::SetNetCap { container, .. } => {
                assert!(known.contains(container));
            }
        }
    }
    assert!(
        view.services[0].replicas.len().saturating_sub(removed) >= min_replicas,
        "removals would violate min replicas"
    );
}

#[test]
fn all_algorithms_emit_well_formed_actions() {
    let mut rng = SimRng::seed_from(0xAC7);
    for _ in 0..64 {
        let view = random_view(&mut rng);
        let kinds = AlgorithmKind::ALL
            .into_iter()
            .chain([AlgorithmKind::VerticalOnly]);
        for kind in kinds {
            let mut algo = kind.build(HpaConfig::default(), HyScaleConfig::default());
            let actions = algo.decide(&view);
            assert_actions_well_formed(&view, &actions);
        }
    }
}

#[test]
fn vertical_only_never_changes_replica_counts() {
    let mut rng = SimRng::seed_from(0xAC8);
    for _ in 0..64 {
        let view = random_view(&mut rng);
        let mut algo =
            AlgorithmKind::VerticalOnly.build(HpaConfig::default(), HyScaleConfig::default());
        let actions = algo.decide(&view);
        assert!(actions.iter().all(|a| a.is_vertical()));
    }
}

#[test]
fn hyscale_acquisition_respects_node_free_cpu() {
    let mut rng = SimRng::seed_from(0xAC9);
    for _ in 0..64 {
        let view = random_view(&mut rng);
        let mut algo =
            AlgorithmKind::HyScaleCpu.build(HpaConfig::default(), HyScaleConfig::default());
        let actions = algo.decide(&view);
        // Net vertical CPU change per node (acquisitions minus in-period
        // reclamations, plus capacity returned by removals and taken by
        // spawns) must not exceed what the node advertised as free: the
        // plan may never overcommit a machine.
        for node in &view.nodes {
            let mut net = 0.0;
            for action in &actions {
                match action {
                    ScalingAction::Update {
                        container,
                        cpu: Some(new_cpu),
                        ..
                    } => {
                        if let Some(replica) = view.services[0]
                            .replicas
                            .iter()
                            .find(|r| r.container == *container && r.node == node.node)
                        {
                            net += new_cpu.get() - replica.cpu_requested.get();
                        }
                    }
                    ScalingAction::Remove { container } => {
                        if let Some(replica) = view.services[0]
                            .replicas
                            .iter()
                            .find(|r| r.container == *container && r.node == node.node)
                        {
                            net -= replica.cpu_requested.get();
                        }
                    }
                    ScalingAction::Spawn { node: n, cpu, .. } if *n == node.node => {
                        net += cpu.get();
                    }
                    _ => {}
                }
            }
            assert!(
                net <= node.free_cpu.get() + 1e-6,
                "{}: net CPU change {net} exceeds {} free",
                node.node,
                node.free_cpu.get()
            );
        }
    }
}

#[test]
fn kubernetes_replica_targets_stay_in_bounds() {
    let mut rng = SimRng::seed_from(0xACA);
    for _ in 0..64 {
        let view = random_view(&mut rng);
        let config = HpaConfig {
            min_replicas: 1,
            max_replicas: 4,
            ..HpaConfig::default()
        };
        let mut algo = AlgorithmKind::Kubernetes.build(config, HyScaleConfig::default());
        let actions = algo.decide(&view);
        let current = view.services[0].replicas.len();
        let spawns = actions
            .iter()
            .filter(|a| matches!(a, ScalingAction::Spawn { .. }))
            .count();
        let removals = actions
            .iter()
            .filter(|a| matches!(a, ScalingAction::Remove { .. }))
            .count();
        assert!(
            current + spawns <= 4 || spawns == 0,
            "over max: {current}+{spawns}"
        );
        assert!(current.saturating_sub(removals) >= 1, "under min");
        // Never both directions in one decision for one service.
        assert!(spawns == 0 || removals == 0);
    }
}

// ---------------------------------------------------------------------
// End-to-end accounting conservation
// ---------------------------------------------------------------------

fn small_run(kind: AlgorithmKind, seed: u64, rate: f64) -> hyscale::core::RunReport {
    ScenarioBuilder::new("prop-e2e")
        .nodes(2)
        .services(1, ServiceProfile::CpuBound, LoadPattern::Constant { rate })
        .duration_secs(60.0)
        .algorithm(kind)
        .seed(seed)
        .run()
        .expect("runs")
}

#[test]
fn request_accounting_conserves() {
    let mut rng = SimRng::seed_from(0xE2E);
    for _ in 0..3 {
        let seed = rng.next_u64() % 1000;
        let rate = rng.uniform_range(0.5, 12.0);
        for kind in AlgorithmKind::ALL {
            let report = small_run(kind, seed, rate);
            let accounted = report.requests.completed
                + report.requests.failures.total()
                + report.requests.outstanding();
            assert_eq!(accounted, report.requests.issued);
            // Per-service totals agree with the overall record.
            let per_service: u64 = report.per_service.values().map(|o| o.issued).sum();
            assert_eq!(per_service, report.requests.issued);
        }
    }
}

#[test]
fn same_seed_is_bit_identical() {
    for seed in [7u64, 421] {
        let a = small_run(AlgorithmKind::HyScaleCpuMem, seed, 4.0);
        let b = small_run(AlgorithmKind::HyScaleCpuMem, seed, 4.0);
        assert_eq!(a.requests.issued, b.requests.issued);
        assert_eq!(a.requests.completed, b.requests.completed);
        assert!((a.requests.mean_response_secs() - b.requests.mean_response_secs()).abs() < 1e-15);
    }
}

// ---------------------------------------------------------------------
// RNG distribution sanity (cross-crate: sim consumed by workload)
// ---------------------------------------------------------------------

#[test]
fn rng_samples_stay_in_domain() {
    for seed in 0u64..512 {
        let mut rng = SimRng::seed_from(seed * 19 + 1);
        assert!((0.0..1.0).contains(&rng.uniform_f64()));
        assert!(rng.exponential(2.0) > 0.0);
        assert!(rng.pareto(1.0, 2.0) >= 1.0);
        let n = rng.uniform_usize(7);
        assert!(n < 7);
    }
}

// ---------------------------------------------------------------------
// Flow-cohort member conservation
// ---------------------------------------------------------------------

use hyscale::cluster::{Cluster, ClusterConfig, Cohort, ContainerSpec, NodeSpec, TickReport};
use hyscale::sim::SimDuration;

/// Runs a randomized churn of cohort admissions, in-place splits, merges,
/// and ticks, then drains the cluster. Returns
/// `(issued, completed, failed, digest)` where the digest is an
/// order-sensitive fold of every completion and failure.
fn cohort_churn(seed: u64, workers: usize) -> (u64, u64, u64, u64) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.set_parallelism(workers);
    let mut containers = Vec::new();
    for _ in 0..2 {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        for c in 0..3u32 {
            let spec = ContainerSpec::new(ServiceId::new(c))
                .with_queue_cap(4096)
                .with_startup_secs(0.0);
            containers.push(
                cluster
                    .start_container(node, spec, SimTime::ZERO)
                    .expect("placement fits"),
            );
        }
    }

    let mut rng = SimRng::seed_from(seed);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    let mut report = TickReport::default();
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut digest = 0u64;

    let drain = |cluster: &mut Cluster,
                 report: &mut TickReport,
                 completed: &mut u64,
                 failed: &mut u64,
                 digest: &mut u64| {
        for done in report.completed.drain(..) {
            *completed += done.count;
            *digest = digest
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(done.id.index())
                .wrapping_add(done.count)
                .wrapping_add(done.response_time.as_secs().to_bits());
        }
        for gone in report.failed.drain(..) {
            *failed += gone.count;
            *digest = digest
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(gone.id.index())
                .wrapping_add(gone.count.wrapping_mul(3));
        }
        *completed + *failed + cluster.total_in_flight()
    };

    for _ in 0..400 {
        match rng.uniform_usize(8) {
            0..=3 => {
                let idx = rng.uniform_usize(containers.len());
                let id = containers[idx];
                let count = 1 + rng.uniform_usize(64) as u64;
                let cpu = rng.uniform_range(0.001, 0.02);
                let net = rng.uniform_range(0.0, 0.05);
                let service = cluster.container(id).expect("live").spec().service;
                let cohort = Cohort::new(service, now, count, cpu, MemMb(0.1), net);
                if cluster.admit_cohort(id, cohort, now).is_ok() {
                    issued += count;
                }
            }
            4 => {
                // Split a random resident cohort at a random point.
                let idx = rng.uniform_usize(containers.len());
                let id = containers[idx];
                let slots = cluster.container(id).map_or(0, |c| c.cohort_count());
                if slots > 0 {
                    let slot = rng.uniform_usize(slots);
                    let left = 1 + rng.uniform_usize(64) as u64;
                    let _ = cluster.split_in_flight_cohort(id, slot, left);
                }
            }
            5 => {
                // Try to re-join two random slots (often refused —
                // non-adjacent ids — which must also conserve members).
                let idx = rng.uniform_usize(containers.len());
                let id = containers[idx];
                let slots = cluster.container(id).map_or(0, |c| c.cohort_count());
                if slots > 1 {
                    let i = rng.uniform_usize(slots);
                    let j = rng.uniform_usize(slots);
                    let _ = cluster.merge_in_flight_cohorts(id, i, j);
                }
            }
            _ => {
                cluster.advance_into(now, dt, &mut report);
                let accounted = drain(
                    &mut cluster,
                    &mut report,
                    &mut completed,
                    &mut failed,
                    &mut digest,
                );
                assert_eq!(accounted, issued, "conservation broke mid-churn");
                now += dt;
            }
        }
    }

    // Drain to empty: default 30 s timeouts bound the tail, so every
    // member must resolve well before the tick cap.
    let mut guard = 0;
    while cluster.total_in_flight() > 0 {
        cluster.advance_into(now, dt, &mut report);
        let accounted = drain(
            &mut cluster,
            &mut report,
            &mut completed,
            &mut failed,
            &mut digest,
        );
        assert_eq!(accounted, issued, "conservation broke during drain");
        now += dt;
        guard += 1;
        assert!(guard < 5_000, "drain did not converge");
    }
    (issued, completed, failed, digest)
}

#[test]
fn cohort_churn_conserves_members_across_seeds() {
    for seed in [1u64, 7, 42] {
        let (issued, completed, failed, _) = cohort_churn(seed, 1);
        assert!(issued > 1_000, "churn issued too little: {issued}");
        assert_eq!(
            issued,
            completed + failed,
            "seed {seed}: generated members must all complete or fail"
        );
    }
}

#[test]
fn cohort_churn_is_bit_identical_across_worker_counts() {
    for seed in [1u64, 7, 42] {
        let serial = cohort_churn(seed, 1);
        for workers in [2usize, 4] {
            assert_eq!(
                serial,
                cohort_churn(seed, workers),
                "seed {seed}: {workers}-worker churn diverged from serial"
            );
        }
    }
}
