//! Property-based tests on the core invariants (proptest).
//!
//! DESIGN.md §8 lists the invariants; each gets a property here:
//! resource conservation in the allocators, memory-model sanity, load
//! pattern envelopes, algorithm action well-formedness, and end-to-end
//! accounting conservation in the driver.

use proptest::prelude::*;

use hyscale::cluster::{
    ContainerId, Cores, CpuAllocator, CpuDemand, MemMb, MemoryModel, NodeId, OverheadModel,
    ServiceId,
};
use hyscale::core::{
    AlgorithmKind, ClusterView, HpaConfig, HyScaleConfig, NodeView, ReplicaView, ScalingAction,
    ScenarioBuilder, ServiceView,
};
use hyscale::sim::{SimRng, SimTime};
use hyscale::workload::{LoadPattern, ServiceProfile};

// ---------------------------------------------------------------------
// CPU / network allocator invariants
// ---------------------------------------------------------------------

fn demand_strategy() -> impl Strategy<Value = Vec<CpuDemand>> {
    prop::collection::vec(
        (0.0f64..50.0, 0.0f64..4.0, 0.1f64..100.0)
            .prop_map(|(demand, weight, cap)| (demand, weight, cap)),
        0..12,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (demand, weight, cap))| {
                CpuDemand::new(ContainerId::new(i as u32), demand, weight).with_cap(cap)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn allocator_never_exceeds_capacity(capacity in 0.0f64..64.0, demands in demand_strategy()) {
        let grants = CpuAllocator::allocate(capacity, &demands);
        let total: f64 = grants.iter().map(|g| g.granted).sum();
        prop_assert!(total <= capacity + 1e-6, "granted {total} of {capacity}");
    }

    #[test]
    fn allocator_never_exceeds_demand_or_cap(capacity in 0.0f64..64.0, demands in demand_strategy()) {
        let grants = CpuAllocator::allocate(capacity, &demands);
        for (grant, demand) in grants.iter().zip(&demands) {
            prop_assert!(grant.granted <= demand.demand.max(0.0) + 1e-9);
            prop_assert!(grant.granted <= demand.cap + 1e-9);
            prop_assert!(grant.granted >= 0.0);
        }
    }

    #[test]
    fn allocator_is_work_conserving(capacity in 0.1f64..64.0, demands in demand_strategy()) {
        // If aggregate (weighted-eligible) demand saturates capacity, the
        // allocator must hand out (almost) all of it.
        let grants = CpuAllocator::allocate(capacity, &demands);
        let total: f64 = grants.iter().map(|g| g.granted).sum();
        let effective: f64 = demands.iter().map(|d| d.demand.max(0.0).min(d.cap)).sum();
        let expected = capacity.min(effective);
        prop_assert!(total >= expected - 1e-6, "granted {total}, expected {expected}");
    }
}

// ---------------------------------------------------------------------
// Memory model invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn memory_pressure_is_sane(resident in 0.0f64..10_000.0, limit in 0.0f64..10_000.0) {
        let model = MemoryModel::new(OverheadModel::default());
        let p = model.pressure(MemMb(resident), MemMb(limit));
        prop_assert!(p.swapped.get() >= 0.0);
        prop_assert!(p.swapped.get() <= p.resident.get() + 1e-9);
        prop_assert!((0.0..=1.0).contains(&p.swapped_fraction));
        prop_assert!(p.slowdown >= 1.0);
    }

    #[test]
    fn swap_slowdown_is_monotone(f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let m = OverheadModel::default();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(m.swap_slowdown(lo) <= m.swap_slowdown(hi) + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Load pattern invariants
// ---------------------------------------------------------------------

fn pattern_strategy() -> impl Strategy<Value = LoadPattern> {
    prop_oneof![
        (0.0f64..50.0).prop_map(|rate| LoadPattern::Constant { rate }),
        (0.0f64..20.0, 0.0f64..30.0, 1.0f64..1000.0).prop_map(|(base, amplitude, period_secs)| {
            LoadPattern::Wave {
                base,
                amplitude,
                period_secs,
            }
        }),
        (0.0f64..20.0, 0.0f64..50.0, 1.0f64..1000.0, 0.01f64..0.99).prop_map(
            |(base, peak, period_secs, duty)| LoadPattern::Burst {
                base,
                peak,
                period_secs,
                duty
            }
        ),
        (prop::collection::vec(0.0f64..40.0, 0..20), 0.1f64..600.0).prop_map(
            |(samples, interval_secs)| LoadPattern::Trace {
                samples,
                interval_secs
            }
        ),
    ]
}

proptest! {
    #[test]
    fn rate_never_exceeds_envelope(pattern in pattern_strategy(), t in 0.0f64..10_000.0) {
        let rate = pattern.rate_at(SimTime::from_secs(t));
        prop_assert!(rate >= 0.0);
        prop_assert!(rate <= pattern.peak_rate() + 1e-9);
    }

    #[test]
    fn scaling_scales_the_envelope(pattern in pattern_strategy(), factor in 0.0f64..4.0) {
        let scaled = pattern.scaled(factor);
        prop_assert!((scaled.peak_rate() - pattern.peak_rate() * factor).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------
// Algorithm action well-formedness over arbitrary views
// ---------------------------------------------------------------------

fn view_strategy() -> impl Strategy<Value = ClusterView> {
    let replica = (
        0.0f64..4.0,
        0.05f64..4.0,
        0.0f64..2048.0,
        32.0f64..2048.0,
        0usize..3,
    )
        .prop_map(|(cpu_used, cpu_req, mem_used, mem_limit, node)| {
            (cpu_used, cpu_req, mem_used, mem_limit, node)
        });
    (
        prop::collection::vec(replica, 1..6),
        prop::collection::vec((0.0f64..8.0, 0.0f64..8192.0), 3),
    )
        .prop_map(|(replicas, nodes)| {
            let service = ServiceId::new(0);
            let replicas: Vec<ReplicaView> = replicas
                .into_iter()
                .enumerate()
                .map(
                    |(i, (cpu_used, cpu_req, mem_used, mem_limit, node))| ReplicaView {
                        container: ContainerId::new(i as u32),
                        node: NodeId::new(node as u32),
                        cpu_used: Cores(cpu_used),
                        cpu_requested: Cores(cpu_req),
                        mem_used: MemMb(mem_used),
                        mem_limit: MemMb(mem_limit),
                        net_used: hyscale::cluster::Mbps(0.0),
                        net_requested: hyscale::cluster::Mbps(50.0),
                        in_flight: 1,
                        swapping: false,
                        ready: true,
                    },
                )
                .collect();
            let hosted: Vec<Vec<ServiceId>> = (0..3)
                .map(|n| {
                    if replicas.iter().any(|r| r.node == NodeId::new(n)) {
                        vec![service]
                    } else {
                        vec![]
                    }
                })
                .collect();
            ClusterView {
                now: SimTime::from_secs(100.0),
                period_secs: 5.0,
                services: vec![ServiceView {
                    service,
                    replicas,
                    template_cpu: Cores(0.5),
                    template_mem: MemMb(256.0),
                    base_mem: MemMb(64.0),
                }],
                nodes: (0..3u32)
                    .map(|n| NodeView {
                        node: NodeId::new(n),
                        free_cpu: Cores(nodes[n as usize].0),
                        free_mem: MemMb(nodes[n as usize].1),
                        hosted_services: hosted[n as usize].clone(),
                    })
                    .collect(),
            }
        })
}

/// Checks the action list is well-formed with respect to the view.
fn assert_actions_well_formed(
    view: &ClusterView,
    actions: &[ScalingAction],
) -> Result<(), TestCaseError> {
    let known: Vec<ContainerId> = view.services[0]
        .replicas
        .iter()
        .map(|r| r.container)
        .collect();
    let min_replicas = 1;
    let mut removed = 0usize;
    for action in actions {
        match action {
            ScalingAction::Update {
                container,
                cpu,
                mem,
            } => {
                prop_assert!(known.contains(container), "update of unknown {container}");
                if let Some(c) = cpu {
                    prop_assert!(c.get() >= 0.0 && c.get().is_finite());
                }
                if let Some(m) = mem {
                    prop_assert!(m.get() >= 0.0 && m.get().is_finite());
                }
            }
            ScalingAction::Remove { container } => {
                prop_assert!(known.contains(container));
                removed += 1;
            }
            ScalingAction::Spawn { node, cpu, mem, .. } => {
                prop_assert!(view.node(*node).is_some(), "spawn on unknown node");
                prop_assert!(cpu.get() > 0.0 && cpu.get().is_finite());
                prop_assert!(mem.get() > 0.0 && mem.get().is_finite());
            }
            ScalingAction::SetNetCap { container, .. } => {
                prop_assert!(known.contains(container));
            }
        }
    }
    prop_assert!(
        view.services[0].replicas.len().saturating_sub(removed) >= min_replicas,
        "removals would violate min replicas"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_emit_well_formed_actions(view in view_strategy()) {
        let kinds = AlgorithmKind::ALL
            .into_iter()
            .chain([AlgorithmKind::VerticalOnly]);
        for kind in kinds {
            let mut algo = kind.build(HpaConfig::default(), HyScaleConfig::default());
            let actions = algo.decide(&view);
            assert_actions_well_formed(&view, &actions)?;
        }
    }

    #[test]
    fn vertical_only_never_changes_replica_counts(view in view_strategy()) {
        let mut algo = AlgorithmKind::VerticalOnly
            .build(HpaConfig::default(), HyScaleConfig::default());
        let actions = algo.decide(&view);
        prop_assert!(actions.iter().all(|a| a.is_vertical()));
    }

    #[test]
    fn hyscale_acquisition_respects_node_free_cpu(view in view_strategy()) {
        let mut algo = AlgorithmKind::HyScaleCpu.build(HpaConfig::default(), HyScaleConfig::default());
        let actions = algo.decide(&view);
        // Net vertical CPU change per node (acquisitions minus in-period
        // reclamations, plus capacity returned by removals and taken by
        // spawns) must not exceed what the node advertised as free: the
        // plan may never overcommit a machine.
        for node in &view.nodes {
            let mut net = 0.0;
            for action in &actions {
                match action {
                    ScalingAction::Update { container, cpu: Some(new_cpu), .. } => {
                        if let Some(replica) = view.services[0]
                            .replicas
                            .iter()
                            .find(|r| r.container == *container && r.node == node.node)
                        {
                            net += new_cpu.get() - replica.cpu_requested.get();
                        }
                    }
                    ScalingAction::Remove { container } => {
                        if let Some(replica) = view.services[0]
                            .replicas
                            .iter()
                            .find(|r| r.container == *container && r.node == node.node)
                        {
                            net -= replica.cpu_requested.get();
                        }
                    }
                    ScalingAction::Spawn { node: n, cpu, .. } if *n == node.node => {
                        net += cpu.get();
                    }
                    _ => {}
                }
            }
            prop_assert!(
                net <= node.free_cpu.get() + 1e-6,
                "{}: net CPU change {net} exceeds {} free",
                node.node,
                node.free_cpu.get()
            );
        }
    }

    #[test]
    fn kubernetes_replica_targets_stay_in_bounds(view in view_strategy()) {
        let config = HpaConfig { min_replicas: 1, max_replicas: 4, ..HpaConfig::default() };
        let mut algo = AlgorithmKind::Kubernetes.build(config, HyScaleConfig::default());
        let actions = algo.decide(&view);
        let current = view.services[0].replicas.len();
        let spawns = actions.iter().filter(|a| matches!(a, ScalingAction::Spawn { .. })).count();
        let removals = actions.iter().filter(|a| matches!(a, ScalingAction::Remove { .. })).count();
        prop_assert!(current + spawns <= 4 || spawns == 0, "over max: {current}+{spawns}");
        prop_assert!(current.saturating_sub(removals) >= 1, "under min");
        // Never both directions in one decision for one service.
        prop_assert!(spawns == 0 || removals == 0);
    }
}

// ---------------------------------------------------------------------
// End-to-end accounting conservation
// ---------------------------------------------------------------------

fn small_run(kind: AlgorithmKind, seed: u64, rate: f64) -> hyscale::core::RunReport {
    ScenarioBuilder::new("prop-e2e")
        .nodes(2)
        .services(1, ServiceProfile::CpuBound, LoadPattern::Constant { rate })
        .duration_secs(60.0)
        .algorithm(kind)
        .seed(seed)
        .run()
        .expect("runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn request_accounting_conserves(seed in 0u64..1000, rate in 0.5f64..12.0) {
        for kind in AlgorithmKind::ALL {
            let report = small_run(kind, seed, rate);
            let accounted = report.requests.completed
                + report.requests.failures.total()
                + report.requests.outstanding();
            prop_assert_eq!(accounted, report.requests.issued);
            // Per-service totals agree with the overall record.
            let per_service: u64 = report.per_service.values().map(|o| o.issued).sum();
            prop_assert_eq!(per_service, report.requests.issued);
        }
    }

    #[test]
    fn same_seed_is_bit_identical(seed in 0u64..1000) {
        let a = small_run(AlgorithmKind::HyScaleCpuMem, seed, 4.0);
        let b = small_run(AlgorithmKind::HyScaleCpuMem, seed, 4.0);
        prop_assert_eq!(a.requests.issued, b.requests.issued);
        prop_assert_eq!(a.requests.completed, b.requests.completed);
        prop_assert!((a.requests.mean_response_secs() - b.requests.mean_response_secs()).abs() < 1e-15);
    }
}

// ---------------------------------------------------------------------
// RNG distribution sanity (cross-crate: sim consumed by workload)
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn rng_samples_stay_in_domain(seed in 0u64..10_000) {
        let mut rng = SimRng::seed_from(seed);
        prop_assert!((0.0..1.0).contains(&rng.uniform_f64()));
        prop_assert!(rng.exponential(2.0) > 0.0);
        prop_assert!(rng.pareto(1.0, 2.0) >= 1.0);
        let n = rng.uniform_usize(7);
        prop_assert!(n < 7);
    }
}
