//! Differential resume-equivalence battery for the snapshot/restore
//! subsystem: a run interrupted at a snapshot boundary and resumed from
//! the file it left behind must be **bit-identical** to the same run
//! left uninterrupted — same report, same state digest, and a decision
//! journal that stitches together seamlessly. Plus round-trip property
//! tests at the cluster level and typed-error regressions for corrupted
//! snapshot files.

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};

use hyscale::cluster::{
    Cluster, ClusterConfig, Cohort, ContainerId, ContainerSpec, FaultKind, FaultPlan, MemMb,
    NodeSpec, Request, ServiceId,
};
use hyscale::core::{
    AlgorithmKind, ControlPlaneConfig, CoreError, ResilienceConfig, RunReport, ScenarioBuilder,
    ScenarioConfig, SimulationDriver, SnapshotPolicy,
};
use hyscale::sim::{
    SimDuration, SimRng, SimTime, SnapReader, SnapWriter, SnapshotError, SNAPSHOT_VERSION,
};
use hyscale::trace::{export, RunMeta, TraceSink};
use hyscale::workload::{LoadPattern, RetryPolicy, ServiceGraph, ServiceProfile};

/// Fresh scratch directory under the system temp dir; unique per test
/// case so parallel test threads never collide.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hyscale-snaptest-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The lowest-tick `.snap` file in `dir` (time-warp runs can overshoot
/// the nominal boundary, so the exact tick is not known a priori).
fn first_snapshot(dir: &Path) -> PathBuf {
    let mut snaps: Vec<PathBuf> = fs::read_dir(dir)
        .expect("snapshot dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    snaps.sort();
    snaps
        .into_iter()
        .next()
        .expect("at least one snapshot file")
}

/// A compact chaos scenario: faults, recovery, breaker trips, and a hot
/// degraded control plane all fire inside 60 simulated seconds, so the
/// snapshot at tick 250 lands mid-churn with live fault and retry state.
fn battery_config(kind: AlgorithmKind, cohort_warp: bool, parallelism: usize) -> ScenarioConfig {
    let load = if cohort_warp {
        // Zero base load leaves genuinely idle spans between bursts, so
        // the time-warp fast path actually fires in this mode.
        LoadPattern::Burst {
            base: 0.0,
            peak: 8.0,
            period_secs: 20.0,
            duty: 0.3,
        }
    } else {
        LoadPattern::Constant { rate: 3.0 }
    };
    let mut cp = ControlPlaneConfig::degraded();
    cp.loss_prob = 0.2;
    cp.delay_prob = 0.3;
    cp.duplicate_prob = 0.1;
    cp.actuation_failure_prob = 0.4;
    ScenarioBuilder::new(if cohort_warp {
        "snap-battery-cohort-warp"
    } else {
        "snap-battery-events"
    })
    .nodes(3)
    .services(2, ServiceProfile::CpuBound, load)
    .duration_secs(60.0)
    .algorithm(kind)
    .seed(4242)
    .parallelism(parallelism)
    .cohort_arrivals(cohort_warp)
    .time_warp(cohort_warp)
    .faults(
        FaultPlan::new()
            .with(
                12.0,
                FaultKind::NodeCrash {
                    node: 0,
                    down_secs: 10.0,
                },
            )
            .with(20.0, FaultKind::OomKill { service: 1 })
            .with(
                22.0,
                FaultKind::NicDegrade {
                    node: 1,
                    factor: 0.2,
                    duration_secs: 15.0,
                },
            )
            .with(
                28.0,
                FaultKind::StatOutage {
                    node: 2,
                    duration_secs: 10.0,
                },
            ),
    )
    .control_plane(cp)
    .build()
}

/// Runs `config` with an enabled sink and returns the JSONL journal plus
/// the report.
fn journal(config: &ScenarioConfig, capacity: usize) -> (String, RunReport) {
    let mut sink = TraceSink::with_capacity(capacity);
    let report = SimulationDriver::run_traced(config, &mut sink).expect("scenario runs");
    assert_eq!(sink.dropped(), 0, "journal must not drop events");
    let meta = RunMeta {
        scenario: &config.name,
        seed: config.seed,
        algorithm: config.algorithm.label(),
    };
    (export::jsonl(&sink, &meta), report)
}

/// Everything after the meta header line. The header carries event
/// totals, which legitimately differ between a partial and a full run;
/// the event lines themselves must stitch byte-for-byte.
fn event_lines(journal: &str) -> &str {
    let first_newline = journal.find('\n').expect("journal has a header line");
    &journal[first_newline + 1..]
}

/// The differential core: run uninterrupted, run again halting at the
/// first snapshot, resume from the file it wrote, and demand the two
/// histories are indistinguishable.
fn assert_resume_equivalence(
    kind: AlgorithmKind,
    cohort_warp: bool,
    cut_workers: usize,
    resume_workers: usize,
) {
    let mode = if cohort_warp { "cw" } else { "ev" };
    let tag = format!("{}-{mode}-w{cut_workers}x{resume_workers}", kind.label());
    let dir_full = scratch_dir(&format!("{tag}-full"));
    let dir_cut = scratch_dir(&format!("{tag}-cut"));

    // Uninterrupted run, snapshotting along the way (snapshotting itself
    // must not perturb the simulation).
    let mut config = battery_config(kind, cohort_warp, cut_workers);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 250,
        dir: dir_full.clone(),
        halt_after_first: false,
    });
    let (journal_full, report_full) = journal(&config, 16_384);

    // The same run, killed right after the first snapshot is written...
    let mut config = battery_config(kind, cohort_warp, cut_workers);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 250,
        dir: dir_cut.clone(),
        halt_after_first: true,
    });
    let (journal_cut, partial) = journal(&config, 16_384);
    assert!(
        partial.state_digest.is_none(),
        "{tag}: a halted run must not claim a final digest"
    );
    let snap = first_snapshot(&dir_cut);

    // ...then resumed from the file it left behind, possibly at a
    // different worker count.
    let mut config = battery_config(kind, cohort_warp, resume_workers);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 250,
        dir: dir_cut.clone(),
        halt_after_first: false,
    });
    config.resume = Some(snap);
    let (journal_resumed, report_resumed) = journal(&config, 16_384);

    assert_eq!(
        format!("{report_full:?}"),
        format!("{report_resumed:?}"),
        "{tag}: resumed report diverges from the uninterrupted run"
    );
    assert!(
        report_full.state_digest.is_some(),
        "{tag}: snapshotting runs must report a state digest"
    );
    assert_eq!(
        report_full.state_digest, report_resumed.state_digest,
        "{tag}: end-of-run state digests diverge"
    );
    let stitched = format!(
        "{}{}",
        event_lines(&journal_cut),
        event_lines(&journal_resumed)
    );
    assert_eq!(
        event_lines(&journal_full),
        stitched,
        "{tag}: partial + resumed journals do not stitch into the full journal"
    );
    assert!(
        journal_cut.contains("\"ev\":\"snapshot\""),
        "{tag}: the snapshot itself must appear in the journal"
    );

    let _ = fs::remove_dir_all(&dir_full);
    let _ = fs::remove_dir_all(&dir_cut);
}

fn battery(kind: AlgorithmKind, cohort_warp: bool) {
    for workers in [1usize, 2, 4] {
        assert_resume_equivalence(kind, cohort_warp, workers, workers);
    }
}

#[test]
fn resume_equivalence_kubernetes_event_mode() {
    battery(AlgorithmKind::Kubernetes, false);
}

#[test]
fn resume_equivalence_network_event_mode() {
    battery(AlgorithmKind::Network, false);
}

#[test]
fn resume_equivalence_hyscale_cpu_event_mode() {
    battery(AlgorithmKind::HyScaleCpu, false);
}

#[test]
fn resume_equivalence_hyscale_cpu_mem_event_mode() {
    battery(AlgorithmKind::HyScaleCpuMem, false);
}

#[test]
fn resume_equivalence_kubernetes_cohort_warp() {
    battery(AlgorithmKind::Kubernetes, true);
}

#[test]
fn resume_equivalence_network_cohort_warp() {
    battery(AlgorithmKind::Network, true);
}

#[test]
fn resume_equivalence_hyscale_cpu_cohort_warp() {
    battery(AlgorithmKind::HyScaleCpu, true);
}

#[test]
fn resume_equivalence_hyscale_cpu_mem_cohort_warp() {
    battery(AlgorithmKind::HyScaleCpuMem, true);
}

/// The resilience-enabled cell of the battery: a three-tier graph with
/// retries, deadlines, budgets, and shedding all live, and a node crash
/// at 12 s feeding retryable failures through tight queues. The
/// snapshot lands at tick 130 (13 s) — one second into the crash, with
/// retries sitting in backoff, budget tokens spent, and deadlines
/// pending — all of which must round-trip bit-exactly.
fn resilience_battery_config(parallelism: usize) -> ScenarioConfig {
    let mut config = ScenarioBuilder::new("snap-battery-resilience")
        .nodes(3)
        .services(
            3,
            ServiceProfile::CpuBound,
            LoadPattern::Constant { rate: 3.0 },
        )
        .duration_secs(60.0)
        .algorithm(AlgorithmKind::HyScaleCpu)
        .seed(4242)
        .parallelism(parallelism)
        .graph(ServiceGraph::new(3).with_edge(0, 1, 2).with_edge(1, 2, 1))
        .faults(
            FaultPlan::new()
                .with(
                    12.0,
                    FaultKind::NodeCrash {
                        node: 0,
                        down_secs: 15.0,
                    },
                )
                .with(20.0, FaultKind::OomKill { service: 1 }),
        )
        .resilience(
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(1.0, 8.0, 0.1))
                .with_root_budget_secs(20.0)
                .with_budget(25.0, 64.0)
                .with_shed_watermark(400),
        )
        .build();
    for spec in &mut config.services {
        spec.container = spec.container.clone().with_queue_cap(16);
    }
    config
}

#[test]
fn resume_equivalence_with_live_resilience_state() {
    let dir_full = scratch_dir("resilience-full");
    let dir_cut = scratch_dir("resilience-cut");

    let mut config = resilience_battery_config(2);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 130,
        dir: dir_full.clone(),
        halt_after_first: false,
    });
    let (journal_full, report_full) = journal(&config, 16_384);
    assert!(
        report_full.resilience.retries > 0,
        "the storm must trigger retries: {:?}",
        report_full.resilience
    );

    let mut config = resilience_battery_config(2);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 130,
        dir: dir_cut.clone(),
        halt_after_first: true,
    });
    let (journal_cut, _) = journal(&config, 16_384);
    let snap = first_snapshot(&dir_cut);

    // Resume at a different worker count, mid-backoff.
    let mut config = resilience_battery_config(4);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 130,
        dir: dir_cut.clone(),
        halt_after_first: false,
    });
    config.resume = Some(snap);
    let (journal_resumed, report_resumed) = journal(&config, 16_384);

    assert_eq!(
        format!("{report_full:?}"),
        format!("{report_resumed:?}"),
        "resumed resilience run diverges from the uninterrupted one"
    );
    assert_eq!(report_full.state_digest, report_resumed.state_digest);
    assert_eq!(
        event_lines(&journal_full),
        format!(
            "{}{}",
            event_lines(&journal_cut),
            event_lines(&journal_resumed)
        ),
        "partial + resumed journals do not stitch into the full journal"
    );
    let _ = fs::remove_dir_all(&dir_full);
    let _ = fs::remove_dir_all(&dir_cut);
}

#[test]
fn resume_across_different_worker_counts() {
    // A snapshot taken under a serial run must resume bit-identically
    // under a parallel one (and vice versa): worker count is excluded
    // from the scenario digest by design.
    assert_resume_equivalence(AlgorithmKind::HyScaleCpu, false, 1, 4);
    assert_resume_equivalence(AlgorithmKind::HyScaleCpuMem, false, 4, 1);
}

#[test]
fn snapshotting_does_not_perturb_the_run() {
    let dir = scratch_dir("no-perturb");
    let plain = SimulationDriver::run(&battery_config(AlgorithmKind::HyScaleCpu, false, 2))
        .expect("plain run");
    let mut config = battery_config(AlgorithmKind::HyScaleCpu, false, 2);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 250,
        dir: dir.clone(),
        halt_after_first: false,
    });
    let mut snapped = SimulationDriver::run(&config).expect("snapshotting run");
    assert!(plain.state_digest.is_none() && snapped.state_digest.is_some());
    snapped.state_digest = None;
    assert_eq!(
        format!("{plain:?}"),
        format!("{snapped:?}"),
        "writing snapshots changed the simulation outcome"
    );
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Cluster-level round-trip property test
// ---------------------------------------------------------------------

/// One tick's worth of churn, drawn as pure data so the same ops can be
/// replayed against two clusters in lockstep.
#[derive(Debug, Clone)]
enum ChurnOp {
    Start {
        node_choice: usize,
        service: u32,
    },
    Remove {
        container_choice: usize,
    },
    AdmitOne {
        container_choice: usize,
        cpu_secs: f64,
    },
    AdmitCohort {
        container_choice: usize,
        count: u64,
    },
    Idle,
}

fn draw_op(rng: &mut SimRng) -> ChurnOp {
    match rng.uniform_usize(10) {
        0 | 1 => ChurnOp::Start {
            node_choice: rng.uniform_usize(8),
            service: rng.uniform_usize(2) as u32,
        },
        2 => ChurnOp::Remove {
            container_choice: rng.uniform_usize(16),
        },
        3..=5 => ChurnOp::AdmitOne {
            container_choice: rng.uniform_usize(16),
            cpu_secs: rng.uniform_range(0.01, 0.2),
        },
        6..=8 => ChurnOp::AdmitCohort {
            container_choice: rng.uniform_usize(16),
            count: 1 + rng.uniform_usize(5) as u64,
        },
        _ => ChurnOp::Idle,
    }
}

/// Bookkeeping for one cluster being churned: conservation counters plus
/// every id ever issued (to prove allocators never reissue after a
/// round-trip).
struct Ledger {
    containers: Vec<ContainerId>,
    issued: u64,
    settled: u64,
    container_ids_seen: HashSet<u32>,
    max_request_id: Option<u64>,
}

impl Ledger {
    fn new() -> Self {
        Ledger {
            containers: Vec::new(),
            issued: 0,
            settled: 0,
            container_ids_seen: HashSet::new(),
            max_request_id: None,
        }
    }

    fn note_request_id(&mut self, first: u64, count: u64) {
        if let Some(prev) = self.max_request_id {
            assert!(
                first > prev,
                "request id allocator went backwards after round-trip"
            );
        }
        self.max_request_id = Some(first + count - 1);
    }
}

/// Applies one op + one tick advance, updating the ledger. Returns a
/// digest-ish summary of what happened so twin clusters can be compared.
fn apply_op(cluster: &mut Cluster, ledger: &mut Ledger, op: &ChurnOp, now: SimTime) -> String {
    let mut outcome = String::new();
    match op {
        ChurnOp::Start {
            node_choice,
            service,
        } => {
            let nodes: Vec<_> = cluster.nodes().map(|n| n.id()).collect();
            let node = nodes[node_choice % nodes.len()];
            let spec = ContainerSpec::new(ServiceId::new(*service))
                .with_startup_secs(0.0)
                .with_queue_cap(64)
                .with_mem_limit(MemMb(2048.0));
            if let Ok(id) = cluster.start_container(node, spec, now) {
                assert!(
                    ledger.container_ids_seen.insert(id.index()),
                    "container id {id} was reissued"
                );
                ledger.containers.push(id);
                outcome.push_str(&format!("start:{id};"));
            }
        }
        ChurnOp::Remove { container_choice } => {
            if !ledger.containers.is_empty() {
                let id = ledger.containers[container_choice % ledger.containers.len()];
                if let Ok(aborted) = cluster.remove_container(id, now) {
                    let members: u64 = aborted.iter().map(|f| f.count).sum();
                    ledger.settled += members;
                    outcome.push_str(&format!("remove:{id}:{members};"));
                }
            }
        }
        ChurnOp::AdmitOne {
            container_choice,
            cpu_secs,
        } => {
            if !ledger.containers.is_empty() {
                let id = ledger.containers[container_choice % ledger.containers.len()];
                let request = Request::new(ServiceId::new(0), now, *cpu_secs, MemMb(16.0), 1.0);
                if let Ok(req) = cluster.admit_request(id, request, now) {
                    ledger.issued += 1;
                    ledger.note_request_id(req.index(), 1);
                    outcome.push_str(&format!("admit:{req};"));
                }
            }
        }
        ChurnOp::AdmitCohort {
            container_choice,
            count,
        } => {
            if !ledger.containers.is_empty() {
                let id = ledger.containers[container_choice % ledger.containers.len()];
                let cohort = Cohort::new(ServiceId::new(0), now, *count, 0.02, MemMb(8.0), 0.5);
                if let Ok(req) = cluster.admit_cohort(id, cohort, now) {
                    ledger.issued += *count;
                    ledger.note_request_id(req.index(), *count);
                    outcome.push_str(&format!("cohort:{req}x{count};"));
                }
            }
        }
        ChurnOp::Idle => {}
    }
    let report = cluster.advance(now, SimDuration::from_millis(100));
    let completed: u64 = report.completed.iter().map(|c| c.count).sum();
    let failed: u64 = report.failed.iter().map(|f| f.count).sum();
    ledger.settled += completed + failed;
    outcome.push_str(&format!("done:{completed}+{failed}"));

    // Member conservation must hold on every tick.
    assert_eq!(
        ledger.issued,
        ledger.settled + cluster.total_in_flight(),
        "member conservation violated (issued != settled + in-flight)"
    );
    outcome
}

#[test]
fn cluster_round_trip_mid_churn_conserves_members_and_ids() {
    let mut meta_rng = SimRng::seed_from(0x51AB);
    for _case in 0..6 {
        let seed = meta_rng.next_u64();
        let snap_tick = 20 + meta_rng.uniform_usize(100) as u64;

        let mut rng = SimRng::seed_from(seed);
        let mut cluster = Cluster::new(ClusterConfig::default());
        for _ in 0..3 {
            cluster.add_node(NodeSpec::uniform_worker());
        }
        let mut ledger = Ledger::new();
        let mut twin: Option<(Cluster, Ledger)> = None;

        for tick in 0..200u64 {
            let now = SimTime::from_micros(tick * 100_000);
            let op = draw_op(&mut rng);
            let outcome = apply_op(&mut cluster, &mut ledger, &op, now);

            if let Some((other, other_ledger)) = twin.as_mut() {
                // Post-restore, the twin must shadow the original exactly:
                // same admissions, same completions, same in-flight mass.
                let twin_outcome = apply_op(other, other_ledger, &op, now);
                assert_eq!(outcome, twin_outcome, "twin diverged after round-trip");
                assert_eq!(cluster.total_in_flight(), other.total_in_flight());
            }

            if tick == snap_tick {
                // Snapshots require all lazy idle ticks replayed first.
                cluster.flush_pending();
                let mut w = SnapWriter::new();
                cluster.snapshot_write(&mut w);
                let bytes = w.finish();
                let mut fresh = Cluster::new(ClusterConfig::default());
                let mut r = SnapReader::open(&bytes).expect("snapshot parses");
                fresh.snapshot_restore(&mut r).expect("snapshot restores");
                r.expect_done().expect("snapshot fully consumed");

                // The restored cluster starts from the original's books:
                // same conservation state, same id high-water marks.
                let twin_ledger = Ledger {
                    containers: ledger.containers.clone(),
                    issued: ledger.issued,
                    settled: ledger.settled,
                    container_ids_seen: ledger.container_ids_seen.clone(),
                    max_request_id: ledger.max_request_id,
                };
                assert_eq!(
                    twin_ledger.issued,
                    twin_ledger.settled + fresh.total_in_flight(),
                    "restored cluster broke member conservation"
                );
                twin = Some((fresh, twin_ledger));
            }
        }
        assert!(twin.is_some(), "snapshot tick must fall inside the run");
    }
}

// ---------------------------------------------------------------------
// Corrupted / mismatched snapshot files -> typed errors
// ---------------------------------------------------------------------

fn tiny_config(dir: &Path, seed: u64) -> ScenarioConfig {
    ScenarioBuilder::new("snap-tiny")
        .nodes(2)
        .services(
            1,
            ServiceProfile::CpuBound,
            LoadPattern::Constant { rate: 2.0 },
        )
        .duration_secs(20.0)
        .algorithm(AlgorithmKind::Kubernetes)
        .seed(seed)
        .snapshot_every(100, dir)
        .build()
}

/// Writes one snapshot file and returns its bytes + path.
fn make_snapshot(dir: &Path) -> (PathBuf, Vec<u8>) {
    let mut config = tiny_config(dir, 7);
    config.snapshot.as_mut().unwrap().halt_after_first = true;
    SimulationDriver::run(&config).expect("snapshot-producing run");
    let path = first_snapshot(dir);
    let bytes = fs::read(&path).expect("snapshot bytes");
    (path, bytes)
}

fn resume_err(dir: &Path, snap: &Path) -> CoreError {
    let mut config = tiny_config(dir, 7);
    config.resume = Some(snap.to_path_buf());
    SimulationDriver::run(&config).expect_err("resume must fail")
}

#[test]
fn truncated_snapshot_is_rejected_with_typed_error() {
    let dir = scratch_dir("truncated");
    let (path, bytes) = make_snapshot(&dir);
    // Chop off the tail — both a missing checksum and a short payload
    // must surface as Truncated, never as a partial restore.
    for keep in [bytes.len() - 4, bytes.len() / 2, 10] {
        fs::write(&path, &bytes[..keep]).unwrap();
        let err = resume_err(&dir, &path);
        assert!(
            matches!(err, CoreError::Snapshot(SnapshotError::Truncated)),
            "keep={keep}: expected Truncated, got {err:?}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_snapshot_is_rejected_with_typed_error() {
    let dir = scratch_dir("bitflip");
    let (path, bytes) = make_snapshot(&dir);
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    fs::write(&path, &corrupt).unwrap();
    let err = resume_err(&dir, &path);
    assert!(
        matches!(err, CoreError::Snapshot(SnapshotError::ChecksumMismatch)),
        "expected ChecksumMismatch, got {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_reports_expected_and_found() {
    let dir = scratch_dir("version");
    let (path, bytes) = make_snapshot(&dir);
    let mut future = bytes.clone();
    // Version is the little-endian u32 right after the 4-byte magic.
    future[4] = future[4].wrapping_add(1);
    fs::write(&path, &future).unwrap();
    let err = resume_err(&dir, &path);
    match err {
        CoreError::Snapshot(SnapshotError::VersionMismatch { expected, found }) => {
            assert_eq!(expected, SNAPSHOT_VERSION);
            assert_eq!(found, u32::from(bytes[4]) + 1);
            let msg = err_display(&SnapshotError::VersionMismatch { expected, found });
            assert!(
                msg.contains(&expected.to_string()) && msg.contains(&found.to_string()),
                "version error must name both versions: {msg}"
            );
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

fn err_display(e: &SnapshotError) -> String {
    format!("{e}")
}

#[test]
fn bad_magic_is_rejected_with_typed_error() {
    let dir = scratch_dir("magic");
    let (path, mut bytes) = make_snapshot(&dir);
    bytes[0] = b'X';
    fs::write(&path, &bytes).unwrap();
    let err = resume_err(&dir, &path);
    assert!(
        matches!(err, CoreError::Snapshot(SnapshotError::BadMagic)),
        "expected BadMagic, got {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn scenario_mismatch_is_rejected_before_any_restore() {
    let dir = scratch_dir("config-mismatch");
    let (path, _) = make_snapshot(&dir);
    // Same snapshot, different scenario (seed changed): the config
    // digest check must refuse to overlay foreign state.
    let mut config = tiny_config(&dir, 8);
    config.resume = Some(path);
    let err = SimulationDriver::run(&config).expect_err("mismatched resume must fail");
    assert!(
        matches!(
            err,
            CoreError::Snapshot(SnapshotError::ConfigMismatch { .. })
        ),
        "expected ConfigMismatch, got {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_snapshot_file_is_an_io_error() {
    let dir = scratch_dir("missing");
    let err = resume_err(&dir, &dir.join("tick-0000009999.snap"));
    assert!(
        matches!(err, CoreError::Snapshot(SnapshotError::Io(_))),
        "expected Io, got {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}
