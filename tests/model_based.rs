//! Model-based testing of the cluster state machine: random operation
//! sequences must never violate the structural invariants, whatever the
//! autoscalers end up doing.

use proptest::prelude::*;

use hyscale::cluster::{
    Cluster, ClusterConfig, ContainerSpec, ContainerState, Cores, MemMb, NodeSpec, Request,
    ServiceId,
};
use hyscale::sim::{SimDuration, SimTime};

/// One random operation against the cluster.
#[derive(Debug, Clone)]
enum Op {
    StartContainer {
        node_choice: usize,
        service: u32,
        cpu: f64,
        mem: f64,
    },
    RemoveContainer {
        container_choice: usize,
    },
    UpdateContainer {
        container_choice: usize,
        cpu: f64,
        mem: f64,
    },
    AdmitRequest {
        container_choice: usize,
        cpu_secs: f64,
        mem: f64,
    },
    DecommissionNode {
        node_choice: usize,
    },
    Advance {
        ticks: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..8, 0u32..4, 0.1f64..2.0, 64.0f64..1024.0).prop_map(
            |(node_choice, service, cpu, mem)| Op::StartContainer { node_choice, service, cpu, mem }
        ),
        1 => (0usize..16).prop_map(|container_choice| Op::RemoveContainer { container_choice }),
        2 => (0usize..16, 0.0f64..4.0, 0.0f64..2048.0).prop_map(
            |(container_choice, cpu, mem)| Op::UpdateContainer { container_choice, cpu, mem }
        ),
        4 => (0usize..16, 0.001f64..0.5, 1.0f64..64.0).prop_map(
            |(container_choice, cpu_secs, mem)| Op::AdmitRequest { container_choice, cpu_secs, mem }
        ),
        1 => (0usize..8).prop_map(|node_choice| Op::DecommissionNode { node_choice }),
        4 => (1usize..20).prop_map(|ticks| Op::Advance { ticks }),
    ]
}

/// Checks every structural invariant of the cluster.
fn check_invariants(cluster: &Cluster) -> Result<(), TestCaseError> {
    // 1. Every live container's node is commissioned and lists it back.
    for container in cluster.containers() {
        prop_assert!(container.state() != ContainerState::Removed);
        let node = cluster.node(container.node());
        prop_assert!(node.is_some(), "live container on decommissioned node");
        prop_assert!(
            node.unwrap().containers().contains(&container.id()),
            "node does not list its container"
        );
    }
    // 2. Every node's container list points at live containers on itself.
    for node in cluster.nodes() {
        for &ctr in node.containers() {
            let c = cluster.container(ctr).expect("listed container exists");
            prop_assert!(c.state() != ContainerState::Removed);
            prop_assert_eq!(c.node(), node.id());
        }
    }
    // 3. In-flight counts never exceed queue capacity.
    for container in cluster.containers() {
        prop_assert!(container.in_flight_count() <= container.spec().queue_cap.max(1));
    }
    // 4. Resource requests are never negative after arbitrary updates.
    for container in cluster.containers() {
        prop_assert!(container.spec().cpu_request.get() >= 0.0);
        prop_assert!(container.spec().mem_limit.get() >= 0.0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_operation_sequences_preserve_invariants(
        node_count in 1usize..5,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let nodes: Vec<_> = (0..node_count)
            .map(|_| cluster.add_node(NodeSpec::uniform_worker()))
            .collect();
        let mut containers = Vec::new();
        let mut now = SimTime::ZERO;
        let dt = SimDuration::from_millis(100);
        let mut issued = 0u64;
        let mut settled = 0u64; // completed + failed (incl. aborted)

        for op in ops {
            match op {
                Op::StartContainer { node_choice, service, cpu, mem } => {
                    let node = nodes[node_choice % nodes.len()];
                    let spec = ContainerSpec::new(ServiceId::new(service))
                        .with_cpu_request(Cores(cpu))
                        .with_mem_limit(MemMb(mem))
                        .with_startup_secs(0.0);
                    if let Ok(id) = cluster.start_container(node, spec, now) {
                        containers.push(id);
                    }
                }
                Op::RemoveContainer { container_choice } => {
                    if !containers.is_empty() {
                        let id = containers[container_choice % containers.len()];
                        if let Ok(aborted) = cluster.remove_container(id, now) {
                            settled += aborted.len() as u64;
                        }
                    }
                }
                Op::UpdateContainer { container_choice, cpu, mem } => {
                    if !containers.is_empty() {
                        let id = containers[container_choice % containers.len()];
                        let _ = cluster.update_container(id, Cores(cpu), MemMb(mem));
                    }
                }
                Op::AdmitRequest { container_choice, cpu_secs, mem } => {
                    if !containers.is_empty() {
                        let id = containers[container_choice % containers.len()];
                        let request = Request::new(
                            ServiceId::new(0),
                            now,
                            cpu_secs,
                            MemMb(mem),
                            0.1,
                        );
                        if cluster.admit_request(id, request, now).is_ok() {
                            issued += 1;
                        }
                    }
                }
                Op::DecommissionNode { node_choice } => {
                    let node = nodes[node_choice % nodes.len()];
                    if let Ok(aborted) = cluster.decommission_node(node, now) {
                        settled += aborted.len() as u64;
                    }
                }
                Op::Advance { ticks } => {
                    for _ in 0..ticks {
                        let report = cluster.advance(now, dt);
                        settled += (report.completed.len() + report.failed.len()) as u64;
                        now += dt;
                    }
                }
            }
            check_invariants(&cluster)?;
        }

        // Conservation: everything issued is either settled or still
        // in flight somewhere.
        let in_flight: u64 = cluster
            .containers()
            .map(|c| c.in_flight_count() as u64)
            .sum();
        prop_assert_eq!(issued, settled + in_flight, "request accounting must conserve");
    }

    #[test]
    fn draining_always_terminates(
        requests in prop::collection::vec((0.001f64..0.3, 1.0f64..32.0), 1..40),
    ) {
        // Any admissible batch drains on an idle machine well before its
        // (generous) timeout: no request is ever lost or stuck.
        let mut cluster = Cluster::new(ClusterConfig::default());
        let node = cluster.add_node(NodeSpec::uniform_worker());
        let ctr = cluster
            .start_container(
                node,
                ContainerSpec::new(ServiceId::new(0))
                    .with_queue_cap(64)
                    .with_mem_limit(MemMb(8192.0))
                    .with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .unwrap();
        let mut admitted = 0usize;
        for (cpu, mem) in &requests {
            let r = Request::new(ServiceId::new(0), SimTime::ZERO, *cpu, MemMb(*mem), 0.2);
            if cluster.admit_request(ctr, r, SimTime::ZERO).is_ok() {
                admitted += 1;
            }
        }
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        let mut done = 0usize;
        while now < SimTime::from_secs(120.0) {
            let report = cluster.advance(now, dt);
            done += report.completed.len();
            prop_assert!(report.failed.is_empty(), "nothing should time out");
            now += dt;
            if cluster.container(ctr).unwrap().in_flight_count() == 0 {
                break;
            }
        }
        prop_assert_eq!(done, admitted, "every admitted request completes");
    }
}
