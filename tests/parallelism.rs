//! Determinism regression tests for the parallel tick engine: a cluster
//! advanced with `set_parallelism(4)` must be *bit-identical* to a serial
//! run — same per-tick reports in the same order, same final container
//! state — and a full driver run must produce an identical `RunReport`
//! at any parallelism setting.

use hyscale::cluster::{
    Cluster, ClusterConfig, ContainerId, ContainerSpec, Cores, MemMb, NodeSpec, Request, ServiceId,
    TickReport,
};
use hyscale::core::{AlgorithmKind, ScenarioBuilder};
use hyscale::sim::{SimDuration, SimRng, SimTime};
use hyscale::workload::{LoadPattern, ServiceProfile};

/// A deliberately lumpy cluster: busy nodes, an idle node (exercises the
/// idle fast path), an antagonist, and a mid-run container removal.
fn build_cluster(parallelism: usize) -> (Cluster, Vec<ContainerId>) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.set_parallelism(parallelism);
    let mut containers = Vec::new();
    // Node 8 hosts replicas but never receives traffic: it must take the
    // idle fast path without diverging from serial.
    for n in 0..9 {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        for c in 0..3 {
            let service = ServiceId::new(((n * 3 + c) % 5) as u32);
            let spec = ContainerSpec::new(service)
                .with_cpu_request(Cores(1.0))
                .with_mem_limit(MemMb(384.0))
                .with_startup_secs(if c == 2 { 0.5 } else { 0.0 });
            let id = cluster
                .start_container(node, spec, SimTime::ZERO)
                .expect("node exists");
            containers.push(id);
        }
    }
    // A CPU hog on node 0.
    cluster
        .start_container(
            hyscale::cluster::NodeId::new(0),
            ContainerSpec::new(ServiceId::new(9))
                .with_cpu_request(Cores(2.0))
                .antagonist(),
            SimTime::ZERO,
        )
        .expect("node exists");
    (cluster, containers)
}

/// Drives 400 ticks of seeded traffic (skipping node 8's replicas) and
/// returns every tick report plus the final per-container usage peeks.
fn drive(parallelism: usize) -> (Vec<TickReport>, Vec<String>) {
    let (mut cluster, containers) = build_cluster(parallelism);
    let mut rng = SimRng::seed_from(0xD17E);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    let mut reports = Vec::new();
    for tick in 0..400 {
        for &id in &containers {
            // Node 8 slots are the last three containers: leave idle.
            if id.index() >= 24 {
                continue;
            }
            if rng.uniform_f64() < 0.6 {
                let service = cluster.container(id).expect("exists").spec().service;
                let request = Request::new(
                    service,
                    now,
                    rng.uniform_range(0.02, 0.2),
                    MemMb(4.0),
                    rng.uniform_range(0.0, 1.5),
                );
                let _ = cluster.admit_request(id, request, now);
            }
        }
        if tick == 150 {
            let _ = cluster.remove_container(containers[4], now);
        }
        reports.push(cluster.advance(now, dt));
        now += dt;
    }
    let usage: Vec<String> = containers
        .iter()
        .map(|&id| format!("{:?}", cluster.container_usage(id)))
        .collect();
    (reports, usage)
}

#[test]
fn parallel_ticks_are_bit_identical_to_serial() {
    let (serial_reports, serial_usage) = drive(1);
    let (parallel_reports, parallel_usage) = drive(4);
    assert_eq!(serial_reports.len(), parallel_reports.len());
    for (tick, (s, p)) in serial_reports.iter().zip(&parallel_reports).enumerate() {
        assert_eq!(s, p, "tick {tick} diverged");
    }
    assert_eq!(serial_usage, parallel_usage, "final usage diverged");
}

#[test]
fn oversubscribed_parallelism_is_still_identical() {
    // More workers than nodes: chunking must not drop or reorder nodes.
    let (serial_reports, _) = drive(1);
    let (wide_reports, _) = drive(32);
    assert_eq!(serial_reports, wide_reports);
}

#[test]
fn driver_reports_are_identical_at_any_parallelism() {
    let run = |parallelism: usize| {
        ScenarioBuilder::new("det-parallel")
            .nodes(6)
            .services(
                3,
                ServiceProfile::Mixed,
                LoadPattern::high_burst().scaled(8.0),
            )
            .algorithm(AlgorithmKind::HyScaleCpuMem)
            .duration_secs(120.0)
            .seed(7)
            .parallelism(parallelism)
            .run()
            .expect("scenario runs")
    };
    let serial = run(1);
    let parallel = run(4);
    // RunReport holds f64-laden metric types; their Debug form prints
    // shortest-roundtrip floats, so string equality is bit equality.
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// Builds the published chaos benchmark scenario (CPU-bound high burst
/// plus the seeded fault storm) at a given parallelism.
fn chaos_run(parallelism: usize, seed: u64) -> hyscale::core::RunReport {
    let scale = hyscale_bench::scenarios::Scale::bench();
    let mut config = hyscale_bench::scenarios::chaos(&scale, AlgorithmKind::HyScaleCpu);
    config.seed = seed;
    config.parallelism = parallelism;
    hyscale::core::SimulationDriver::run(&config).expect("chaos scenario runs")
}

#[test]
fn chaos_runs_are_identical_at_any_parallelism() {
    // Fault injection, recovery, and availability tracking all happen in
    // the serial tick phase, so the full chaos report — including the
    // fault log and per-service uptime — must be bit-identical.
    let serial = chaos_run(1, 101);
    let parallel = chaos_run(4, 101);
    assert!(serial.faults.total_applied() > 0, "faults actually fired");
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

#[test]
fn chaos_runs_are_reproducible_across_repeats() {
    let first = chaos_run(2, 101);
    let again = chaos_run(2, 101);
    assert_eq!(format!("{first:?}"), format!("{again:?}"));
    // A different workload seed faces the same fault plan but different
    // traffic: the report must differ (the seed actually matters).
    let other = chaos_run(2, 505);
    assert_ne!(format!("{first:?}"), format!("{other:?}"));
}
