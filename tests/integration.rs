//! Cross-crate integration tests: the paper's qualitative results, at
//! test scale.
//!
//! These drive the full pipeline (workload generators → load balancer →
//! cluster model → Monitor → algorithms) and assert the *orderings* the
//! paper reports — who wins, who fails more — rather than absolute
//! numbers, which depend on scale.

use hyscale::cluster::{Mbps, MemMb, NodeSpec};
use hyscale::core::{AlgorithmKind, RunReport, ScenarioBuilder};
use hyscale::workload::{LoadPattern, ServiceProfile, ServiceSpec};

/// A small CPU-bound scenario with heterogeneous service sizes, peaks at
/// ~60% of cluster CPU (mirrors the fig6 setup at test scale).
fn cpu_scenario(kind: AlgorithmKind, burst_high: bool) -> RunReport {
    let load = if burst_high {
        LoadPattern::high_burst()
    } else {
        LoadPattern::low_burst()
    };
    // 4 nodes * 4 cores = 16 cores; 3 services at 0.2 core-s/request.
    // Peak fraction 0.6 -> total peak rate 48 req/s across services.
    let total_peak = 0.6 * 16.0 / 0.2;
    let weights = [0.5, 1.0, 1.5];
    let mut builder = ScenarioBuilder::new("itest-cpu")
        .nodes(4)
        .duration_secs(900.0)
        .algorithm(kind)
        .seed(42);
    for (i, w) in weights.iter().enumerate() {
        let rate = total_peak * w / 3.0 / load.peak_rate();
        let mut spec = ServiceSpec::synthetic(
            i as u32,
            ServiceProfile::CpuBound,
            load.clone().scaled(rate),
        )
        .with_demands(0.2, MemMb(2.0), 0.5);
        spec.container = spec.container.clone().with_mem_limit(MemMb(512.0));
        builder = builder.service(spec);
    }
    builder.run().expect("scenario runs")
}

#[test]
fn hybrid_beats_kubernetes_on_cpu_bound_bursts() {
    let k8s = cpu_scenario(AlgorithmKind::Kubernetes, true);
    let hybrid = cpu_scenario(AlgorithmKind::HyScaleCpu, true);
    let hybridmem = cpu_scenario(AlgorithmKind::HyScaleCpuMem, true);

    // Paper Fig. 6: HyScale response times beat Kubernetes.
    assert!(
        hybrid.requests.mean_response_secs() < k8s.requests.mean_response_secs(),
        "hybrid {:.3}s vs k8s {:.3}s",
        hybrid.requests.mean_response_secs(),
        k8s.requests.mean_response_secs()
    );
    assert!(
        hybridmem.requests.mean_response_secs() < k8s.requests.mean_response_secs(),
        "hybridmem {:.3}s vs k8s {:.3}s",
        hybridmem.requests.mean_response_secs(),
        k8s.requests.mean_response_secs()
    );
    // Paper: HyScale drastically lowers the number of failed requests.
    assert!(hybrid.requests.failures.total() <= k8s.requests.failures.total());
    // The mechanism: Kubernetes can only scale horizontally, HyScale
    // prefers in-place docker updates.
    assert_eq!(k8s.scaling.vertical, 0);
    assert!(hybrid.scaling.vertical > 0);
    assert!(hybrid.scaling.spawns < k8s.scaling.spawns);
}

#[test]
fn everyone_healthy_on_stable_cpu_load() {
    for kind in [
        AlgorithmKind::Kubernetes,
        AlgorithmKind::HyScaleCpu,
        AlgorithmKind::HyScaleCpuMem,
    ] {
        let report = cpu_scenario(kind, false);
        assert!(
            report.requests.availability_pct() > 99.0,
            "{kind}: availability {:.2}%",
            report.requests.availability_pct()
        );
    }
}

/// Mixed scenario with rate-proportional working sets (fig7 at test
/// scale).
fn mixed_scenario(kind: AlgorithmKind) -> RunReport {
    // Mirrors the fig7 quick scenario: 8 nodes, 6 services sized 0.4x-1.6x
    // around a cluster peak of 55% CPU, working set 14 MB per served
    // req/s. The Fig. 7 inversion (kubernetes > hybrid) needs room for
    // Kubernetes to replicate onto, hence the larger cluster.
    let mut builder = ScenarioBuilder::new("itest-mixed")
        .nodes(8)
        .duration_secs(900.0)
        .algorithm(kind)
        .seed(17);
    let raw: Vec<f64> = (0..6).map(|i| 0.5 + 1.5 * i as f64 / 5.0).collect();
    let sum: f64 = raw.iter().sum();
    let factor = 0.55 * 32.0 / (20.0 * 0.12 * 6.0);
    for (i, w) in raw.iter().map(|w| w * 6.0 / sum).enumerate() {
        let mut spec = ServiceSpec::synthetic(
            i as u32,
            ServiceProfile::Mixed,
            LoadPattern::high_burst().scaled(factor * w),
        )
        .with_demands(0.12, MemMb(8.0), 0.2);
        spec.container = spec
            .container
            .clone()
            .with_mem_per_rps(MemMb(14.0))
            .with_queue_cap(64);
        builder = builder.service(spec);
    }
    builder.run().expect("scenario runs")
}

#[test]
fn memory_awareness_wins_on_mixed_loads() {
    let k8s = mixed_scenario(AlgorithmKind::Kubernetes);
    let hybrid = mixed_scenario(AlgorithmKind::HyScaleCpu);
    let hybridmem = mixed_scenario(AlgorithmKind::HyScaleCpuMem);

    // Paper Fig. 7/10: hybridmem has the fewest failures; Kubernetes
    // outperforms HyScaleCPU because replication incidentally adds
    // memory.
    assert!(
        hybridmem.requests.failed_pct() <= hybrid.requests.failed_pct(),
        "hybridmem {:.2}% vs hybrid {:.2}%",
        hybridmem.requests.failed_pct(),
        hybrid.requests.failed_pct()
    );
    assert!(
        hybridmem.requests.failed_pct() <= k8s.requests.failed_pct() + 0.5,
        "hybridmem {:.2}% vs k8s {:.2}%",
        hybridmem.requests.failed_pct(),
        k8s.requests.failed_pct()
    );
    assert!(
        k8s.requests.failed_pct() <= hybrid.requests.failed_pct(),
        "k8s {:.2}% vs hybrid {:.2}% (the Fig. 7 inversion)",
        k8s.requests.failed_pct(),
        hybrid.requests.failed_pct()
    );
    // Only the memory-aware variant updates memory limits.
    assert!(hybridmem.scaling.vertical > 0);
}

/// Network scenario where big services exceed one NIC at burst (fig8 at
/// test scale).
fn net_scenario(kind: AlgorithmKind) -> RunReport {
    let nic = 250.0;
    let mut builder = ScenarioBuilder::new("itest-net")
        .nodes_with_spec(4, NodeSpec::uniform_worker().with_nic(Mbps(nic)))
        .duration_secs(900.0)
        .algorithm(kind)
        .seed(23);
    for (i, peak_fraction) in [0.25, 0.65].into_iter().enumerate() {
        let load = LoadPattern::high_burst().scaled(peak_fraction * nic / (20.0 * 8.0));
        builder = builder.service(
            ServiceSpec::synthetic(i as u32, ServiceProfile::NetBound, load).with_demands(
                0.01,
                MemMb(4.0),
                8.0,
            ),
        );
    }
    builder.run().expect("scenario runs")
}

#[test]
fn network_scaler_wins_on_network_bursts() {
    let k8s = net_scenario(AlgorithmKind::Kubernetes);
    let network = net_scenario(AlgorithmKind::Network);
    // Paper Fig. 8: dedicated network scaling shows a clear advantage on
    // unstable network-bound loads.
    assert!(
        network.requests.mean_response_secs() < k8s.requests.mean_response_secs(),
        "network {:.3}s vs k8s {:.3}s",
        network.requests.mean_response_secs(),
        k8s.requests.mean_response_secs()
    );
    assert!(network.requests.failed_pct() <= k8s.requests.failed_pct());
    assert!(
        network.scaling.spawns > 0,
        "the win must come from scaling out"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = cpu_scenario(AlgorithmKind::HyScaleCpuMem, true);
    let b = cpu_scenario(AlgorithmKind::HyScaleCpuMem, true);
    assert_eq!(a.requests.issued, b.requests.issued);
    assert_eq!(a.requests.completed, b.requests.completed);
    assert_eq!(a.requests.failures, b.requests.failures);
    assert_eq!(a.scaling, b.scaling);
    assert_eq!(a.replicas.points(), b.replicas.points());
}

#[test]
fn disk_bound_services_flow_through_the_pipeline() {
    // The future-work resource type works end to end: disk-bound services
    // complete requests, and disk demand shows in the stats.
    let report = ScenarioBuilder::new("itest-disk")
        .nodes(2)
        .services(
            1,
            hyscale::workload::ServiceProfile::DiskBound,
            LoadPattern::Constant { rate: 4.0 },
        )
        .duration_secs(120.0)
        .algorithm(AlgorithmKind::HyScaleCpu)
        .seed(5)
        .run()
        .expect("runs");
    assert!(report.requests.completed > 200);
    assert!(report.requests.availability_pct() > 99.0);
}

#[test]
fn stateful_services_favour_vertical_scaling() {
    let run = |kind: AlgorithmKind| {
        let mut builder = ScenarioBuilder::new("itest-stateful")
            .nodes(4)
            .duration_secs(900.0)
            .algorithm(kind)
            .seed(11);
        for i in 0..2u32 {
            let mut spec = ServiceSpec::synthetic(
                i,
                ServiceProfile::CpuBound,
                LoadPattern::low_burst().scaled(2.0),
            )
            .with_demands(0.2, MemMb(2.0), 0.5);
            spec.container = spec
                .container
                .clone()
                .with_mem_limit(MemMb(512.0))
                .with_coordination_secs(0.05);
            builder = builder.service(spec);
        }
        builder.run().expect("runs")
    };
    let k8s = run(AlgorithmKind::Kubernetes);
    let hybrid = run(AlgorithmKind::HyScaleCpu);
    // Replication taxes every request of a stateful service; the hybrid
    // algorithm keeps fewer replicas and therefore wins clearly.
    assert!(
        hybrid.requests.mean_response_secs() < k8s.requests.mean_response_secs() * 0.85,
        "hybrid {:.3}s vs k8s {:.3}s",
        hybrid.requests.mean_response_secs(),
        k8s.requests.mean_response_secs()
    );
    assert!(hybrid.replicas.mean() < k8s.replicas.mean());
}

#[test]
fn umbrella_reexports_are_wired() {
    // The umbrella crate exposes every subsystem under stable names.
    let _ = hyscale::sim::SimTime::ZERO;
    let _ = hyscale::cluster::NodeSpec::uniform_worker();
    let _ = hyscale::workload::LoadPattern::low_burst();
    let _ = hyscale::metrics::Summary::new();
    let _ = hyscale::core::LoadBalancer::new();
}
