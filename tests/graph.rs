//! Battery for service dependency graphs: a three-tier scenario must
//! report per-entry-point end-to-end percentiles, journal per-hop spans
//! from which one logical request can be stitched back together by root
//! id, stay bit-identical at any worker count and across
//! snapshot/resume, and — when the graph carries no edges — reproduce
//! the classic independent-services run byte-for-byte.

use std::fs;
use std::path::PathBuf;

use hyscale::cluster::{ClusterConfig, FaultKind, FaultPlan, ServiceId};
use hyscale::core::{
    AlgorithmKind, ResilienceConfig, RunReport, ScenarioBuilder, ScenarioConfig, SimulationDriver,
    SnapshotPolicy,
};
use hyscale::trace::{export, RunMeta, TraceSink};
use hyscale::workload::{GraphEdge, LoadPattern, RetryPolicy, ServiceGraph, ServiceProfile};

/// A three-tier fan-out: frontend 0 spawns two hops on aggregator 1 and
/// one on aggregator 2; both aggregators call backend 3.
fn three_tier() -> ServiceGraph {
    ServiceGraph::new(4)
        .with_edge(0, 1, 2)
        .with_edge(0, 2, 1)
        .with_edge_spec(GraphEdge::new(1, 3, 1).with_costs(0.5, 2.0))
        .with_edge(2, 3, 1)
}

fn graph_config(seed: u64, parallelism: usize, cohort_warp: bool) -> ScenarioConfig {
    let load = if cohort_warp {
        // Idle spans between bursts let the time-warp fast path fire —
        // which must stay fenced while graph hops are still in flight.
        LoadPattern::Burst {
            base: 0.0,
            peak: 6.0,
            period_secs: 20.0,
            duty: 0.3,
        }
    } else {
        LoadPattern::Constant { rate: 3.0 }
    };
    ScenarioBuilder::new(if cohort_warp {
        "graph-battery-cohort-warp"
    } else {
        "graph-battery-events"
    })
    .nodes(4)
    .services(4, ServiceProfile::CpuBound, load)
    .duration_secs(120.0)
    .algorithm(AlgorithmKind::HyScaleCpu)
    .seed(seed)
    .parallelism(parallelism)
    .cohort_arrivals(cohort_warp)
    .time_warp(cohort_warp)
    .graph(three_tier())
    .build()
}

/// Runs `config` with an enabled sink and returns the JSONL journal plus
/// the report.
fn journal(config: &ScenarioConfig, capacity: usize) -> (String, RunReport) {
    let mut sink = TraceSink::with_capacity(capacity);
    let report = SimulationDriver::run_traced(config, &mut sink).expect("scenario runs");
    assert_eq!(sink.dropped(), 0, "journal must not drop events");
    let meta = RunMeta {
        scenario: &config.name,
        seed: config.seed,
        algorithm: config.algorithm.label(),
    };
    (export::jsonl(&sink, &meta), report)
}

#[test]
fn three_tier_reports_per_entry_point_percentiles() {
    let report = SimulationDriver::run(&graph_config(7, 1, false)).expect("scenario runs");
    // Only the frontend is an entry point; tiers 1-3 see derived traffic.
    assert_eq!(report.entry_points.len(), 1);
    let entry = &report.entry_points[0];
    assert_eq!(entry.service.index(), 0);
    assert!(entry.roots_started > 100, "{entry:?}");
    assert!(entry.roots_completed > 100, "{entry:?}");
    // Roots opened near the end of the run are legitimately still in
    // flight when the clock stops; everything else must have resolved.
    let resolved = entry.roots_completed + entry.roots_failed;
    assert!(
        resolved <= entry.roots_started && entry.roots_started - resolved <= 5,
        "too many unresolved roots: {entry:?}"
    );
    let p95 = entry.p95_secs();
    let p99 = entry.p99_secs();
    assert!(p95 > 0.0 && p99 >= p95, "p95 {p95}, p99 {p99}");
    // End-to-end latency spans at least three sequential tiers, so it
    // must exceed the frontend's own per-hop mean response time.
    assert!(
        entry.e2e_secs.mean() > report.requests.mean_response_secs(),
        "e2e mean {} vs per-hop mean {}",
        entry.e2e_secs.mean(),
        report.requests.mean_response_secs()
    );
    // Derived traffic actually hit the downstream tiers.
    for idx in 1..4u32 {
        let svc = &report.per_service[&ServiceId::new(idx)];
        assert!(svc.completed > 0, "tier {idx} saw no traffic");
    }
}

#[test]
fn one_request_stitches_from_spans_by_root_id() {
    let (journal, _) = journal(&graph_config(7, 1, false), 1 << 17);
    // Pick the first journaled root and collect every span bearing it.
    let first_span = journal
        .lines()
        .find(|l| l.contains("\"ev\":\"span\""))
        .expect("graph run journals spans");
    let root_key = first_span
        .split("\"root\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .expect("span carries a root id");
    let needle = format!("\"root\":{root_key},");
    let spans: Vec<&str> = journal
        .lines()
        .filter(|l| l.contains("\"ev\":\"span\"") && l.contains(&needle))
        .collect();
    let field = |line: &str, key: &str| -> u64 {
        line.split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("span missing {key}: {line}"))
    };
    // The three-tier graph moves 1 member through the frontend, 3
    // through the aggregators (fan-out 2 + 1), and 3 through the
    // backend. Admission may split a hop across containers (one span
    // each), so member counts — not span counts — are the invariant.
    for (expect, depth) in [(1, 0), (3, 1), (3, 2)] {
        let members: u64 = spans
            .iter()
            .filter(|l| field(l, "depth") == depth)
            .map(|l| field(l, "count"))
            .sum();
        assert_eq!(members, expect, "wrong member count at depth {depth}");
    }
    // Every hop of the root is attributed to the frontend entry point.
    assert!(spans.iter().all(|l| field(l, "entry") == 0));
    // Aggregator hops run on services 1 and 2, backend hops on 3.
    let services = |depth: u64| -> Vec<u64> {
        let mut s: Vec<u64> = spans
            .iter()
            .filter(|l| field(l, "depth") == depth)
            .map(|l| field(l, "service"))
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    assert_eq!(services(0), vec![0]);
    assert_eq!(services(1), vec![1, 2]);
    assert_eq!(services(2), vec![3]);
}

#[test]
fn graph_journal_is_byte_identical_serial_vs_parallel() {
    let (serial, a) = journal(&graph_config(9, 1, false), 1 << 17);
    let (parallel, b) = journal(&graph_config(9, 4, false), 1 << 17);
    assert!(serial.contains("\"ev\":\"span\""));
    assert_eq!(serial, parallel, "worker count leaked into the journal");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn cohort_warp_graph_runs_are_deterministic_and_resolve_all_roots() {
    let (serial, a) = journal(&graph_config(11, 1, true), 1 << 17);
    let (parallel, b) = journal(&graph_config(11, 4, true), 1 << 17);
    assert_eq!(serial, parallel);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    let entry = &a.entry_points[0];
    assert!(entry.roots_started > 0);
    let resolved = entry.roots_completed + entry.roots_failed;
    assert!(
        resolved <= entry.roots_started && entry.roots_started - resolved <= 5,
        "too many unresolved roots: {entry:?}"
    );
    // Cohort batches record one e2e sample per member.
    assert_eq!(entry.e2e_secs.count() as u64, entry.members_completed);
}

#[test]
fn graph_run_resumes_bit_identically_from_a_snapshot() {
    let dir = std::env::temp_dir().join(format!("hyscale-graphsnap-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");

    // Uninterrupted, snapshotting along the way.
    let mut config = graph_config(13, 2, false);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 400,
        dir: dir.clone(),
        halt_after_first: false,
    });
    let full = SimulationDriver::run(&config).expect("full run");

    // Killed right after the first snapshot, mid-flight graph state and
    // all, then resumed from the file it wrote.
    let dir_cut = dir.join("cut");
    fs::create_dir_all(&dir_cut).expect("scratch dir");
    let mut config = graph_config(13, 2, false);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 400,
        dir: dir_cut.clone(),
        halt_after_first: true,
    });
    SimulationDriver::run(&config).expect("halted run");
    let mut snaps: Vec<PathBuf> = fs::read_dir(&dir_cut)
        .expect("snapshot dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    snaps.sort();
    let mut config = graph_config(13, 4, false);
    config.snapshot = Some(SnapshotPolicy {
        every_ticks: 400,
        dir: dir_cut,
        halt_after_first: false,
    });
    config.resume = Some(snaps.into_iter().next().expect("one snapshot"));
    let resumed = SimulationDriver::run(&config).expect("resumed run");

    assert_eq!(
        format!("{full:?}"),
        format!("{resumed:?}"),
        "resumed graph run diverges from the uninterrupted one"
    );
    assert!(full.state_digest.is_some());
    assert_eq!(full.state_digest, resumed.state_digest);
    let _ = fs::remove_dir_all(&dir);
}

/// The three-tier graph with the resilience layer live: a mid-run node
/// crash and an OOM-kill feed retryable failures into tight container
/// queues, while a 2 s root deadline (exactly 20 of the 100 ms ticks,
/// so deadline comparisons land on tick boundaries), a 20% retry
/// budget, and an admission watermark all engage. Every engine knob is
/// explicit so tests can toggle them independently.
fn resilient_graph_config(
    parallelism: usize,
    cohort: bool,
    warp: bool,
    active_set: bool,
) -> ScenarioConfig {
    let load = if cohort {
        LoadPattern::Burst {
            base: 0.0,
            peak: 6.0,
            period_secs: 20.0,
            duty: 0.3,
        }
    } else {
        LoadPattern::Constant { rate: 3.0 }
    };
    let mut config = ScenarioBuilder::new("graph-resilience")
        .nodes(4)
        .services(4, ServiceProfile::CpuBound, load)
        .duration_secs(120.0)
        .algorithm(AlgorithmKind::HyScaleCpu)
        .seed(17)
        .parallelism(parallelism)
        .tick_millis(100)
        .cohort_arrivals(cohort)
        .time_warp(warp)
        .cluster_config(ClusterConfig {
            active_set,
            ..ClusterConfig::default()
        })
        .graph(three_tier())
        .faults(
            FaultPlan::new()
                .with(
                    30.0,
                    FaultKind::NodeCrash {
                        node: 1,
                        down_secs: 20.0,
                    },
                )
                .with(60.0, FaultKind::OomKill { service: 3 }),
        )
        .resilience(
            // Jitter-free backoff: retry times are exact multiples of
            // 0.5 s past the failure, so deadline comparisons hit the
            // boundary case deterministically.
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(0.5, 4.0, 0.0))
                .with_root_budget_secs(2.0)
                .with_budget(20.0, 32.0)
                .with_shed_watermark(500),
        )
        .build();
    for spec in &mut config.services {
        spec.container = spec.container.clone().with_queue_cap(16);
    }
    config
}

#[test]
fn resilience_free_journal_carries_no_resilience_counters() {
    // A graph run with the layer off: graph counters appear, but no
    // retry/shed/goodput names and no resilience events — the journal
    // stays byte-identical to builds without the layer.
    let (plain, report) = journal(&graph_config(9, 1, false), 1 << 17);
    assert!(plain.contains("graph.roots_completed"));
    assert_eq!(report.resilience, Default::default());
    for needle in [
        "retry.",
        "shed.",
        "goodput.",
        "wasted.",
        "\"ev\":\"retry\"",
        "\"ev\":\"shed\"",
        "\"ev\":\"budget_exhausted\"",
        "\"ev\":\"deadline_exceeded\"",
    ] {
        assert!(
            !plain.contains(needle),
            "resilience leaked into a resilience-free journal: {needle}"
        );
    }
    // A disabled layer must ignore its other knobs entirely: junk
    // budgets and watermarks produce a byte-identical journal.
    let mut junk = graph_config(9, 1, false);
    junk.resilience.budget_pct = 50.0;
    junk.resilience.budget_floor = 8.0;
    junk.resilience.root_budget_secs = 1.0;
    junk.resilience.shed_watermark = 7;
    let (still_plain, _) = journal(&junk, 1 << 17);
    assert_eq!(
        plain, still_plain,
        "disabled resilience knobs perturbed the run"
    );
    // Positive control: an enabled layer does journal those counters
    // (proving the needles above test the real names).
    let (rich, report) = journal(&resilient_graph_config(1, false, false, true), 1 << 17);
    assert!(report.resilience.retries > 0, "{:?}", report.resilience);
    for needle in [
        "retry.attempts",
        "shed.roots",
        "goodput.members",
        "\"ev\":\"retry\"",
    ] {
        assert!(rich.contains(needle), "enabled journal missing {needle}");
    }
}

#[test]
fn deadline_ticks_are_identical_across_every_engine() {
    // The 2 s root deadline is exactly 20 ticks, so deadline and
    // backoff comparisons land on tick boundaries — where a serial,
    // parallel, active-set, or time-warp engine disagreeing by one
    // tick would show up immediately.
    let base = SimulationDriver::run(&resilient_graph_config(1, false, false, true))
        .expect("scenario runs");
    assert!(base.resilience.retries > 0, "{:?}", base.resilience);
    for (label, config) in [
        ("parallel(4)", resilient_graph_config(4, false, false, true)),
        (
            "active-set off",
            resilient_graph_config(2, false, false, false),
        ),
    ] {
        let report = SimulationDriver::run(&config).expect("scenario runs");
        assert_eq!(
            format!("{base:?}"),
            format!("{report:?}"),
            "{label} diverged from the serial baseline"
        );
    }
    // Cohort mode, warp on: still bit-identical at any worker count.
    let cohort = SimulationDriver::run(&resilient_graph_config(1, true, false, true))
        .expect("scenario runs");
    assert!(cohort.resilience.retries > 0, "{:?}", cohort.resilience);
    let warped =
        SimulationDriver::run(&resilient_graph_config(1, true, true, true)).expect("scenario runs");
    let warped_par =
        SimulationDriver::run(&resilient_graph_config(4, true, true, true)).expect("scenario runs");
    assert_eq!(
        format!("{warped:?}"),
        format!("{warped_par:?}"),
        "warped run diverged between worker counts"
    );
    // Warp on vs off: the fast path re-associates float sums (response
    // samples, availability seconds), so full bit-equality is not the
    // invariant — but every discrete outcome is: the warp must not jump
    // a retry wake-up, a deadline boundary, or a budget decision.
    assert_eq!(cohort.requests.issued, warped.requests.issued);
    assert_eq!(cohort.requests.completed, warped.requests.completed);
    assert_eq!(cohort.requests.failures, warped.requests.failures);
    assert_eq!(cohort.resilience, warped.resilience);
    for (a, b) in cohort.entry_points.iter().zip(&warped.entry_points) {
        assert_eq!(a.roots_started, b.roots_started);
        assert_eq!(a.roots_completed, b.roots_completed);
        assert_eq!(a.roots_failed, b.roots_failed);
        assert_eq!(a.members_completed, b.members_completed);
    }
}

#[test]
fn edge_free_graph_reproduces_the_classic_run_bit_for_bit() {
    let classic = |graph: Option<ServiceGraph>| {
        let mut builder = ScenarioBuilder::new("graph-degenerate")
            .nodes(3)
            .services(
                2,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 4.0 },
            )
            .duration_secs(90.0)
            .algorithm(AlgorithmKind::HyScaleCpu)
            .seed(21);
        if let Some(g) = graph {
            builder = builder.graph(g);
        }
        SimulationDriver::run(&builder.build()).expect("scenario runs")
    };
    let plain = classic(None);
    let mut degenerate = classic(Some(ServiceGraph::new(2)));
    // With no edges every service is an entry point, no derived traffic
    // exists, and no extra RNG is drawn: everything the classic report
    // carries must match bit-for-bit. Only the entry-point stats — which
    // the classic run cannot produce at all — may differ.
    assert_eq!(degenerate.entry_points.len(), 2);
    assert_eq!(
        degenerate.entry_points[0].roots_completed + degenerate.entry_points[0].roots_failed,
        degenerate.entry_points[0].roots_started
    );
    degenerate.entry_points.clear();
    assert_eq!(
        format!("{plain:?}"),
        format!("{degenerate:?}"),
        "an edge-free graph perturbed the classic run"
    );
}
