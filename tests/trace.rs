//! Determinism battery for the decision-trace journal: a seeded scenario
//! must serialize to a **byte-identical** JSONL journal at any
//! parallelism setting and across repeated runs, tracing must not perturb
//! the simulation itself, and the ring buffer must degrade gracefully
//! when a run outgrows it.

use hyscale::cluster::{FaultKind, FaultPlan};
use hyscale::core::{
    AlgorithmKind, ControlPlaneConfig, RunReport, ScenarioBuilder, ScenarioConfig, SimulationDriver,
};
use hyscale::trace::{export, RunMeta, TraceSink};
use hyscale::workload::{LoadPattern, ServiceProfile};

/// A small chaos scenario: every trace-emitting subsystem fires within
/// 120 simulated seconds (scaling, faults, recovery, balancer rejects).
fn chaos_config(seed: u64, parallelism: usize) -> ScenarioConfig {
    ScenarioBuilder::new("trace-chaos")
        .nodes(4)
        .services(
            2,
            ServiceProfile::CpuBound,
            LoadPattern::Constant { rate: 4.0 },
        )
        .duration_secs(120.0)
        .algorithm(AlgorithmKind::HyScaleCpu)
        .seed(seed)
        .parallelism(parallelism)
        .faults(
            FaultPlan::new()
                .with(
                    30.0,
                    FaultKind::NodeCrash {
                        node: 0,
                        down_secs: 20.0,
                    },
                )
                .with(45.0, FaultKind::OomKill { service: 1 })
                .with(
                    50.0,
                    FaultKind::NicDegrade {
                        node: 1,
                        factor: 0.2,
                        duration_secs: 15.0,
                    },
                )
                .with(
                    60.0,
                    FaultKind::StatOutage {
                        node: 2,
                        duration_secs: 10.0,
                    },
                ),
        )
        .build()
}

/// The chaos scenario run through a hot degraded control plane: loss,
/// delay, duplication, and actuation failure all cranked high enough
/// that every control-plane event kind fires within the run.
fn degraded_config(seed: u64, parallelism: usize) -> ScenarioConfig {
    let mut config = chaos_config(seed, parallelism);
    config.name = "trace-chaos-degraded".to_string();
    let mut cp = ControlPlaneConfig::degraded();
    cp.loss_prob = 0.2;
    cp.delay_prob = 0.3;
    cp.duplicate_prob = 0.1;
    cp.actuation_failure_prob = 0.5;
    config.control_plane = cp;
    config
}

/// Runs `config` with an enabled sink of `capacity` and returns the JSONL
/// journal plus the report.
fn journal(config: &ScenarioConfig, capacity: usize) -> (String, RunReport) {
    let mut sink = TraceSink::with_capacity(capacity);
    let report = SimulationDriver::run_traced(config, &mut sink).expect("scenario runs");
    let meta = RunMeta {
        scenario: &config.name,
        seed: config.seed,
        algorithm: config.algorithm.label(),
    };
    (export::jsonl(&sink, &meta), report)
}

#[test]
fn chaos_journal_is_byte_identical_serial_vs_parallel() {
    let (serial, _) = journal(&chaos_config(9, 1), 16_384);
    let (parallel, _) = journal(&chaos_config(9, 4), 16_384);
    assert!(serial.lines().count() > 50, "journal has substance");
    assert_eq!(serial, parallel, "worker count leaked into the journal");
}

#[test]
fn journal_is_byte_identical_across_repeated_runs() {
    let (first, _) = journal(&chaos_config(11, 2), 16_384);
    let (again, _) = journal(&chaos_config(11, 2), 16_384);
    assert_eq!(first, again);
}

#[test]
fn different_seeds_produce_different_journals() {
    let (a, _) = journal(&chaos_config(1, 1), 16_384);
    let (b, _) = journal(&chaos_config(2, 1), 16_384);
    assert_ne!(a, b, "the seed must actually matter");
}

#[test]
fn csv_export_is_deterministic_too() {
    let run = |seed| {
        let config = chaos_config(seed, 1);
        let mut sink = TraceSink::with_capacity(16_384);
        SimulationDriver::run_traced(&config, &mut sink).expect("scenario runs");
        export::csv(&sink)
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}

#[test]
fn chaos_journal_covers_the_whole_event_taxonomy() {
    let (journal, report) = journal(&chaos_config(9, 1), 16_384);
    for needle in [
        "\"ev\":\"run_start\"",
        "\"ev\":\"evaluation\"",
        "\"ev\":\"decision\"",
        "\"ev\":\"pressure\"",
        "\"ev\":\"balancer\"",
        "\"ev\":\"fault\"",
        "\"ev\":\"replica_death\"",
        "\"ev\":\"counter\"",
        "\"fault\":\"node_crash\"",
        "\"fault\":\"oom_kill\"",
        "\"fault\":\"reboot\"",
    ] {
        assert!(journal.contains(needle), "missing {needle}");
    }
    // The counter tail agrees with the report the same run produced.
    let issued = format!(
        "\"name\":\"requests.issued\",\"value\":{}",
        report.requests.issued
    );
    assert!(journal.contains(&issued), "counter dump disagrees");
}

/// Acceptance gate: the degraded control plane draws all its chaos in
/// the serial Monitor phase, so the journal — drops, late deliveries,
/// retries, breaker transitions and all — must be byte-identical at any
/// worker count.
#[test]
fn degraded_journal_is_byte_identical_across_worker_counts() {
    let (one, _) = journal(&degraded_config(9, 1), 16_384);
    let (two, _) = journal(&degraded_config(9, 2), 16_384);
    let (four, _) = journal(&degraded_config(9, 4), 16_384);
    assert!(
        one.contains("\"ev\":\"report_link\""),
        "the degradation layer must actually fire"
    );
    assert_eq!(one, two, "worker count 2 leaked into the degraded journal");
    assert_eq!(one, four, "worker count 4 leaked into the degraded journal");
}

#[test]
fn degraded_journal_covers_the_control_plane_taxonomy() {
    let (journal, report) = journal(&degraded_config(9, 1), 16_384);
    for needle in [
        "\"ev\":\"report_link\"",
        "\"link\":\"lost\"",
        "\"link\":\"late\"",
        "\"link\":\"duplicate\"",
        "\"ev\":\"actuation\"",
        "\"outcome\":\"failed\"",
    ] {
        assert!(journal.contains(needle), "missing {needle}");
    }
    assert!(report.control_plane.reports_lost > 0);
    assert!(report.control_plane.actuation_failures > 0);
    // The counter tail agrees with the report the same run produced.
    let lost = format!(
        "\"name\":\"controlplane.reports_lost\",\"value\":{}",
        report.control_plane.reports_lost
    );
    assert!(journal.contains(&lost), "counter dump disagrees");
}

#[test]
fn recovery_respawns_show_up_in_the_journal() {
    // No autoscaler: when the only replica's node crashes, the recovery
    // path is the sole way back, so its respawn must be journaled.
    let config = ScenarioBuilder::new("trace-recovery")
        .nodes(2)
        .services(
            1,
            ServiceProfile::CpuBound,
            LoadPattern::Constant { rate: 2.0 },
        )
        .duration_secs(120.0)
        .algorithm(AlgorithmKind::None)
        .seed(5)
        .faults(FaultPlan::new().with(
            30.0,
            FaultKind::NodeCrash {
                node: 0,
                down_secs: 60.0,
            },
        ))
        .build();
    let (journal, report) = journal(&config, 16_384);
    assert!(report.total_respawns() >= 1, "{report:?}");
    assert!(journal.contains("\"ev\":\"recovery_respawn\""));
    assert!(journal.contains("\"ev\":\"replica_death\""));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let config = chaos_config(9, 1);
    let untraced = SimulationDriver::run(&config).expect("scenario runs");
    let (_, traced) = journal(&config, 16_384);
    // Debug prints shortest-roundtrip floats, so string equality is bit
    // equality across every metric in the report.
    assert_eq!(format!("{untraced:?}"), format!("{traced:?}"));
}

#[test]
fn disabled_sink_stays_empty() {
    let mut sink = TraceSink::disabled();
    SimulationDriver::run_traced(&chaos_config(9, 1), &mut sink).expect("scenario runs");
    assert!(sink.is_empty());
    assert_eq!(sink.total_emitted(), 0);
}

#[test]
fn ring_wraparound_keeps_newest_events_and_stays_deterministic() {
    let tiny = |seed| {
        let config = chaos_config(seed, 1);
        let mut sink = TraceSink::with_capacity(64);
        SimulationDriver::run_traced(&config, &mut sink).expect("scenario runs");
        assert!(sink.dropped() > 0, "the run must outgrow 64 slots");
        assert_eq!(sink.len(), 64);
        let seqs: Vec<u64> = sink.events().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "oldest-first");
        // The newest events survive: the tail is the end-of-run counters.
        export::jsonl(&sink, &RunMeta::default())
    };
    let journal = tiny(9);
    assert!(journal.lines().count() == 65);
    assert!(journal.contains("\"name\":\"replica.deaths\""));
    // The control-plane counters are appended after the legacy dozen;
    // the ring must still be wide enough that the whole dump survives.
    assert!(journal.contains("\"name\":\"controlplane.stale_vetoes\""));
    assert_eq!(journal, tiny(9), "wraparound must not break determinism");
}
