//! Lifecycle and partitioning regression tests for the persistent
//! tick-worker pool: a panicking worker propagates instead of
//! deadlocking, `set_parallelism` resizes pool and scratch mid-run
//! without changing a bit of output, dropping a `Cluster` joins every
//! worker (no thread leak across repeated construction), and heavily
//! skewed container placement — the case container-weighted partitioning
//! exists for — stays byte-identical serial vs parallel and across
//! repeated runs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use hyscale::cluster::{
    Cluster, ClusterConfig, ContainerId, ContainerSpec, Cores, MemMb, NodeId, NodeSpec, Request,
    ServiceId, TickReport,
};
use hyscale::sim::{SimDuration, SimRng, SimTime};

const DT_MS: u64 = 100;

/// A small busy cluster: every node hosts replicas, every replica gets
/// seeded traffic each tick.
fn build_uniform(parallelism: usize, nodes: usize) -> (Cluster, Vec<ContainerId>) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.set_parallelism(parallelism);
    let mut containers = Vec::new();
    for n in 0..nodes {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        for c in 0..2 {
            let service = ServiceId::new(((n * 2 + c) % 4) as u32);
            let spec = ContainerSpec::new(service)
                .with_cpu_request(Cores(1.0))
                .with_mem_limit(MemMb(256.0))
                .with_startup_secs(0.0);
            let id = cluster
                .start_container(node, spec, SimTime::ZERO)
                .expect("node exists");
            containers.push(id);
        }
    }
    (cluster, containers)
}

/// One node carrying ~10x the containers of every other node: the
/// skew that index-chunked partitioning handles badly.
fn build_skewed(parallelism: usize) -> (Cluster, Vec<ContainerId>) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.set_parallelism(parallelism);
    let mut containers = Vec::new();
    let hot = cluster.add_node(NodeSpec::uniform_worker());
    for c in 0..20 {
        let spec = ContainerSpec::new(ServiceId::new((c % 5) as u32))
            .with_cpu_request(Cores(0.2))
            .with_mem_limit(MemMb(128.0))
            .with_startup_secs(0.0);
        containers.push(
            cluster
                .start_container(hot, spec, SimTime::ZERO)
                .expect("hot node fits"),
        );
    }
    for n in 0..7 {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        let spec = ContainerSpec::new(ServiceId::new((n % 5) as u32))
            .with_cpu_request(Cores(1.0))
            .with_mem_limit(MemMb(256.0))
            .with_startup_secs(0.0);
        containers.push(
            cluster
                .start_container(node, spec, SimTime::ZERO)
                .expect("node fits"),
        );
    }
    (cluster, containers)
}

fn tick_traffic(cluster: &mut Cluster, containers: &[ContainerId], rng: &mut SimRng, now: SimTime) {
    for &id in containers {
        if rng.uniform_f64() < 0.7 {
            let service = cluster.container(id).expect("exists").spec().service;
            let request = Request::new(
                service,
                now,
                rng.uniform_range(0.01, 0.12),
                MemMb(4.0),
                rng.uniform_range(0.0, 1.0),
            );
            let _ = cluster.admit_request(id, request, now);
        }
    }
}

/// Number of OS threads in this process, from /proc (Linux CI and dev
/// boxes; the leak test is skipped elsewhere).
#[cfg(target_os = "linux")]
fn process_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line present")
}

#[test]
fn worker_panic_propagates_instead_of_deadlocking() {
    let (mut cluster, containers) = build_uniform(4, 8);
    let mut rng = SimRng::seed_from(0xBAD);
    let dt = SimDuration::from_millis(DT_MS);
    let mut now = SimTime::ZERO;
    for _ in 0..5 {
        tick_traffic(&mut cluster, &containers, &mut rng, now);
        cluster.advance(now, dt);
        now += dt;
    }

    // Poison a node near the end of the list so it lands on a pool
    // worker, not the coordinator's first partition.
    cluster.inject_tick_panic(Some(NodeId::new(7)));
    let at = now;
    let result = catch_unwind(AssertUnwindSafe(|| {
        cluster.advance(at, dt);
    }));
    let payload = result.expect_err("poisoned tick must panic, not hang");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("injected tick panic"), "got: {msg}");

    // The pool survived the unwind: it keeps propagating...
    let again = catch_unwind(AssertUnwindSafe(|| {
        cluster.advance(at, dt);
    }));
    assert!(again.is_err(), "second poisoned tick must panic too");

    // ...and once the poison is cleared, ticks run normally again and
    // the cluster can be dropped without hanging on a stuck worker.
    cluster.inject_tick_panic(None);
    for _ in 0..5 {
        tick_traffic(&mut cluster, &containers, &mut rng, now);
        cluster.advance(now, dt);
        now += dt;
    }
}

#[test]
fn serial_poison_panics_identically() {
    // The hook goes through the same code path serially, so the panic
    // contract does not depend on the pool.
    let (mut cluster, _) = build_uniform(1, 4);
    cluster.inject_tick_panic(Some(NodeId::new(2)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        cluster.advance(SimTime::ZERO, SimDuration::from_millis(DT_MS));
    }));
    assert!(result.is_err());
}

#[test]
fn reconfiguring_parallelism_mid_run_is_bit_identical() {
    // A resize schedule that moves up, down, to serial, and oversubscribed.
    let schedule: &[(usize, usize)] = &[(0, 1), (50, 4), (100, 2), (150, 8), (200, 1), (250, 3)];
    let drive = |resizes: bool| -> (Vec<TickReport>, Vec<String>) {
        let (mut cluster, containers) = build_uniform(1, 9);
        let mut rng = SimRng::seed_from(0x5EED);
        let dt = SimDuration::from_millis(DT_MS);
        let mut now = SimTime::ZERO;
        let mut reports = Vec::new();
        for tick in 0..300 {
            if resizes {
                if let Some(&(_, workers)) = schedule.iter().find(|&&(at, _)| at == tick) {
                    cluster.set_parallelism(workers);
                }
            }
            tick_traffic(&mut cluster, &containers, &mut rng, now);
            reports.push(cluster.advance(now, dt));
            now += dt;
        }
        let usage = containers
            .iter()
            .map(|&id| format!("{:?}", cluster.container_usage(id)))
            .collect();
        (reports, usage)
    };
    let (serial_reports, serial_usage) = drive(false);
    let (resized_reports, resized_usage) = drive(true);
    for (tick, (s, p)) in serial_reports.iter().zip(&resized_reports).enumerate() {
        assert_eq!(s, p, "tick {tick} diverged after a resize");
    }
    assert_eq!(serial_usage, resized_usage, "final usage diverged");
}

#[test]
fn repeated_reconfiguration_does_not_accumulate_threads() {
    let (mut cluster, containers) = build_uniform(4, 6);
    let mut rng = SimRng::seed_from(0x7EAD);
    let dt = SimDuration::from_millis(DT_MS);
    let mut now = SimTime::ZERO;
    // Churn the pool size; each resize joins the old pool first.
    for round in 0..20 {
        cluster.set_parallelism(1 + (round % 5));
        tick_traffic(&mut cluster, &containers, &mut rng, now);
        cluster.advance(now, dt);
        now += dt;
    }
    #[cfg(target_os = "linux")]
    {
        cluster.set_parallelism(3);
        cluster.advance(now, dt);
        let with_pool = process_thread_count();
        cluster.set_parallelism(1);
        let serial_again = process_thread_count();
        assert_eq!(
            serial_again,
            with_pool - 2,
            "shrinking to serial joins the pool's 2 threads"
        );
    }
}

#[test]
#[cfg(target_os = "linux")]
fn dropping_clusters_joins_all_workers() {
    // Warm up allocators/runtime threads, then measure the baseline.
    {
        let (mut cluster, _) = build_uniform(4, 6);
        cluster.advance(SimTime::ZERO, SimDuration::from_millis(DT_MS));
    }
    let baseline = process_thread_count();
    for _ in 0..25 {
        let (mut cluster, containers) = build_uniform(4, 6);
        let mut rng = SimRng::seed_from(0xD20B);
        tick_traffic(&mut cluster, &containers, &mut rng, SimTime::ZERO);
        cluster.advance(SimTime::ZERO, SimDuration::from_millis(DT_MS));
        drop(cluster);
    }
    let after = process_thread_count();
    assert_eq!(
        baseline, after,
        "thread count grew across 25 construct/drop cycles"
    );
}

#[test]
fn cloned_cluster_respawns_its_own_pool_and_matches() {
    let (mut original, containers) = build_uniform(4, 8);
    let mut rng = SimRng::seed_from(0xC10E);
    let dt = SimDuration::from_millis(DT_MS);
    let mut now = SimTime::ZERO;
    for _ in 0..20 {
        tick_traffic(&mut original, &containers, &mut rng, now);
        original.advance(now, dt);
        now += dt;
    }
    // The clone shares no threads with the original, but advancing both
    // with the same traffic must stay bit-identical.
    let mut clone = original.clone();
    let mut rng_a = SimRng::seed_from(0xF00D);
    let mut rng_b = SimRng::seed_from(0xF00D);
    for _ in 0..20 {
        tick_traffic(&mut original, &containers, &mut rng_a, now);
        tick_traffic(&mut clone, &containers, &mut rng_b, now);
        let a = original.advance(now, dt);
        let b = clone.advance(now, dt);
        assert_eq!(a, b, "clone diverged from original");
        now += dt;
    }
}

#[test]
fn skewed_cluster_is_bit_identical_serial_vs_parallel() {
    let drive = |parallelism: usize| -> (Vec<TickReport>, Vec<String>) {
        let (mut cluster, containers) = build_skewed(parallelism);
        let mut rng = SimRng::seed_from(0x0DD);
        let dt = SimDuration::from_millis(DT_MS);
        let mut now = SimTime::ZERO;
        let mut reports = Vec::new();
        for _ in 0..250 {
            tick_traffic(&mut cluster, &containers, &mut rng, now);
            reports.push(cluster.advance(now, dt));
            now += dt;
        }
        let usage = containers
            .iter()
            .map(|&id| format!("{:?}", cluster.container_usage(id)))
            .collect();
        (reports, usage)
    };
    let (serial_reports, serial_usage) = drive(1);
    for workers in [2, 4, 8] {
        let (par_reports, par_usage) = drive(workers);
        for (tick, (s, p)) in serial_reports.iter().zip(&par_reports).enumerate() {
            assert_eq!(s, p, "tick {tick} diverged at {workers} workers");
        }
        assert_eq!(
            serial_usage, par_usage,
            "usage diverged at {workers} workers"
        );
    }
}

#[test]
fn skewed_cluster_partition_is_stable_across_repeats() {
    // The weighted partition is a pure function of cluster state, so two
    // identical seeded runs must produce byte-identical reports *and*
    // identical wall-clock-independent state at every tick — rerunning
    // is the observable form of "the partition is stable".
    let run = |seed: u64| -> Vec<TickReport> {
        let (mut cluster, containers) = build_skewed(4);
        let mut rng = SimRng::seed_from(seed);
        let dt = SimDuration::from_millis(DT_MS);
        let mut now = SimTime::ZERO;
        let mut reports = Vec::new();
        for _ in 0..200 {
            tick_traffic(&mut cluster, &containers, &mut rng, now);
            reports.push(cluster.advance(now, dt));
            now += dt;
        }
        reports
    };
    assert_eq!(run(0x11), run(0x11), "same seed must replay identically");
    assert_ne!(run(0x11), run(0x22), "different seeds must actually differ");
}
