//! Golden ordering tests: the paper's headline comparisons, pinned as
//! orderings rather than absolute numbers (Sec. VI, Figs. 4-6).
//!
//! These drive the exact benchmark scenario definitions from
//! `hyscale-bench` at `Scale::bench()` with fixed seeds, so the
//! assertions are deterministic. They deliberately compare algorithms
//! against each other instead of pinning response times, which drift
//! with any model change; the *orderings* are the paper's claims:
//!
//! * HyScaleCPU beats the Kubernetes HPA on CPU-bound workloads — lower
//!   mean response time and no more failed requests (Fig. 4-5).
//! * HyScaleCPU+Mem is the strongest on the mixed (CPU+memory) high-burst
//!   workload: fastest and fewest failures of the three (Fig. 5-6).

use hyscale::core::{AlgorithmKind, RunReport, SimulationDriver};
use hyscale_bench::scenarios::{cpu_bound, mixed, Burst, Scale};

/// Two seeds keep the comparison honest without making the suite slow.
const SEEDS: &[u64] = &[101, 202];

fn run(config: hyscale::core::ScenarioConfig) -> RunReport {
    SimulationDriver::run_averaged(&config, SEEDS).expect("scenario runs")
}

#[test]
fn hyscale_cpu_beats_kubernetes_on_cpu_bound_low_burst() {
    let scale = Scale::bench();
    let k8s = run(cpu_bound(&scale, Burst::Low, AlgorithmKind::Kubernetes));
    let hyb = run(cpu_bound(&scale, Burst::Low, AlgorithmKind::HyScaleCpu));
    assert!(
        hyb.requests.mean_response_secs() < k8s.requests.mean_response_secs(),
        "HyScaleCPU {:.1} ms should beat Kubernetes {:.1} ms on cpu/low",
        hyb.requests.mean_response_secs() * 1e3,
        k8s.requests.mean_response_secs() * 1e3,
    );
    assert!(
        hyb.requests.failures.total() <= k8s.requests.failures.total(),
        "HyScaleCPU failed {} vs Kubernetes {} on cpu/low",
        hyb.requests.failures.total(),
        k8s.requests.failures.total(),
    );
}

#[test]
fn hyscale_cpu_beats_kubernetes_on_cpu_bound_high_burst() {
    let scale = Scale::bench();
    let k8s = run(cpu_bound(&scale, Burst::High, AlgorithmKind::Kubernetes));
    let hyb = run(cpu_bound(&scale, Burst::High, AlgorithmKind::HyScaleCpu));
    // Under bursts the gap widens: vertical scaling reacts within one
    // monitor period while the HPA pays the horizontal cold start. At
    // this scale the measured gap is >2x; assert a conservative 20%.
    assert!(
        hyb.requests.mean_response_secs() < 0.8 * k8s.requests.mean_response_secs(),
        "HyScaleCPU {:.1} ms should clearly beat Kubernetes {:.1} ms on cpu/high",
        hyb.requests.mean_response_secs() * 1e3,
        k8s.requests.mean_response_secs() * 1e3,
    );
    assert!(
        hyb.requests.failures.total() <= k8s.requests.failures.total(),
        "HyScaleCPU failed {} vs Kubernetes {} on cpu/high",
        hyb.requests.failures.total(),
        k8s.requests.failures.total(),
    );
}

#[test]
fn hyscale_cpu_mem_is_strongest_on_mixed_high_burst() {
    let scale = Scale::bench();
    let k8s = run(mixed(&scale, Burst::High, AlgorithmKind::Kubernetes));
    let cpu = run(mixed(&scale, Burst::High, AlgorithmKind::HyScaleCpu));
    let mem = run(mixed(&scale, Burst::High, AlgorithmKind::HyScaleCpuMem));

    // Fastest of the three.
    assert!(
        mem.requests.mean_response_secs() < cpu.requests.mean_response_secs()
            && mem.requests.mean_response_secs() < k8s.requests.mean_response_secs(),
        "HyScaleCPU+Mem {:.1} ms should be fastest (cpu {:.1} ms, k8s {:.1} ms)",
        mem.requests.mean_response_secs() * 1e3,
        cpu.requests.mean_response_secs() * 1e3,
        k8s.requests.mean_response_secs() * 1e3,
    );
    // Fewest failures: memory-aware placement avoids the OOM/queue
    // pressure that the CPU-only scalers run into on this workload.
    assert!(
        mem.requests.failures.total() < cpu.requests.failures.total()
            && mem.requests.failures.total() < k8s.requests.failures.total(),
        "HyScaleCPU+Mem failed {} vs HyScaleCPU {} vs Kubernetes {}",
        mem.requests.failures.total(),
        cpu.requests.failures.total(),
        k8s.requests.failures.total(),
    );
    // The mixed high-burst workload actually exercises the failure path.
    assert!(
        k8s.requests.failures.total() > 0,
        "workload should overload"
    );
}
