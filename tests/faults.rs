//! Fault-injection invariants: request-conservation and capacity
//! properties that must hold under *any* seeded fault plan, plus the
//! exactly-once accounting of scale-in aborts (the paper's "removal
//! failures", Fig. 6).

use std::collections::HashSet;

use hyscale::cluster::{
    Cluster, ClusterConfig, ContainerSpec, FailureKind, FaultInjector, FaultKind, FaultPlan,
    FaultPlanConfig, NodeSpec, Request, ServiceId,
};
use hyscale::core::{AlgorithmKind, NodeEvent, RunReport, ScenarioBuilder};
use hyscale::sim::{SimDuration, SimRng, SimTime};
use hyscale::workload::{LoadPattern, ServiceProfile};

/// Drives a short two-service scenario under the given fault plan.
fn chaos_run(plan: FaultPlan, seed: u64, algorithm: AlgorithmKind) -> RunReport {
    ScenarioBuilder::new("fault-property")
        .nodes(4)
        .services(
            2,
            ServiceProfile::CpuBound,
            LoadPattern::Constant { rate: 6.0 },
        )
        .duration_secs(90.0)
        .algorithm(algorithm)
        .seed(seed)
        .faults(plan)
        .run()
        .expect("chaos scenario runs")
}

fn assert_conserved(report: &RunReport) {
    let r = &report.requests;
    // `outstanding()` saturates at zero, so check the raw inequality
    // first: over-counting a failure (e.g. a request aborted twice)
    // would push completed + failed past issued.
    assert!(
        r.completed + r.failures.total() <= r.issued,
        "over-counted outcomes: issued {} < completed {} + failed {}",
        r.issued,
        r.completed,
        r.failures.total(),
    );
    assert_eq!(
        r.issued,
        r.completed + r.failures.total() + r.outstanding(),
        "conservation broken: {r:?}",
    );
    for (svc, outcomes) in &report.per_service {
        assert_eq!(
            outcomes.issued,
            outcomes.completed + outcomes.failures.total() + outcomes.outstanding(),
            "conservation broken for {svc:?}: {outcomes:?}",
        );
    }
}

/// Property: `issued = completed + failed + outstanding`, overall and
/// per service, no matter what the fault storm does.
#[test]
fn request_conservation_holds_under_random_fault_plans() {
    let mut rng = SimRng::seed_from(0xFA17_5EED);
    for round in 0..6u64 {
        let cfg = FaultPlanConfig {
            horizon_secs: 90.0,
            nodes: 4,
            services: 2,
            node_crashes: 2,
            oom_kills: 2,
            nic_degradations: 1,
            stat_outages: 1,
            min_down_secs: 5.0,
            max_down_secs: 20.0,
        };
        let plan = FaultPlan::random(&cfg, &mut rng);
        assert!(!plan.is_empty());
        let report = chaos_run(plan, round + 1, AlgorithmKind::HyScaleCpu);
        assert!(report.requests.issued > 0);
        assert_conserved(&report);
    }
}

/// Conservation also holds when planned decommissions overlap with the
/// fault storm — both abort paths feed the same single tally.
#[test]
fn conservation_holds_with_decommission_and_faults_together() {
    let mut rng = SimRng::seed_from(0xD0_0DAD);
    let cfg = FaultPlanConfig {
        horizon_secs: 90.0,
        nodes: 4,
        services: 2,
        ..FaultPlanConfig::default()
    };
    let plan = FaultPlan::random(&cfg, &mut rng);
    let report = ScenarioBuilder::new("fault-plus-decommission")
        .nodes(4)
        .services(
            2,
            ServiceProfile::Mixed,
            LoadPattern::Constant { rate: 6.0 },
        )
        .duration_secs(90.0)
        .algorithm(AlgorithmKind::HyScaleCpuMem)
        .seed(11)
        .faults(plan)
        .node_event(40.0, NodeEvent::Decommission(3))
        .node_event(60.0, NodeEvent::Commission(NodeSpec::uniform_worker()))
        .run()
        .expect("scenario runs");
    assert!(report.requests.issued > 0);
    assert_conserved(&report);
}

/// Property: no per-window CPU grant ever exceeds a node's capacity,
/// through arbitrary crash/reboot cycles, and a rebooted node comes back
/// with its full capacity free.
#[test]
fn grants_never_exceed_capacity_through_crash_reboot_cycles() {
    let mut cl = Cluster::new(ClusterConfig::default());
    let spec = NodeSpec::uniform_worker();
    let cores = spec.cores;
    let node_ids: Vec<_> = (0..3).map(|_| cl.add_node(spec)).collect();
    let svc = ServiceId::new(0);
    for &n in &node_ids {
        cl.start_container(
            n,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
    }
    let plan = FaultPlan::new()
        .with(
            2.0,
            FaultKind::NodeCrash {
                node: 0,
                down_secs: 3.0,
            },
        )
        .with(
            4.0,
            FaultKind::NodeCrash {
                node: 1,
                down_secs: 2.0,
            },
        )
        .with(
            9.0,
            FaultKind::NodeCrash {
                node: 0,
                down_secs: 2.0,
            },
        );
    let mut injector = FaultInjector::new(&plan, &node_ids);

    let mut rng = SimRng::seed_from(42);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    for tick in 0..150 {
        injector.apply_due(&mut cl, now);
        // Offer load to whatever replicas are still accepting.
        let live: Vec<_> = cl.service_replicas(svc);
        for _ in 0..2 {
            if !live.is_empty() {
                let target = live[rng.uniform_usize(live.len())];
                let req = Request::cpu_bound(svc, now, rng.uniform_range(0.5, 4.0));
                let _ = cl.admit_request(target, req, now);
            }
        }
        cl.advance(now, dt);
        now += dt;
        if tick % 10 == 9 {
            let ids: Vec<_> = cl.nodes().map(|n| n.id()).collect();
            for id in ids {
                let usage = cl.node_usage_and_reset(id).unwrap();
                assert!(
                    usage.cpu_used.get() <= cores.get() + 1e-9,
                    "node {id:?} granted {:?} cores against capacity {cores:?}",
                    usage.cpu_used,
                );
            }
        }
    }

    // Every crash rebooted. The crashed nodes lost their containers, so
    // they advertise full capacity again; the survivor (node 2) still
    // reserves its replica's request.
    assert!(injector.drained());
    assert_eq!(injector.log().node_crashes, 3);
    assert_eq!(injector.log().reboots, 3);
    assert_eq!(cl.nodes().count(), 3);
    for &id in &node_ids[..2] {
        let (free_cpu, _) = cl.free_resources(id).unwrap();
        assert!((free_cpu.get() - cores.get()).abs() < 1e-9);
    }
    let (survivor_free, _) = cl.free_resources(node_ids[2]).unwrap();
    assert!(survivor_free.get() < cores.get());
    // A rebooted node can host replacement replicas again.
    cl.start_container(
        node_ids[0],
        ContainerSpec::new(svc).with_startup_secs(0.0),
        now,
    )
    .unwrap();
}

/// The injector is a pure function of (plan, node list): replaying the
/// same plan over an identical cluster yields the identical fault log.
#[test]
fn fault_injection_replays_identically() {
    let build = || {
        let mut cl = Cluster::new(ClusterConfig::default());
        let nodes: Vec<_> = (0..3)
            .map(|_| cl.add_node(NodeSpec::uniform_worker()))
            .collect();
        let svc = ServiceId::new(0);
        for &n in &nodes {
            cl.start_container(
                n,
                ContainerSpec::new(svc).with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        (cl, nodes, svc)
    };
    let mut rng = SimRng::seed_from(77);
    let plan = FaultPlan::random(
        &FaultPlanConfig {
            horizon_secs: 20.0,
            nodes: 3,
            services: 1,
            ..FaultPlanConfig::default()
        },
        &mut rng,
    );

    let run = |plan: &FaultPlan| {
        let (mut cl, nodes, svc) = build();
        let mut injector = FaultInjector::new(plan, &nodes);
        let mut failures = Vec::new();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..250 {
            for f in injector.apply_due(&mut cl, now) {
                failures.push(format!("{f:?}"));
            }
            let live = cl.service_replicas(svc);
            if let Some(&target) = live.first() {
                let _ = cl.admit_request(target, Request::cpu_bound(svc, now, 1.0), now);
            }
            cl.advance(now, dt);
            now += dt;
        }
        (format!("{:?}", injector.log()), failures)
    };
    assert_eq!(run(&plan), run(&plan));
}

/// Satellite fix audit: every in-flight request aborted by a scale-in is
/// tallied exactly once, as a removal failure, and never resurfaces.
#[test]
fn scale_in_aborts_are_tallied_exactly_once() {
    let mut cl = Cluster::new(ClusterConfig::default());
    let node = cl.add_node(NodeSpec::uniform_worker());
    let svc = ServiceId::new(0);
    let keep = cl
        .start_container(
            node,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
    let victim = cl
        .start_container(
            node,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
    for i in 0..5 {
        let req = Request::cpu_bound(svc, SimTime::ZERO, 30.0 + f64::from(i));
        cl.admit_request(victim, req, SimTime::ZERO).unwrap();
    }
    cl.admit_request(
        keep,
        Request::cpu_bound(svc, SimTime::ZERO, 30.0),
        SimTime::ZERO,
    )
    .unwrap();

    let aborted = cl
        .remove_container(victim, SimTime::from_secs(1.0))
        .unwrap();
    assert_eq!(aborted.len(), 5, "all five in-flight requests abort");
    assert!(aborted.iter().all(|f| f.kind == FailureKind::Removal));
    let ids: HashSet<_> = aborted.iter().map(|f| f.id).collect();
    assert_eq!(ids.len(), 5, "each request aborts once, no duplicates");

    // The aborted requests never resurface as later tick failures, and
    // the survivor keeps running.
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::from_secs(1.0);
    for _ in 0..100 {
        let tick = cl.advance(now, dt);
        for f in &tick.failed {
            assert!(!ids.contains(&f.id), "request {f:?} double-counted");
        }
        now += dt;
    }
    assert_eq!(cl.service_replicas(svc), vec![keep]);

    // Removing the already-removed container is an error, not a second
    // batch of failures.
    assert!(cl.remove_container(victim, now).is_err());
}
