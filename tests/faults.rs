//! Fault-injection invariants: request-conservation and capacity
//! properties that must hold under *any* seeded fault plan, plus the
//! exactly-once accounting of scale-in aborts (the paper's "removal
//! failures", Fig. 6).

use std::collections::HashSet;

use hyscale::cluster::{
    Cluster, ClusterConfig, ContainerSpec, FailureKind, FaultInjector, FaultKind, FaultPlan,
    FaultPlanConfig, NodeSpec, Request, ServiceId,
};
use hyscale::core::{
    AlgorithmKind, ControlPlaneConfig, NodeEvent, RunReport, ScenarioBuilder, SimulationDriver,
};
use hyscale::sim::{SimDuration, SimRng, SimTime};
use hyscale::trace::{export, RunMeta, TraceSink};
use hyscale::workload::{LoadPattern, ServiceProfile};

/// Drives a short two-service scenario under the given fault plan.
fn chaos_run(plan: FaultPlan, seed: u64, algorithm: AlgorithmKind) -> RunReport {
    ScenarioBuilder::new("fault-property")
        .nodes(4)
        .services(
            2,
            ServiceProfile::CpuBound,
            LoadPattern::Constant { rate: 6.0 },
        )
        .duration_secs(90.0)
        .algorithm(algorithm)
        .seed(seed)
        .faults(plan)
        .run()
        .expect("chaos scenario runs")
}

fn assert_conserved(report: &RunReport) {
    let r = &report.requests;
    // `outstanding()` saturates at zero, so check the raw inequality
    // first: over-counting a failure (e.g. a request aborted twice)
    // would push completed + failed past issued.
    assert!(
        r.completed + r.failures.total() <= r.issued,
        "over-counted outcomes: issued {} < completed {} + failed {}",
        r.issued,
        r.completed,
        r.failures.total(),
    );
    assert_eq!(
        r.issued,
        r.completed + r.failures.total() + r.outstanding(),
        "conservation broken: {r:?}",
    );
    for (svc, outcomes) in &report.per_service {
        assert_eq!(
            outcomes.issued,
            outcomes.completed + outcomes.failures.total() + outcomes.outstanding(),
            "conservation broken for {svc:?}: {outcomes:?}",
        );
    }
}

/// Property: `issued = completed + failed + outstanding`, overall and
/// per service, no matter what the fault storm does.
#[test]
fn request_conservation_holds_under_random_fault_plans() {
    let mut rng = SimRng::seed_from(0xFA17_5EED);
    for round in 0..6u64 {
        let cfg = FaultPlanConfig {
            horizon_secs: 90.0,
            nodes: 4,
            services: 2,
            node_crashes: 2,
            oom_kills: 2,
            nic_degradations: 1,
            stat_outages: 1,
            min_down_secs: 5.0,
            max_down_secs: 20.0,
        };
        let plan = FaultPlan::random(&cfg, &mut rng);
        assert!(!plan.is_empty());
        let report = chaos_run(plan, round + 1, AlgorithmKind::HyScaleCpu);
        assert!(report.requests.issued > 0);
        assert_conserved(&report);
    }
}

/// Conservation also holds when planned decommissions overlap with the
/// fault storm — both abort paths feed the same single tally.
#[test]
fn conservation_holds_with_decommission_and_faults_together() {
    let mut rng = SimRng::seed_from(0xD0_0DAD);
    let cfg = FaultPlanConfig {
        horizon_secs: 90.0,
        nodes: 4,
        services: 2,
        ..FaultPlanConfig::default()
    };
    let plan = FaultPlan::random(&cfg, &mut rng);
    let report = ScenarioBuilder::new("fault-plus-decommission")
        .nodes(4)
        .services(
            2,
            ServiceProfile::Mixed,
            LoadPattern::Constant { rate: 6.0 },
        )
        .duration_secs(90.0)
        .algorithm(AlgorithmKind::HyScaleCpuMem)
        .seed(11)
        .faults(plan)
        .node_event(40.0, NodeEvent::Decommission(3))
        .node_event(60.0, NodeEvent::Commission(NodeSpec::uniform_worker()))
        .run()
        .expect("scenario runs");
    assert!(report.requests.issued > 0);
    assert_conserved(&report);
}

/// Property: no per-window CPU grant ever exceeds a node's capacity,
/// through arbitrary crash/reboot cycles, and a rebooted node comes back
/// with its full capacity free.
#[test]
fn grants_never_exceed_capacity_through_crash_reboot_cycles() {
    let mut cl = Cluster::new(ClusterConfig::default());
    let spec = NodeSpec::uniform_worker();
    let cores = spec.cores;
    let node_ids: Vec<_> = (0..3).map(|_| cl.add_node(spec)).collect();
    let svc = ServiceId::new(0);
    for &n in &node_ids {
        cl.start_container(
            n,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
    }
    let plan = FaultPlan::new()
        .with(
            2.0,
            FaultKind::NodeCrash {
                node: 0,
                down_secs: 3.0,
            },
        )
        .with(
            4.0,
            FaultKind::NodeCrash {
                node: 1,
                down_secs: 2.0,
            },
        )
        .with(
            9.0,
            FaultKind::NodeCrash {
                node: 0,
                down_secs: 2.0,
            },
        );
    let mut injector = FaultInjector::new(&plan, &node_ids);

    let mut rng = SimRng::seed_from(42);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    for tick in 0..150 {
        injector.apply_due(&mut cl, now);
        // Offer load to whatever replicas are still accepting.
        let live: Vec<_> = cl.service_replicas(svc);
        for _ in 0..2 {
            if !live.is_empty() {
                let target = live[rng.uniform_usize(live.len())];
                let req = Request::cpu_bound(svc, now, rng.uniform_range(0.5, 4.0));
                let _ = cl.admit_request(target, req, now);
            }
        }
        cl.advance(now, dt);
        now += dt;
        if tick % 10 == 9 {
            let ids: Vec<_> = cl.nodes().map(|n| n.id()).collect();
            for id in ids {
                let usage = cl.node_usage_and_reset(id).unwrap();
                assert!(
                    usage.cpu_used.get() <= cores.get() + 1e-9,
                    "node {id:?} granted {:?} cores against capacity {cores:?}",
                    usage.cpu_used,
                );
            }
        }
    }

    // Every crash rebooted. The crashed nodes lost their containers, so
    // they advertise full capacity again; the survivor (node 2) still
    // reserves its replica's request.
    assert!(injector.drained());
    assert_eq!(injector.log().node_crashes, 3);
    assert_eq!(injector.log().reboots, 3);
    assert_eq!(cl.nodes().count(), 3);
    for &id in &node_ids[..2] {
        let (free_cpu, _) = cl.free_resources(id).unwrap();
        assert!((free_cpu.get() - cores.get()).abs() < 1e-9);
    }
    let (survivor_free, _) = cl.free_resources(node_ids[2]).unwrap();
    assert!(survivor_free.get() < cores.get());
    // A rebooted node can host replacement replicas again.
    cl.start_container(
        node_ids[0],
        ContainerSpec::new(svc).with_startup_secs(0.0),
        now,
    )
    .unwrap();
}

/// The injector is a pure function of (plan, node list): replaying the
/// same plan over an identical cluster yields the identical fault log.
#[test]
fn fault_injection_replays_identically() {
    let build = || {
        let mut cl = Cluster::new(ClusterConfig::default());
        let nodes: Vec<_> = (0..3)
            .map(|_| cl.add_node(NodeSpec::uniform_worker()))
            .collect();
        let svc = ServiceId::new(0);
        for &n in &nodes {
            cl.start_container(
                n,
                ContainerSpec::new(svc).with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        (cl, nodes, svc)
    };
    let mut rng = SimRng::seed_from(77);
    let plan = FaultPlan::random(
        &FaultPlanConfig {
            horizon_secs: 20.0,
            nodes: 3,
            services: 1,
            ..FaultPlanConfig::default()
        },
        &mut rng,
    );

    let run = |plan: &FaultPlan| {
        let (mut cl, nodes, svc) = build();
        let mut injector = FaultInjector::new(plan, &nodes);
        let mut failures = Vec::new();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..250 {
            for f in injector.apply_due(&mut cl, now) {
                failures.push(format!("{f:?}"));
            }
            let live = cl.service_replicas(svc);
            if let Some(&target) = live.first() {
                let _ = cl.admit_request(target, Request::cpu_bound(svc, now, 1.0), now);
            }
            cl.advance(now, dt);
            now += dt;
        }
        (format!("{:?}", injector.log()), failures)
    };
    assert_eq!(run(&plan), run(&plan));
}

/// Satellite fix audit: every in-flight request aborted by a scale-in is
/// tallied exactly once, as a removal failure, and never resurfaces.
#[test]
fn scale_in_aborts_are_tallied_exactly_once() {
    let mut cl = Cluster::new(ClusterConfig::default());
    let node = cl.add_node(NodeSpec::uniform_worker());
    let svc = ServiceId::new(0);
    let keep = cl
        .start_container(
            node,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
    let victim = cl
        .start_container(
            node,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
    for i in 0..5 {
        let req = Request::cpu_bound(svc, SimTime::ZERO, 30.0 + f64::from(i));
        cl.admit_request(victim, req, SimTime::ZERO).unwrap();
    }
    cl.admit_request(
        keep,
        Request::cpu_bound(svc, SimTime::ZERO, 30.0),
        SimTime::ZERO,
    )
    .unwrap();

    let aborted = cl
        .remove_container(victim, SimTime::from_secs(1.0))
        .unwrap();
    assert_eq!(aborted.len(), 5, "all five in-flight requests abort");
    assert!(aborted.iter().all(|f| f.kind == FailureKind::Removal));
    let ids: HashSet<_> = aborted.iter().map(|f| f.id).collect();
    assert_eq!(ids.len(), 5, "each request aborts once, no duplicates");

    // The aborted requests never resurface as later tick failures, and
    // the survivor keeps running.
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::from_secs(1.0);
    for _ in 0..100 {
        let tick = cl.advance(now, dt);
        for f in &tick.failed {
            assert!(!ids.contains(&f.id), "request {f:?} double-counted");
        }
        now += dt;
    }
    assert_eq!(cl.service_replicas(svc), vec![keep]);

    // Removing the already-removed container is an error, not a second
    // batch of failures.
    assert!(cl.remove_container(victim, now).is_err());
}

/// A hot degraded control plane for the property runs: well beyond the
/// bench's 5%-loss figure so every resilience path exercises.
fn hot_control_plane() -> ControlPlaneConfig {
    let mut cp = ControlPlaneConfig::degraded();
    cp.loss_prob = 0.2;
    cp.delay_prob = 0.3;
    cp.duplicate_prob = 0.1;
    cp.actuation_failure_prob = 0.3;
    cp
}

/// Property: the PR 2 request-conservation invariants survive the fault
/// storm *and* a lossy, delayed, duplicating, actuation-dropping control
/// plane at the same time — degradation reorders and suppresses scaling,
/// it never corrupts accounting.
#[test]
fn conservation_holds_under_a_degraded_control_plane() {
    let mut rng = SimRng::seed_from(0xC0_17A0);
    for round in 0..4u64 {
        let cfg = FaultPlanConfig {
            horizon_secs: 90.0,
            nodes: 4,
            services: 2,
            node_crashes: 2,
            oom_kills: 2,
            nic_degradations: 1,
            stat_outages: 1,
            min_down_secs: 5.0,
            max_down_secs: 20.0,
        };
        let plan = FaultPlan::random(&cfg, &mut rng);
        let report = ScenarioBuilder::new("degraded-conservation")
            .nodes(4)
            .services(
                2,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 6.0 },
            )
            .duration_secs(90.0)
            .algorithm(AlgorithmKind::HyScaleCpu)
            .seed(round + 1)
            .faults(plan)
            .control_plane(hot_control_plane())
            .run()
            .expect("degraded chaos scenario runs");
        assert!(report.requests.issued > 0);
        assert!(
            report.control_plane.reports_lost > 0,
            "the degradation layer must actually fire: {:?}",
            report.control_plane
        );
        assert_conserved(&report);
    }
}

/// Property: when *every* report is lost the Monitor's view of every
/// service is permanently older than the staleness budget, so no replica
/// is ever scaled in — for any algorithm, any seed. (Scale-in on stale
/// data is the cascade the veto exists to prevent: removing replicas the
/// cluster still needs because the stats saying otherwise got dropped.)
#[test]
fn no_scale_in_from_views_older_than_the_staleness_budget() {
    let mut cp = ControlPlaneConfig::degraded();
    cp.loss_prob = 1.0;
    cp.delay_prob = 0.0;
    cp.duplicate_prob = 0.0;
    cp.actuation_failure_prob = 0.0;
    cp.quorum_fraction = 0.0; // no safe mode: the veto alone must hold
    cp.staleness_budget_ticks = 0;
    for algorithm in [
        AlgorithmKind::Kubernetes,
        AlgorithmKind::HyScaleCpu,
        AlgorithmKind::HyScaleCpuMem,
        AlgorithmKind::Network,
    ] {
        for seed in [1u64, 7, 42] {
            let report = ScenarioBuilder::new("stale-freeze")
                .nodes(4)
                .services(
                    2,
                    ServiceProfile::CpuBound,
                    LoadPattern::Constant { rate: 2.0 },
                )
                .duration_secs(90.0)
                .algorithm(algorithm)
                .seed(seed)
                .control_plane(cp)
                .run()
                .expect("scenario runs");
            assert!(report.control_plane.reports_lost > 0);
            assert_eq!(
                report.scaling.removals, 0,
                "{algorithm:?} seed {seed}: scaled in from a stale view"
            );
        }
    }
}

/// Property: one seeded degraded run serializes to a byte-identical
/// trace journal serial vs node-parallel — every control-plane draw
/// (loss, delay, duplication, actuation failure, breaker jitter) happens
/// in the serial phase.
#[test]
fn degraded_replay_is_byte_identical_serial_vs_parallel() {
    let mut rng = SimRng::seed_from(0xB17_1DE7);
    let plan = FaultPlan::random(
        &FaultPlanConfig {
            horizon_secs: 90.0,
            nodes: 4,
            services: 2,
            ..FaultPlanConfig::default()
        },
        &mut rng,
    );
    let build = |parallelism: usize| {
        ScenarioBuilder::new("degraded-replay")
            .nodes(4)
            .services(
                2,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 6.0 },
            )
            .duration_secs(90.0)
            .algorithm(AlgorithmKind::HyScaleCpu)
            .seed(13)
            .parallelism(parallelism)
            .faults(plan.clone())
            .control_plane(hot_control_plane())
            .build()
    };
    let journal = |parallelism: usize| {
        let config = build(parallelism);
        let mut sink = TraceSink::with_capacity(16_384);
        SimulationDriver::run_traced(&config, &mut sink).expect("scenario runs");
        let meta = RunMeta {
            scenario: &config.name,
            seed: config.seed,
            algorithm: config.algorithm.label(),
        };
        export::jsonl(&sink, &meta)
    };
    let serial = journal(1);
    assert!(serial.contains("\"ev\":\"report_link\""));
    assert_eq!(
        serial,
        journal(4),
        "degraded replay diverged under parallelism"
    );
}

/// Acceptance: losing quorum drops the cluster into safe mode — scaling
/// freezes entirely, with a matching trace event — while the recovery
/// path keeps respawning replicas the fault storm kills.
#[test]
fn safe_mode_freezes_scaling_but_recovery_still_respawns() {
    let mut cp = ControlPlaneConfig::degraded();
    cp.loss_prob = 1.0; // no node is ever fresh
    cp.quorum_fraction = 1.0;
    let config = ScenarioBuilder::new("safe-mode-e2e")
        .nodes(2)
        .services(
            1,
            ServiceProfile::CpuBound,
            LoadPattern::Constant { rate: 2.0 },
        )
        .duration_secs(120.0)
        .algorithm(AlgorithmKind::HyScaleCpu)
        .seed(5)
        .faults(FaultPlan::new().with(
            30.0,
            FaultKind::NodeCrash {
                node: 0,
                down_secs: 60.0,
            },
        ))
        .control_plane(cp)
        .build();
    let mut sink = TraceSink::with_capacity(16_384);
    let report = SimulationDriver::run_traced(&config, &mut sink).expect("scenario runs");
    let meta = RunMeta {
        scenario: &config.name,
        seed: config.seed,
        algorithm: config.algorithm.label(),
    };
    let journal = export::jsonl(&sink, &meta);

    assert!(
        report.control_plane.safe_mode_periods > 0,
        "safe mode never engaged: {:?}",
        report.control_plane
    );
    assert_eq!(
        report.scaling.total(),
        0,
        "safe mode must freeze all scaling: {:?}",
        report.scaling
    );
    assert!(
        report.total_respawns() >= 1,
        "recovery must keep running in safe mode: {report:?}"
    );
    assert!(journal.contains("\"ev\":\"safe_mode\""));
    assert!(journal.contains("\"entered\":true"));
}
