//! Persistent scoped worker pool for the HyScale tick engine.
//!
//! `std::thread::scope` is the right tool for occasional fan-out, but the
//! tick engine calls it thousands of times per second: every call creates
//! and destroys OS threads, which costs more than the tick itself on
//! small clusters. [`WorkerPool`] keeps the threads alive instead —
//! workers are spawned once, park on a condvar between ticks, and are
//! woken per [`WorkerPool::run`] call with a cheap epoch bump. The API is
//! still *scoped*: `run` borrows its jobs, blocks until every job has
//! finished, and propagates the first panic, so borrowed data (node
//! slices, scratch buffers) is safe to hand out by `&mut`.
//!
//! # Ordering contract
//!
//! `run` executes `jobs[0]` on the calling thread and `jobs[1..]` on pool
//! workers, one job per worker slot. Which *thread* runs a job is
//! scheduling-dependent; which *job index* owns which work item is not.
//! Callers that bucket output per job and merge buckets in job-index
//! order therefore get results that are byte-identical to a serial run —
//! the property the tick engine's determinism argument rests on.
//!
//! # Safety design
//!
//! This crate is the workspace's only home of `unsafe`. Long-lived
//! threads cannot borrow from a caller's stack in the type system, so
//! `run` erases each `&mut dyn FnMut` job to a raw pointer before
//! publishing it to a worker slot. Soundness is restored by protocol:
//!
//! * `run` takes `&mut self` (no concurrent epochs) and does not return
//!   until every published job has executed, so the borrows behind the
//!   raw pointers outlive every dereference;
//! * each worker dereferences only the slot it owns, exactly once per
//!   epoch, so the `&mut` exclusivity of each job is preserved;
//! * slots are published and consumed under one mutex, giving the
//!   happens-before edge between the caller writing a pointer and the
//!   worker calling through it.

#![warn(missing_docs)]

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A job borrowed for the duration of one [`WorkerPool::run`] call.
pub type Job<'a> = &'a mut (dyn FnMut() + Send);

/// Lifetime-erased job pointer stored in a worker slot.
type RawJob = *mut (dyn FnMut() + Send);

/// State shared between the coordinator and the workers, all of it
/// guarded by one mutex.
struct State {
    /// Bumped once per `run` call; a worker whose remembered epoch
    /// differs has a fresh round of slots to inspect.
    epoch: u64,
    /// One slot per worker; `None` means "idle this epoch".
    slots: Vec<Option<RawJob>>,
    /// Worker jobs still running in the current epoch.
    remaining: usize,
    /// First panic payload captured from a worker job this epoch.
    panic: Option<Box<dyn Any + Send>>,
    /// Set by `Drop` to terminate the worker loops.
    shutdown: bool,
}

// SAFETY: `State` is only non-Send because of the raw job pointers in
// `slots`. A pointer is written by the coordinator inside `run`, read
// (and `take`n) exactly once by the worker owning that slot, and the
// coordinator blocks until `remaining == 0` before returning — so the
// pointee, a `&mut` borrow held by `run`'s caller frame, is alive and
// exclusively accessed for every dereference.
unsafe impl Send for State {}

struct Shared {
    state: Mutex<State>,
    /// Signalled by the coordinator when a new epoch is published.
    work: Condvar,
    /// Signalled by the last worker finishing an epoch.
    done: Condvar,
}

impl Shared {
    /// Locks the state, recovering from poisoning: jobs run under
    /// `catch_unwind`, so a poisoned mutex can only mean a panic in this
    /// crate's own bookkeeping, where every invariant is re-checked.
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A persistent pool of parked worker threads executing borrowed jobs.
///
/// See the [crate docs](crate) for the handoff protocol and ordering
/// contract. Dropping the pool joins every worker.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` parked workers. A pool of zero threads is valid:
    /// [`WorkerPool::run`] then accepts exactly one job and runs it on
    /// the calling thread.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                slots: (0..threads).map(|_| None).collect(),
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hyscale-tick-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of pool threads (the calling thread is one extra job slot).
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs every job to completion: `jobs[0]` on the calling thread,
    /// `jobs[1..]` one per pool worker. Blocks until all jobs finish.
    /// Each closure is called exactly once per `run`.
    ///
    /// # Panics
    ///
    /// * if `jobs.len() - 1` exceeds [`WorkerPool::threads`];
    /// * re-raises the first panic any job raised, after every other job
    ///   of the epoch has completed (the pool itself stays usable).
    pub fn run(&mut self, jobs: &mut [Job<'_>]) {
        let Some((first, rest)) = jobs.split_first_mut() else {
            return;
        };
        assert!(
            rest.len() <= self.threads(),
            "{} jobs need {} pool threads, pool has {}",
            rest.len() + 1,
            rest.len(),
            self.threads()
        );
        if rest.is_empty() {
            // Single job: no handoff, run inline.
            first();
            return;
        }
        {
            let mut st = self.shared.lock();
            debug_assert_eq!(st.remaining, 0, "previous epoch still running");
            for slot in st.slots.iter_mut() {
                *slot = None;
            }
            for (slot, job) in st.slots.iter_mut().zip(rest.iter_mut()) {
                *slot = Some(erase(job));
            }
            st.remaining = rest.len();
            st.panic = None;
            st.epoch = st.epoch.wrapping_add(1);
            self.shared.work.notify_all();
        }
        // The caller-thread job overlaps with the workers; catch its
        // panic so the epoch is still joined before anything unwinds.
        let mine = catch_unwind(AssertUnwindSafe(first));
        let worker_panic = {
            let mut st = self.shared.lock();
            while st.remaining > 0 {
                st = match self.shared.done.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            st.panic.take()
        };
        if let Err(payload) = mine {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker can only stop by seeing `shutdown`; join errors
            // would mean a panic in the loop itself, which has nothing
            // left to clean up.
            let _ = handle.join();
        }
    }
}

/// Erases the caller-frame lifetime of a job so it can cross into a
/// long-lived worker. Callers must uphold the protocol in the
/// [crate docs](crate): the pointee outlives the epoch and is touched
/// only by the owning worker.
fn erase<'a>(job: &mut Job<'a>) -> RawJob {
    let wide: *mut (dyn FnMut() + Send + 'a) = *job;
    // SAFETY: rebrands the trait object's lifetime to `'static`; the fat
    // pointer layout is unchanged. Validity is the protocol's job.
    unsafe { std::mem::transmute::<*mut (dyn FnMut() + Send + 'a), RawJob>(wide) }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                st = match shared.work.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            seen_epoch = st.epoch;
            st.slots[index].take()
        };
        let Some(job) = job else {
            // Not scheduled this epoch; `remaining` never counted us.
            continue;
        };
        // SAFETY: the coordinator published this pointer for the current
        // epoch and blocks in `run` until we report completion, so the
        // borrow behind it is alive; the slot was `take`n, so we are the
        // only thread calling through it.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)() }));
        let mut st = shared.lock();
        if let Err(payload) = outcome {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper: run `jobs` (concrete closures) through a pool.
    fn run_all<F: FnMut() + Send>(pool: &mut WorkerPool, closures: &mut [F]) {
        let mut jobs: Vec<Job<'_>> = closures
            .iter_mut()
            .map(|c| c as &mut (dyn FnMut() + Send))
            .collect();
        pool.run(&mut jobs);
    }

    #[test]
    fn fans_out_disjoint_slices() {
        let mut pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let serial: u64 = data.iter().sum();
        let mut sums = [0u64; 4];
        {
            let chunks: Vec<&[u64]> = data.chunks(250).collect();
            let mut slots = sums.iter_mut();
            let mut closures: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let out = slots.next().unwrap();
                    move || *out = chunk.iter().sum()
                })
                .collect();
            run_all(&mut pool, &mut closures);
        }
        assert_eq!(sums.iter().sum::<u64>(), serial);
        assert!(sums.iter().all(|&s| s > 0), "every job ran: {sums:?}");
    }

    #[test]
    fn survives_thousands_of_epochs() {
        let mut pool = WorkerPool::new(2);
        let mut counters = [0u64; 3];
        for _ in 0..5_000 {
            let mut slots: Vec<&mut u64> = counters.iter_mut().collect();
            let mut closures: Vec<_> = slots.iter_mut().map(|slot| move || **slot += 1).collect();
            run_all(&mut pool, &mut closures);
        }
        assert_eq!(counters, [5_000; 3]);
    }

    #[test]
    fn fewer_jobs_than_threads_is_fine() {
        let mut pool = WorkerPool::new(8);
        let mut hits = [false; 2];
        let mut slots: Vec<&mut bool> = hits.iter_mut().collect();
        let mut closures: Vec<_> = slots.iter_mut().map(|slot| move || **slot = true).collect();
        run_all(&mut pool, &mut closures);
        assert_eq!(hits, [true, true]);
    }

    #[test]
    fn zero_thread_pool_runs_single_job_inline() {
        let mut pool = WorkerPool::new(0);
        let mut ran = false;
        let mut job = || ran = true;
        let mut jobs: Vec<Job<'_>> = vec![&mut job];
        pool.run(&mut jobs);
        assert!(ran);
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let mut pool = WorkerPool::new(1);
        pool.run(&mut []);
    }

    #[test]
    fn too_many_jobs_panics_before_publishing() {
        let mut pool = WorkerPool::new(1);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut a = || ();
            let mut b = || ();
            let mut c = || ();
            let mut jobs: Vec<Job<'_>> = vec![&mut a, &mut b, &mut c];
            pool.run(&mut jobs);
        }));
        assert!(err.is_err());
        // The pool is still usable after the rejected call.
        let mut ran = false;
        let mut job = || ran = true;
        let mut jobs: Vec<Job<'_>> = vec![&mut job];
        pool.run(&mut jobs);
        assert!(ran);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        for round in 0..3 {
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut ok = || ();
                let mut boom = || panic!("injected worker panic {round}");
                let mut also_ok = || ();
                let mut jobs: Vec<Job<'_>> = vec![&mut ok, &mut boom, &mut also_ok];
                pool.run(&mut jobs);
            }));
            let payload = err.expect_err("panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("injected worker panic"), "got: {msg}");
            // The epoch was fully joined: the pool accepts new work.
            let mut count = 0u32;
            let mut a = || count += 1;
            let mut jobs: Vec<Job<'_>> = vec![&mut a];
            pool.run(&mut jobs);
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn caller_job_panic_still_joins_workers() {
        let mut pool = WorkerPool::new(1);
        let mut worker_ran = false;
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut boom = || panic!("caller-side panic");
            let mut worker = || worker_ran = true;
            let mut jobs: Vec<Job<'_>> = vec![&mut boom, &mut worker];
            pool.run(&mut jobs);
        }));
        assert!(err.is_err());
        assert!(worker_ran, "worker epoch completed before the unwind");
    }

    #[test]
    fn drop_joins_all_workers() {
        // Constructing and dropping pools in a loop must not accumulate
        // threads; `Drop` blocks on every join handle.
        for _ in 0..50 {
            let mut pool = WorkerPool::new(4);
            let mut hits = [0u8; 5];
            let mut slots: Vec<&mut u8> = hits.iter_mut().collect();
            let mut closures: Vec<_> = slots.iter_mut().map(|slot| move || **slot += 1).collect();
            run_all(&mut pool, &mut closures);
            drop(pool);
            assert_eq!(hits, [1; 5]);
        }
    }

    #[test]
    fn debug_shows_thread_count() {
        let pool = WorkerPool::new(3);
        assert_eq!(format!("{pool:?}"), "WorkerPool { threads: 3 }");
    }
}
