//! Benchmark harness for the HyScale paper: every table and figure of the
//! evaluation (Sec. III and Sec. VI) has a scenario definition here and a
//! binary (`fig2` … `fig10`) that regenerates it. Criterion benches in
//! `benches/figures.rs` run scaled-down variants of the same scenarios.
//!
//! Layout:
//!
//! * [`scenarios`] — paper-scale experiment configurations (Figs. 6–10),
//!   parameterized by a [`scenarios::Scale`] so the same definition runs
//!   full-size from the binaries and small from criterion.
//! * [`studies`] — the Section III manual scaling studies (Figs. 2–3 and
//!   the unplotted memory study), which bypass the autoscalers and drive
//!   the cluster model directly.
//! * [`runner`] — multi-algorithm sweeps (parallelized across OS threads)
//!   and the common report table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod runner;
pub mod scenarios;
pub mod studies;
