//! Figure 9: the Bitbrains `Rnd` workload trace — CPU and memory usage
//! averaged over all microservices.
//!
//! The real GWA-T-12 dataset cannot ship with this repository; this
//! binary plots the synthetic Bitbrains-like trace used by the fig10
//! experiment (see DESIGN.md for the substitution rationale), in the same
//! form as the paper's figure: the mean CPU% and memory% demand signal
//! over time.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin fig9 [-- --full]
//! ```

use hyscale_bench::runner::scale_from_args;
use hyscale_sim::SimRng;
use hyscale_workload::bitbrains::{aggregate_mean, SyntheticTrace};

/// Renders a value in [0, 100] as a crude ASCII bar.
fn bar(pct: f64, width: usize) -> String {
    let filled = ((pct / 100.0) * width as f64).round() as usize;
    format!("{:<width$}", "#".repeat(filled.min(width)))
}

fn main() {
    let scale = scale_from_args();
    let config = SyntheticTrace {
        vms: scale.services * 4,
        duration_secs: scale.duration_secs,
        interval_secs: 15.0,
        ..SyntheticTrace::default()
    };
    // Same fixed seed as the fig10 experiment definition.
    let traces = config.generate(&mut SimRng::seed_from(0xB17B));
    let aggregate = aggregate_mean(&traces);

    println!(
        "\nFig. 9: synthetic Bitbrains Rnd trace, mean over {} VMs",
        traces.len()
    );
    println!(
        "{:>7}  {:>6}  {:<26}  {:>6}  {:<26}",
        "t (s)", "cpu %", "", "mem %", ""
    );
    let stride = (aggregate.len() / 40).max(1);
    for chunk in aggregate.chunks(stride) {
        let t = chunk[0].0;
        let cpu = chunk.iter().map(|c| c.1).sum::<f64>() / chunk.len() as f64;
        let mem = chunk.iter().map(|c| c.2).sum::<f64>() / chunk.len() as f64;
        println!(
            "{t:>7.0}  {cpu:>6.1}  |{}|  {mem:>6.1}  |{}|",
            bar(cpu, 24),
            bar(mem, 24)
        );
    }
    let cpus: Vec<f64> = aggregate.iter().map(|c| c.1).collect();
    let mems: Vec<f64> = aggregate.iter().map(|c| c.2).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
    println!(
        "\ncpu: mean {:.1}% max {:.1}% | mem: mean {:.1}% max {:.1}%",
        mean(&cpus),
        max(&cpus),
        mean(&mems),
        max(&mems)
    );
    println!("paper: bursty CPU demand with repeated peaks/troughs over a slowly");
    println!("       varying memory baseline — the same behaviour as the");
    println!("       low/high-burst mix workloads");
}
