//! Service-graph experiment: the CPU-bound low-burst workload rewired as
//! a three-tier call graph (frontends → aggregators → backends), with
//! client load attached only to the entry points and downstream tiers
//! driven purely by completed parent hops. Reports per-entry-point
//! end-to-end latency (p95/p99 over whole roots, not individual hops)
//! per algorithm, plus a serial-vs-parallel bit-identity check of the
//! graph path.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin graph [-- --full | --smoke]
//! ```

use hyscale_bench::runner::{perf_table, sweep_all, FigureRow};
use hyscale_bench::scenarios::{graph, Scale};
use hyscale_core::{AlgorithmKind, SimulationDriver};
use hyscale_metrics::Table;

/// Per-entry-point end-to-end outcomes, which the per-hop perf table
/// cannot attribute: a root only counts as completed when every
/// downstream hop finished.
fn entry_table(rows: &[FigureRow]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "entry",
        "roots ok",
        "roots failed",
        "e2e mean (ms)",
        "e2e p95 (ms)",
        "e2e p99 (ms)",
    ]);
    for row in rows {
        for entry in &row.report.entry_points {
            table.row(vec![
                row.algorithm.label().to_string(),
                entry.service.to_string(),
                entry.roots_completed.to_string(),
                entry.roots_failed.to_string(),
                format!("{:.1}", entry.e2e_secs.mean() * 1e3),
                format!("{:.1}", entry.p95_secs() * 1e3),
                format!("{:.1}", entry.p99_secs() * 1e3),
            ]);
        }
    }
    table
}

fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        println!("[scale: full — 19 workers, 15 services, 3600 s, 5 seeds]");
        Scale::full()
    } else if std::env::args().any(|a| a == "--smoke") {
        println!("[scale: smoke — 4 workers, 3 services, 300 s, 1 seed]");
        Scale::bench()
    } else {
        println!("[scale: quick — pass --full for the paper-size run]");
        Scale::quick()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();

    // Determinism gate: the graph path (child-hop admission, root
    // resolution) must be bit-identical serial vs node-parallel.
    let mut serial = graph(&scale, AlgorithmKind::HyScaleCpu);
    serial.seed = scale.seeds[0];
    serial.parallelism = 1;
    let mut parallel = serial.clone();
    parallel.parallelism = 4;
    let a = SimulationDriver::run(&serial)?;
    let b = SimulationDriver::run(&parallel)?;
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "graph run diverged between serial and parallel execution"
    );
    println!("[determinism: serial == parallelism(4), bit-identical]");
    assert!(
        !a.entry_points.is_empty(),
        "graph run must report entry-point stats"
    );

    let rows = sweep_all(|k| graph(&scale, k), &scale.seeds)?;
    println!("\n=== Graph: three-tier call-graph, CPU-bound low-burst ===");
    println!("{}", perf_table(&rows));
    println!("{}", entry_table(&rows));
    println!("expectation: per-hop response times stay close to the flat");
    println!("fig-6 scenario, while end-to-end latency stacks the tiers —");
    println!("a root is only as fast as its slowest backend branch, so the");
    println!("e2e p99 amplifies whichever tier an algorithm under-scales.");
    Ok(())
}
