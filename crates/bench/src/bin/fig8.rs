//! Figure 8: network-bound experiments — the dedicated network scaler
//! wins (response times drop by up to 59.22% on high-burst, a ~1.69x
//! speedup), Kubernetes is slowest; the CPU-driven algorithms stay
//! competitive only on the stable low-burst load thanks to the moderate
//! CPU cost of networking system calls.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin fig8 [-- --full]
//! ```

use hyscale_bench::runner::{cost_table, perf_table, scale_from_args, sla_table, sweep_all};
use hyscale_bench::scenarios::{network, Burst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    for burst in [Burst::Low, Burst::High] {
        let rows = sweep_all(|k| network(&scale, burst, k), &scale.seeds)?;
        println!("\n=== Fig. 8 ({}) network-bound ===", burst.label());
        println!("{}", perf_table(&rows));
        println!("{}", cost_table(&rows));
        println!("{}", sla_table(&rows));
    }
    println!("paper: network scaler best (up to 59.22% lower rt on high-burst,");
    println!("       ~1.69x vs the rest), kubernetes slowest; others competitive");
    println!("       only on low-burst");
    Ok(())
}
