//! Ablation studies on HyScale's design choices (DESIGN.md Sec. 6).
//!
//! 1. **Rescale-interval thrash guard** — run the high-burst CPU workload
//!    with the paper's 3 s / 50 s intervals versus no intervals at all,
//!    and count replica-count oscillations and removal-induced failures.
//! 2. **Vertical-first ordering** — compare HyScaleCPU (vertical first,
//!    horizontal fallback) with pure-horizontal Kubernetes at equal
//!    targets, isolating the benefit of `docker update`.
//! 3. **Co-location contention sweep** — rerun the comparison at several
//!    contention coefficients to show the hybrid advantage grows with the
//!    cost of stacking containers.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin ablation [-- --full]
//! ```

use hyscale_bench::runner::{scale_from_args, sweep};
use hyscale_bench::scenarios::{cpu_bound, Burst};
use hyscale_cluster::OverheadModel;
use hyscale_core::{AlgorithmKind, PlacementPolicy, ScenarioConfig};
use hyscale_metrics::Table;
use hyscale_sim::SimDuration;

fn no_gates(mut config: ScenarioConfig) -> ScenarioConfig {
    config.hpa.scale_up_interval = SimDuration::ZERO;
    config.hpa.scale_down_interval = SimDuration::ZERO;
    config.hyscale.scale_up_interval = SimDuration::ZERO;
    config.hyscale.scale_down_interval = SimDuration::ZERO;
    config
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();

    // --- Ablation 1: thrash guard -------------------------------------
    println!("\n=== Ablation 1: rescale-interval thrash guard (high-burst CPU) ===");
    let mut table = Table::new(vec![
        "algorithm",
        "gates",
        "mean rt (ms)",
        "failed %",
        "removal %",
        "spawns",
        "removals",
        "replica oscillations",
    ]);
    for kind in [AlgorithmKind::Kubernetes, AlgorithmKind::HyScaleCpu] {
        for gated in [true, false] {
            let mut config = cpu_bound(&scale, Burst::High, kind);
            if !gated {
                config = no_gates(config);
            }
            let rows = sweep(vec![(kind, config)], &scale.seeds)?;
            let r = &rows[0].report;
            table.row(vec![
                kind.label().to_string(),
                if gated {
                    "3s/50s".into()
                } else {
                    "none".to_string()
                },
                format!("{:.1}", r.mean_response_ms()),
                format!("{:.2}", r.requests.failed_pct()),
                format!("{:.2}", r.requests.removal_failed_pct()),
                r.scaling.spawns.to_string(),
                r.scaling.removals.to_string(),
                r.replicas.reversals().to_string(),
            ]);
        }
    }
    println!("{table}");

    // --- Ablation 2 + 3: what does "hybrid" buy, and when? ---------------
    // Vertical-only (ElasticDocker-style) and horizontal-only (Kubernetes)
    // are the two halves of HyScale; the sweep shows the hybrid matching
    // or beating both as the cost of stacking containers grows.
    println!("=== Ablations 2–3: vertical vs horizontal vs hybrid across contention ===");
    let mut table = Table::new(vec![
        "colocation coeff",
        "k8s rt (ms)",
        "vertical rt (ms)",
        "vertical failed %",
        "hybrid rt (ms)",
        "hybrid vs k8s",
    ]);
    for coeff in [0.0, 0.08, 0.17, 0.30] {
        let mut rts = Vec::new();
        let mut vertical_failed = 0.0;
        for kind in [
            AlgorithmKind::Kubernetes,
            AlgorithmKind::VerticalOnly,
            AlgorithmKind::HyScaleCpu,
        ] {
            let mut config = cpu_bound(&scale, Burst::Low, kind);
            config.cluster.overheads = OverheadModel {
                colocation_coeff: coeff,
                ..OverheadModel::default()
            };
            let rows = sweep(vec![(kind, config)], &scale.seeds)?;
            rts.push(rows[0].report.requests.mean_response_secs());
            if kind == AlgorithmKind::VerticalOnly {
                vertical_failed = rows[0].report.requests.failed_pct();
            }
        }
        table.row(vec![
            format!("{coeff:.2}"),
            format!("{:.1}", rts[0] * 1e3),
            format!("{:.1}", rts[1] * 1e3),
            format!("{vertical_failed:.2}"),
            format!("{:.1}", rts[2] * 1e3),
            format!("{:.2}x", rts[0] / rts[2]),
        ]);
    }
    println!("{table}");

    // --- Ablation 4: placement policy (cost extension) ------------------
    println!("=== Ablation 4: spread vs pack placement (low-burst CPU, hybrid) ===");
    let mut table = Table::new(vec![
        "placement",
        "mean rt (ms)",
        "failed %",
        "mean busy nodes",
        "busy node-hours",
    ]);
    for placement in [PlacementPolicy::Spread, PlacementPolicy::Pack] {
        let mut config = cpu_bound(&scale, Burst::Low, AlgorithmKind::HyScaleCpu);
        config.hyscale.placement = placement;
        let rows = sweep(vec![(AlgorithmKind::HyScaleCpu, config)], &scale.seeds)?;
        let r = &rows[0].report;
        table.row(vec![
            placement.to_string(),
            format!("{:.1}", r.mean_response_ms()),
            format!("{:.2}", r.requests.failed_pct()),
            format!("{:.2}", r.cost.mean_busy_nodes()),
            format!("{:.2}", r.cost.busy_node_hours()),
        ]);
    }
    println!("{table}");
    println!("expected: gates cut oscillations and removal failures; the hybrid");
    println!("advantage over pure-horizontal scaling grows with the co-location");
    println!("contention coefficient; packing trades some response time for");
    println!("fewer powered-on machines (the paper's cost motivation)");
    Ok(())
}
