//! Figure 2: response times of horizontal scaling for the CPU tests
//! (Sec. III-A).
//!
//! A CPU-bound microservice is given a fixed aggregate CPU share and
//! split into 1–16 replicas, each on its own machine next to a
//! progrium-stress antagonist; 640 client requests are served. The
//! paper's findings: vertical (1 replica) is best; more replicas mean
//! slower responses — per-replica JVM overhead, ~17% co-location
//! contention, and a distribution cost growing logarithmically with the
//! replica count.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin fig2
//! ```

use hyscale_bench::studies::fig2_cpu_point;
use hyscale_metrics::Table;

fn main() {
    println!("Fig. 2: CPU horizontal scaling at constant aggregate share (2 cores)");
    println!("640 requests; every machine also runs a stress antagonist.\n");
    let mut table = Table::new(vec![
        "replicas",
        "mean rt (s)",
        "makespan (s)",
        "overhead vs vertical",
    ]);
    let baseline = fig2_cpu_point(1, 2.0);
    for replicas in [1usize, 2, 4, 8, 16] {
        let point = if replicas == 1 {
            baseline
        } else {
            fig2_cpu_point(replicas, 2.0)
        };
        assert_eq!(point.failed, 0, "fig2 scenarios must not drop requests");
        table.row(vec![
            replicas.to_string(),
            format!("{:.2}", point.mean_response_secs),
            format!("{:.2}", point.makespan_secs),
            format!(
                "+{:.1}%",
                (point.mean_response_secs / baseline.mean_response_secs - 1.0) * 100.0
            ),
        ]);
    }
    println!("{table}");
    println!("paper: response times increase with replica count; vertical wins;");
    println!("       overhead mainly from the per-replica JVM + contention, with a");
    println!("       logarithmic distribution component");
}
