//! The Section III-B memory scaling study (discussed in text, no figure).
//!
//! Equal aggregate memory is split across replica counts while a fixed
//! batch of concurrent requests holds per-request memory. The paper's
//! findings: vertical ≈ horizontal when nothing swaps; raising limits
//! does not speed anything up; but splitting the same aggregate limit
//! over replicas pays the per-replica base (image + runtime) memory again
//! and therefore swaps earlier — and swap is catastrophic.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin mem_study
//! ```

use hyscale_bench::studies::mem_point;
use hyscale_metrics::Table;

fn main() {
    println!("Sec. III-B memory study: 4 concurrent 110 MB requests,");
    println!("aggregate limit split across replicas.\n");

    let mut table = Table::new(vec![
        "aggregate limit (MB)",
        "replicas",
        "mean rt (s)",
        "swapping?",
    ]);
    for &(total, replicas) in &[
        (4096.0, 1usize),
        (4096.0, 2),
        (4096.0, 4),
        (512.0, 1),
        (512.0, 2),
        (512.0, 4),
    ] {
        let point = mem_point(replicas, total, 4, 110.0);
        let baseline = mem_point(1, 4096.0, 4, 110.0);
        let swapping = point.mean_response_secs > baseline.mean_response_secs * 1.5;
        table.row(vec![
            format!("{total:.0}"),
            replicas.to_string(),
            format!("{:.2}", point.mean_response_secs),
            if swapping { "yes".into() } else { "no".into() },
        ]);
    }
    println!("{table}");
    println!("paper: negligible difference vertical vs horizontal without swap;");
    println!("       drastic degradation once the split limits force swapping");
}
