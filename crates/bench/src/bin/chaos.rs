//! Chaos experiment: the CPU-bound high-burst workload under a seeded
//! storm of infrastructure faults (node crashes + reboots, OOM-kills,
//! NIC degradation, stat outages), reporting availability — uptime %,
//! MTTR, recovery counts — per algorithm, plus a serial-vs-parallel
//! bit-identity check of the fault path.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin chaos [-- --full | --smoke]
//! ```

use hyscale_bench::runner::{perf_table, sweep_all, FigureRow};
use hyscale_bench::scenarios::{chaos, Scale};
use hyscale_core::{AlgorithmKind, SimulationDriver};
use hyscale_metrics::Table;

/// Availability columns the standard perf table doesn't carry.
fn availability_table(rows: &[FigureRow]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "min uptime %",
        "max mttr (s)",
        "deaths",
        "respawns",
        "recovery fails",
        "crashes",
        "oom-kills",
    ]);
    for row in rows {
        let r = &row.report;
        let deaths: u64 = r.availability.values().map(|a| a.deaths).sum();
        table.row(vec![
            row.algorithm.label().to_string(),
            format!("{:.3}", r.min_uptime_pct()),
            format!("{:.1}", r.max_mttr_secs()),
            deaths.to_string(),
            r.total_respawns().to_string(),
            r.total_recovery_failures().to_string(),
            r.faults.node_crashes.to_string(),
            r.faults.oom_kills.to_string(),
        ]);
    }
    table
}

fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        println!("[scale: full — 19 workers, 15 services, 3600 s, 5 seeds]");
        Scale::full()
    } else if std::env::args().any(|a| a == "--smoke") {
        println!("[scale: smoke — 4 workers, 3 services, 300 s, 1 seed]");
        Scale::bench()
    } else {
        println!("[scale: quick — pass --full for the paper-size run]");
        Scale::quick()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();

    // Determinism gate: the same chaos run must be bit-identical serial
    // vs node-parallel (faults are applied in the serial tick phase).
    let mut serial = chaos(&scale, AlgorithmKind::HyScaleCpu);
    serial.seed = scale.seeds[0];
    serial.parallelism = 1;
    let mut parallel = serial.clone();
    parallel.parallelism = 4;
    let a = SimulationDriver::run(&serial)?;
    let b = SimulationDriver::run(&parallel)?;
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "chaos run diverged between serial and parallel execution"
    );
    println!("[determinism: serial == parallelism(4), bit-identical]");

    let rows = sweep_all(|k| chaos(&scale, k), &scale.seeds)?;
    println!("\n=== Chaos: CPU-bound high-burst + fault storm ===");
    println!("{}", perf_table(&rows));
    println!("{}", availability_table(&rows));
    println!("expectation: uptime stays high (paper claims >= 99.8% on healthy");
    println!("hardware); MTTR is bounded by the recovery backoff, and every");
    println!("algorithm faces the identical seeded fault sequence.");
    Ok(())
}
