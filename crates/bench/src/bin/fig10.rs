//! Figure 10: request statistics for the Bitbrains replay experiment
//! (Sec. VI-B).
//!
//! The per-VM demand shapes of the (synthetic) Bitbrains `Rnd` trace
//! drive mixed CPU+memory microservices. Paper expectations: the trace
//! behaves like the mixed experiments — HyScaleCPU+Mem performs best by
//! scaling both resources, and Kubernetes *outperforms* HyScaleCPU
//! because each horizontal scale-out incidentally allocates more memory,
//! reducing timed-out requests and swap.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin fig10 [-- --full]
//! ```

use hyscale_bench::runner::{cost_table, perf_table, scale_from_args, sla_table, sweep_all};
use hyscale_bench::scenarios::bitbrains;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    let rows = sweep_all(|k| bitbrains(&scale, k), &scale.seeds)?;
    println!("\n=== Fig. 10 Bitbrains Rnd replay ===");
    println!("{}", perf_table(&rows));
    println!("{}", cost_table(&rows));
    println!("{}", sla_table(&rows));
    println!("paper: hybridmem best; kubernetes > hybrid (horizontal scale-out");
    println!("       inadvertently allocates more memory per replica)");
    Ok(())
}
