//! `tickbench` — steady-state throughput benchmark for the tick engine.
//!
//! Drives a synthetic 24-node / 15-service cluster in a busy steady state
//! (every node ~90% CPU-loaded, modest egress) through `Cluster::advance`
//! alone — no autoscaler, no load balancer — so the numbers isolate the
//! simulation hot loop. Four sections:
//!
//! 1. **Request mode** — the legacy per-request object path: one
//!    `Request` per container per tick, swept across worker counts
//!    {1, 2, 4, 8} with a serial bit-identity check.
//! 2. **Cohort mode** — the flow-cohort hot path: one 64-member cohort
//!    per container per tick carries the same CPU load as request mode
//!    but moves 64x the members per record, swept and digest-checked the
//!    same way. Its parallel requests/sec is the headline figure.
//! 3. **Ramp mode** — offered-rps staircase
//!    (`--initial-rps/--increment-rps/--max-rps`): each step drives a
//!    fresh cluster at a fixed offered rate and the saturation knee is
//!    the last step that completed >= 95% of what was offered.
//! 4. **Million users** — 96 containers x 11,000-member cohorts put
//!    1,056,000 concurrent members in flight, drained to empty serially
//!    and in parallel with digests compared, then the post-drain idle
//!    stretch is jumped with `Cluster::advance_warp`.
//! 5. **Scale sweep** — total node count sweeps 24 / 240 / 2400 / 10000
//!    while the traffic footprint stays pinned to (a fraction of) the
//!    first 24 nodes: with the active-set engine, per-tick cost tracks
//!    the footprint rather than the cluster, so the big clusters must
//!    tick within `SCALE_GATE_FLOOR` of the 24-node rate.
//!
//! Results land in `BENCH_tick.json`; the top-level `requests_per_sec`
//! and `bit_identical` fields summarize the cohort headline and the
//! cross-worker digest checks across every section.
//!
//! Usage: `cargo run --release -p hyscale-bench --bin tickbench [-- flags]`
//!
//! * `--smoke` — CI scale: fewer measured ticks, same assertions.
//! * `--gate`  — regression gate: fail if parallel(4) tick throughput
//!   falls below this machine's floor (see `gate_floor`) or the cohort
//!   path stops beating request mode by at least `COHORT_GATE_FACTOR`.
//! * `--million-only` — run only the million-user section (CI smoke).
//! * `--nodes N` — run *only* the scale sweep, over {24, N}, leaving
//!   `BENCH_tick.json` untouched (CI uses `--smoke --nodes 2400 --gate`);
//!   the full default run sweeps 24 / 240 / 2400 / 10000 instead.
//! * `--active-fraction F` — fraction of the 24-node traffic footprint
//!   that receives load in the scale sweep (default 1.0).
//! * `--initial-rps N` / `--increment-rps N` / `--max-rps N` — ramp
//!   staircase parameters (defaults 20000 / 20000 / 160000).

use std::time::Instant;

use hyscale_cluster::{
    Cluster, ClusterConfig, Cohort, ContainerId, ContainerSpec, Cores, MemMb, NodeSpec, Request,
    ServiceId, TickReport,
};
use hyscale_sim::{SimDuration, SimRng, SimTime};

const NODES: usize = 24;
const SERVICES: usize = 15;
const CONTAINERS_PER_NODE: usize = 4;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const HEADLINE_WORKERS: usize = 4;

/// Members per cohort in the cohort-mode sweep. Per-member CPU demand is
/// request mode's divided by this, so both modes run the nodes at the
/// same ~90% utilization while cohort mode moves 64x the members.
const COHORT_MEMBERS: u64 = 64;

/// Serial ticks/sec of the pre-rework engine (per-tick allocations, no
/// idle fast path) on this exact scenario, measured on the reference
/// machine before the tick-engine rework landed. The acceptance bar for
/// the rework was >= 2x this figure.
const BASELINE_TICKS_PER_SEC: f64 = 1480.0;

/// Serial requests/sec of the per-request object model on the reference
/// machine before the flow-cohort rework (96 requests per 100 ms tick).
/// The cohort hot path's acceptance bar is >= 10x this figure there.
const BASELINE_REQUESTS_PER_SEC: f64 = 162_560.0;

/// Hardware-aware cohort gate: cohort-mode parallel throughput must beat
/// the *same run's* request-mode serial throughput by at least this
/// factor, whatever the machine (the 10x reference-hardware target gives
/// plenty of margin; 5x catches a broken columnar path anywhere).
const COHORT_GATE_FACTOR: f64 = 5.0;

/// Million-user scenario shape: 96 containers x 11,000 members each =
/// 1,056,000 concurrent in-flight members.
const MILLION_MEMBERS_PER_CONTAINER: u64 = 11_000;
const MILLION_FLOOR: u64 = 1_000_000;

/// Node counts the full-run scale sweep visits at a fixed traffic
/// footprint. The sub-linearity gate covers every point up to
/// `SCALE_GATE_SPAN_NODES`; the 10,000-node point only has to complete.
const SCALE_SWEEP_NODES: [usize; 4] = [24, 240, 2_400, 10_000];

/// Lowest acceptable ticks/s ratio between a big swept cluster and the
/// 24-node baseline at the same traffic footprint. A full-scan engine
/// scores ~0.01 at 2,400 nodes; the active-set engine should stay near
/// 1.0, so 0.5 catches any reintroduced O(total-nodes) per-tick work
/// while absorbing cache and allocator noise.
const SCALE_GATE_FLOOR: f64 = 0.5;

/// Largest swept cluster the sub-linearity gate is enforced at (and
/// where the serial-vs-parallel digest spot check runs).
const SCALE_GATE_SPAN_NODES: usize = 2_400;

/// The 24-node / 15-service steady-state scenario: four replicas per node,
/// services striped round-robin across the replica grid.
fn build_cluster(parallelism: usize, queue_cap: usize) -> (Cluster, Vec<ContainerId>) {
    build_cluster_n(NODES, parallelism, queue_cap)
}

/// The same replica grid at an arbitrary node count (scale sweep).
fn build_cluster_n(
    nodes: usize,
    parallelism: usize,
    queue_cap: usize,
) -> (Cluster, Vec<ContainerId>) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.set_parallelism(parallelism);
    let mut containers = Vec::new();
    for n in 0..nodes {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        for c in 0..CONTAINERS_PER_NODE {
            let service = ServiceId::new(((n * CONTAINERS_PER_NODE + c) % SERVICES) as u32);
            let spec = ContainerSpec::new(service)
                .with_cpu_request(Cores(1.0))
                .with_mem_limit(MemMb(512.0))
                .with_queue_cap(queue_cap)
                .with_startup_secs(0.0);
            let id = cluster
                .start_container(node, spec, SimTime::ZERO)
                .expect("placement fits");
            containers.push(id);
        }
    }
    (cluster, containers)
}

/// Per-tick wall-clock latency distribution, in microseconds.
struct Latency {
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
}

impl Latency {
    fn from_ns(samples: &mut [u64]) -> Latency {
        samples.sort_unstable();
        let pct = |p: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let rank = (p / 100.0 * (samples.len() - 1) as f64).round() as usize;
            samples[rank.min(samples.len() - 1)] as f64 / 1e3
        };
        Latency {
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max: samples.last().copied().unwrap_or(0) as f64 / 1e3,
        }
    }
}

/// Result of driving one engine configuration through the scenario.
struct RunOutcome {
    workers: usize,
    ticks_per_sec: f64,
    requests_per_sec: f64,
    latency: Latency,
    /// Order-sensitive digest of every completion (id, member count,
    /// response time): two configurations are bit-identical iff digests
    /// match.
    checksum: u64,
}

/// Folds one tick's completions into a running order-sensitive digest and
/// returns the member count completed this tick.
fn fold_completions(report: &TickReport, checksum: &mut u64) -> u64 {
    let mut members = 0u64;
    for done in &report.completed {
        members += done.count;
        *checksum = checksum
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(done.id.index())
            .wrapping_add(done.count.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(done.response_time.as_secs().to_bits());
    }
    members
}

/// Drives one configuration: `warmup_ticks` un-timed ticks admit load,
/// fill queues to steady state, and — crucially for the parallel runs —
/// spin the persistent worker pool up and through its first epochs, so
/// thread creation and first-touch page faults never land inside the
/// timed window. Then `measured_ticks` are timed.
fn drive(
    parallelism: usize,
    warmup_ticks: usize,
    measured_ticks: usize,
    cohorts: bool,
) -> RunOutcome {
    let (mut cluster, containers) = build_cluster(parallelism, 1024);
    let mut rng = SimRng::seed_from(0x71C2);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    let mut next = 0usize;
    let mut report = TickReport::default();

    let services: Vec<ServiceId> = containers
        .iter()
        .map(|&id| cluster.container(id).expect("live").spec().service)
        .collect();

    let admit = |cluster: &mut Cluster, rng: &mut SimRng, now: SimTime, next: &mut usize| {
        // One admission per container per tick keeps each 4-core node at
        // roughly 90% CPU: 4 x (0.085 mean core-secs + base tax) per 0.4
        // core-secs of tick capacity. Cohort mode spreads the same work
        // across COHORT_MEMBERS members of a single columnar record.
        for _ in 0..CONTAINERS_PER_NODE * NODES {
            let idx = *next % containers.len();
            let id = containers[idx];
            let service = services[idx];
            *next += 1;
            if cohorts {
                let cpu_secs = rng.uniform_range(0.07, 0.10) / COHORT_MEMBERS as f64;
                let megabits = rng.uniform_range(0.2, 0.8) / COHORT_MEMBERS as f64;
                let cohort = Cohort::new(
                    service,
                    now,
                    COHORT_MEMBERS,
                    cpu_secs,
                    MemMb(8.0 / COHORT_MEMBERS as f64),
                    megabits,
                );
                // Full queues just shed load; the steady state stays steady.
                let _ = cluster.admit_cohort(id, cohort, now);
            } else {
                let cpu_secs = rng.uniform_range(0.07, 0.10);
                let megabits = rng.uniform_range(0.2, 0.8);
                let request = Request::new(service, now, cpu_secs, MemMb(8.0), megabits);
                let _ = cluster.admit_request(id, request, now);
            }
        }
    };

    for _ in 0..warmup_ticks.max(1) {
        admit(&mut cluster, &mut rng, now, &mut next);
        cluster.advance_into(now, dt, &mut report);
        now += dt;
    }

    let mut completed = 0u64;
    let mut checksum = 0u64;
    let mut tick_ns: Vec<u64> = Vec::with_capacity(measured_ticks);
    let start = Instant::now();
    for _ in 0..measured_ticks {
        admit(&mut cluster, &mut rng, now, &mut next);
        let t0 = Instant::now();
        cluster.advance_into(now, dt, &mut report);
        tick_ns.push(t0.elapsed().as_nanos() as u64);
        completed += fold_completions(&report, &mut checksum);
        now += dt;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let outcome = RunOutcome {
        workers: parallelism,
        ticks_per_sec: measured_ticks as f64 / elapsed,
        requests_per_sec: completed as f64 / elapsed,
        latency: Latency::from_ns(&mut tick_ns),
        checksum,
    };
    println!(
        "  workers={:<2} {:>10.0} ticks/s {:>12.0} req/s  p50 {:>7.1}us p95 {:>7.1}us p99 {:>7.1}us max {:>8.1}us  (checksum {:016x})",
        outcome.workers,
        outcome.ticks_per_sec,
        outcome.requests_per_sec,
        outcome.latency.p50,
        outcome.latency.p95,
        outcome.latency.p99,
        outcome.latency.max,
        outcome.checksum
    );
    outcome
}

/// Sweeps one mode across the worker counts and asserts every
/// configuration's completion digest matches serial.
fn sweep(
    label: &str,
    warmup_ticks: usize,
    measured_ticks: usize,
    cohorts: bool,
) -> Vec<RunOutcome> {
    println!("{label}:");
    let outcomes: Vec<RunOutcome> = WORKER_SWEEP
        .iter()
        .map(|&w| drive(w, warmup_ticks, measured_ticks, cohorts))
        .collect();
    let serial = &outcomes[0];
    for o in &outcomes[1..] {
        assert_eq!(
            serial.checksum, o.checksum,
            "{label}: parallel engine diverged from serial at {} workers",
            o.workers
        );
    }
    println!("  all worker counts are bit-identical to serial");
    outcomes
}

/// One step of the offered-rps staircase.
struct RampStep {
    offered_rps: f64,
    completed_ratio: f64,
}

/// Drives a fresh cluster at a fixed offered rate for each staircase
/// step. Arrivals are round-robin waterfilled cohorts; the knee is the
/// last offered rate whose measured window completed >= 95% of what it
/// admitted-or-shed (offered), i.e. the capacity of the fluid model on
/// this topology.
fn ramp(
    initial_rps: f64,
    increment_rps: f64,
    max_rps: f64,
    warmup_ticks: usize,
    measured_ticks: usize,
) -> (Vec<RampStep>, f64) {
    assert!(
        initial_rps > 0.0 && increment_rps > 0.0 && max_rps >= initial_rps,
        "ramp requires 0 < initial-rps <= max-rps and increment-rps > 0"
    );
    let dt = SimDuration::from_millis(100);
    let dt_secs = dt.as_secs();
    println!(
        "ramp: {initial_rps:.0} rps + {increment_rps:.0} rps steps to {max_rps:.0} rps, \
         {measured_ticks} measured ticks per step"
    );
    let mut steps = Vec::new();
    let mut knee = 0.0f64;
    let mut offered = initial_rps;
    while offered <= max_rps + 1e-9 {
        let (mut cluster, containers) = build_cluster(HEADLINE_WORKERS, 4096);
        let mut report = TickReport::default();
        let mut now = SimTime::ZERO;
        let members_per_tick = (offered * dt_secs).round().max(1.0) as u64;
        let admit = |cluster: &mut Cluster, now: SimTime| {
            // Waterfill the tick's members evenly across the grid; the
            // remainder goes one extra member each to the first few.
            let base = members_per_tick / containers.len() as u64;
            let extra = (members_per_tick % containers.len() as u64) as usize;
            for (i, &id) in containers.iter().enumerate() {
                let count = base + u64::from(i < extra);
                if count == 0 {
                    continue;
                }
                let service = cluster.container(id).expect("live").spec().service;
                let cohort = Cohort::new(service, now, count, 0.0013, MemMb(0.05), 0.006);
                let _ = cluster.admit_cohort(id, cohort, now);
            }
        };
        for _ in 0..warmup_ticks.max(1) {
            admit(&mut cluster, now);
            cluster.advance_into(now, dt, &mut report);
            now += dt;
        }
        let mut completed = 0u64;
        let mut checksum = 0u64;
        for _ in 0..measured_ticks {
            admit(&mut cluster, now);
            cluster.advance_into(now, dt, &mut report);
            completed += fold_completions(&report, &mut checksum);
            now += dt;
        }
        let offered_members = members_per_tick * measured_ticks as u64;
        let ratio = completed as f64 / offered_members as f64;
        println!(
            "  offered {:>8.0} rps -> completed ratio {:.3}{}",
            offered,
            ratio,
            if ratio >= 0.95 { "" } else { "  [saturated]" }
        );
        let saturated = ratio < 0.95;
        if !saturated {
            knee = offered;
        }
        steps.push(RampStep {
            offered_rps: offered,
            completed_ratio: ratio,
        });
        if saturated {
            break;
        }
        offered += increment_rps;
    }
    println!("  saturation knee: {knee:.0} rps");
    (steps, knee)
}

/// Outcome of one million-user drain run.
struct MillionOutcome {
    peak_in_flight: u64,
    drain_ticks: u64,
    requests_per_sec: f64,
    checksum: u64,
    /// Idle ticks `advance_warp` jumped after the drain.
    warp_ticks: u64,
}

/// Fills 96 wide-queue containers with 11,000-member cohorts (1,056,000
/// concurrent in-flight members), then drains the cluster to empty,
/// digesting every completion.
fn million_drain(parallelism: usize) -> MillionOutcome {
    let (mut cluster, containers) = build_cluster(parallelism, 16_384);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    let mut report = TickReport::default();

    for &id in &containers {
        let service = cluster.container(id).expect("live").spec().service;
        // Zero per-member memory keeps a million residents out of the
        // swap model; 120 s timeouts sit far beyond the drain time.
        let cohort = Cohort::new(
            service,
            now,
            MILLION_MEMBERS_PER_CONTAINER,
            0.002,
            MemMb(0.0),
            0.0,
        )
        .with_timeout(SimDuration::from_secs(120.0));
        cluster
            .admit_cohort(id, cohort, now)
            .expect("wide queue takes the cohort");
    }
    let peak_in_flight = cluster.total_in_flight();
    assert!(
        peak_in_flight >= MILLION_FLOOR,
        "expected >= {MILLION_FLOOR} concurrent members, got {peak_in_flight}"
    );

    let mut completed = 0u64;
    let mut checksum = 0u64;
    let mut drain_ticks = 0u64;
    let start = Instant::now();
    while cluster.total_in_flight() > 0 {
        cluster.advance_into(now, dt, &mut report);
        completed += fold_completions(&report, &mut checksum);
        now += dt;
        drain_ticks += 1;
        assert!(
            drain_ticks < 10_000,
            "million-user drain did not converge ({} still in flight)",
            cluster.total_in_flight()
        );
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        completed, peak_in_flight,
        "every member must complete (timeouts would fail some)"
    );

    // The post-drain stretch is provably idle: jump it in closed form.
    let warp_ticks = cluster.advance_warp(now, dt, 3_000);
    assert!(warp_ticks > 0, "idle cluster must be warpable");

    let outcome = MillionOutcome {
        peak_in_flight,
        drain_ticks,
        requests_per_sec: completed as f64 / elapsed,
        checksum,
        warp_ticks,
    };
    println!(
        "  workers={:<2} {:>7} members in flight, drained in {} ticks ({:.2}s wall, {:>12.0} req/s, checksum {:016x})",
        parallelism,
        outcome.peak_in_flight,
        outcome.drain_ticks,
        elapsed,
        outcome.requests_per_sec,
        outcome.checksum
    );
    println!(
        "  post-drain time warp skipped {} idle ticks in one jump",
        outcome.warp_ticks
    );
    outcome
}

/// Runs the million-user scenario serially and at the headline worker
/// count, asserting digest identity. Returns the parallel outcome.
fn million_users() -> MillionOutcome {
    println!(
        "million_users: {} containers x {} members",
        NODES * CONTAINERS_PER_NODE,
        MILLION_MEMBERS_PER_CONTAINER
    );
    let serial = million_drain(1);
    let parallel = million_drain(HEADLINE_WORKERS);
    assert_eq!(
        serial.checksum, parallel.checksum,
        "million-user drain diverged between serial and parallel"
    );
    assert_eq!(serial.drain_ticks, parallel.drain_ticks);
    println!("  serial and parallel drains are bit-identical");
    parallel
}

/// One point of the node-count scale sweep.
struct ScalePoint {
    nodes: usize,
    outcome: RunOutcome,
}

/// Drives a `nodes`-node cluster whose traffic is confined to the first
/// `footprint` nodes: cohort-mode admissions identical in shape to the
/// steady-state scenario land only on the footprint's containers, so
/// every node beyond it goes idle after warmup and parks. The active-set
/// engine must then keep per-tick cost proportional to the footprint,
/// not the cluster — that is what the sub-linearity gate measures.
fn scale_drive(
    nodes: usize,
    footprint: usize,
    parallelism: usize,
    warmup_ticks: usize,
    measured_ticks: usize,
) -> RunOutcome {
    assert!(
        footprint <= nodes,
        "traffic footprint cannot exceed the cluster"
    );
    let (mut cluster, containers) = build_cluster_n(nodes, parallelism, 1024);
    let mut rng = SimRng::seed_from(0x5CA1E);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    let mut report = TickReport::default();

    let hot = &containers[..footprint * CONTAINERS_PER_NODE];
    let services: Vec<ServiceId> = hot
        .iter()
        .map(|&id| cluster.container(id).expect("live").spec().service)
        .collect();
    let admit = |cluster: &mut Cluster, rng: &mut SimRng, now: SimTime| {
        for (idx, &id) in hot.iter().enumerate() {
            let cpu_secs = rng.uniform_range(0.07, 0.10) / COHORT_MEMBERS as f64;
            let megabits = rng.uniform_range(0.2, 0.8) / COHORT_MEMBERS as f64;
            let cohort = Cohort::new(
                services[idx],
                now,
                COHORT_MEMBERS,
                cpu_secs,
                MemMb(8.0 / COHORT_MEMBERS as f64),
                megabits,
            );
            let _ = cluster.admit_cohort(id, cohort, now);
        }
    };

    for _ in 0..warmup_ticks.max(1) {
        admit(&mut cluster, &mut rng, now);
        cluster.advance_into(now, dt, &mut report);
        now += dt;
    }

    let mut completed = 0u64;
    let mut checksum = 0u64;
    let mut tick_ns: Vec<u64> = Vec::with_capacity(measured_ticks);
    let start = Instant::now();
    for _ in 0..measured_ticks {
        admit(&mut cluster, &mut rng, now);
        let t0 = Instant::now();
        cluster.advance_into(now, dt, &mut report);
        tick_ns.push(t0.elapsed().as_nanos() as u64);
        completed += fold_completions(&report, &mut checksum);
        now += dt;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let outcome = RunOutcome {
        workers: parallelism,
        ticks_per_sec: measured_ticks as f64 / elapsed,
        requests_per_sec: completed as f64 / elapsed,
        latency: Latency::from_ns(&mut tick_ns),
        checksum,
    };
    println!(
        "  nodes={:<6} workers={:<2} {:>9.0} ticks/s {:>12.0} req/s  p50 {:>7.1}us p99 {:>7.1}us  (checksum {:016x})",
        nodes,
        outcome.workers,
        outcome.ticks_per_sec,
        outcome.requests_per_sec,
        outcome.latency.p50,
        outcome.latency.p99,
        outcome.checksum
    );
    outcome
}

/// The scale sweep's traffic footprint: `active_fraction` of the 24-node
/// baseline, at least one node.
fn footprint_nodes(active_fraction: f64) -> usize {
    ((NODES as f64 * active_fraction).ceil() as usize).clamp(1, NODES)
}

/// Sweeps total cluster size at a fixed traffic footprint, measuring
/// serial ticks/s per point, and spot-checks serial-vs-parallel digest
/// identity at the largest gated point.
fn scale_sweep(node_counts: &[usize], active_fraction: f64, smoke: bool) -> Vec<ScalePoint> {
    let footprint = footprint_nodes(active_fraction);
    let (warmup_ticks, measured_ticks) = if smoke { (300, 3_000) } else { (500, 10_000) };
    println!(
        "scale sweep: footprint {footprint} of 24 nodes (active fraction {active_fraction}), \
         {measured_ticks} ticks per point"
    );
    let points: Vec<ScalePoint> = node_counts
        .iter()
        .map(|&nodes| ScalePoint {
            nodes,
            outcome: scale_drive(nodes, footprint, 1, warmup_ticks, measured_ticks),
        })
        .collect();

    // Digest spot check: the biggest gated cluster must tick
    // bit-identically under the pooled engine.
    if let Some(p) = points
        .iter()
        .filter(|p| p.nodes > NODES && p.nodes <= SCALE_GATE_SPAN_NODES)
        .max_by_key(|p| p.nodes)
    {
        let parallel = scale_drive(
            p.nodes,
            footprint,
            HEADLINE_WORKERS,
            warmup_ticks,
            measured_ticks,
        );
        assert_eq!(
            p.outcome.checksum, parallel.checksum,
            "scale sweep: {} nodes diverged between serial and {HEADLINE_WORKERS} workers",
            p.nodes
        );
        println!(
            "  {}-node point is bit-identical at {HEADLINE_WORKERS} workers",
            p.nodes
        );
    }
    points
}

/// Sub-linearity gate: every swept cluster up to `SCALE_GATE_SPAN_NODES`
/// must tick within `SCALE_GATE_FLOOR` of the 24-node baseline rate at
/// the same traffic footprint. Larger points only have to complete.
fn scale_gate(points: &[ScalePoint]) {
    let base = points
        .iter()
        .find(|p| p.nodes == NODES)
        .expect("sweep includes the 24-node baseline");
    for p in points {
        if p.nodes <= NODES || p.nodes > SCALE_GATE_SPAN_NODES {
            continue;
        }
        let ratio = p.outcome.ticks_per_sec / base.outcome.ticks_per_sec;
        assert!(
            ratio >= SCALE_GATE_FLOOR,
            "scale gate: {} nodes tick at {ratio:.2}x the {NODES}-node rate, below the \
             {SCALE_GATE_FLOOR:.2}x floor — per-tick cost is no longer proportional to the \
             active set",
            p.nodes
        );
        println!(
            "  scale gate: {} nodes at {ratio:.2}x the {NODES}-node rate (floor {SCALE_GATE_FLOOR:.2}x)",
            p.nodes
        );
    }
}

/// The lowest acceptable parallel(4)/serial throughput ratio for a
/// machine with `hardware_threads` cores. With 4+ cores the persistent
/// pool must win outright; with fewer, parallel cannot beat serial in
/// wall-clock, but the pool's park/unpark handoff must still stay close —
/// the spawn-per-tick engine this PR replaces measured 0.72x on one
/// core, so 0.80 catches that regression while absorbing timeshare
/// jitter.
fn gate_floor(hardware_threads: usize) -> f64 {
    match hardware_threads {
        0 | 1 => 0.80,
        2 | 3 => 0.95,
        _ => 1.0,
    }
}

/// Reads `--name value` or `--name=value` from the argument list.
fn flag_value(args: &[String], name: &str) -> Option<f64> {
    let prefix = format!("{name}=");
    for (i, arg) in args.iter().enumerate() {
        let raw = if let Some(v) = arg.strip_prefix(&prefix) {
            v
        } else if arg == name {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{name} requires a value"))
        } else {
            continue;
        };
        return Some(
            raw.parse()
                .unwrap_or_else(|_| panic!("{name}: {raw:?} is not a number")),
        );
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate = args.iter().any(|a| a == "--gate");
    let million_only = args.iter().any(|a| a == "--million-only");
    let initial_rps = flag_value(&args, "--initial-rps").unwrap_or(20_000.0);
    let increment_rps = flag_value(&args, "--increment-rps").unwrap_or(20_000.0);
    let max_rps = flag_value(&args, "--max-rps").unwrap_or(160_000.0);
    let nodes_flag = flag_value(&args, "--nodes").map(|v| v as usize);
    let active_fraction = flag_value(&args, "--active-fraction").unwrap_or(1.0);
    assert!(
        active_fraction > 0.0 && active_fraction <= 1.0,
        "--active-fraction must be in (0, 1]"
    );
    let (warmup_ticks, measured_ticks) = if smoke { (500, 5_000) } else { (2_000, 30_000) };
    let (ramp_warmup, ramp_measured) = if smoke { (30, 100) } else { (60, 200) };

    if million_only {
        million_users();
        println!("million-user smoke passed");
        return;
    }

    if let Some(nodes) = nodes_flag {
        // Scale-sweep-only mode: {24, N} at the fixed footprint, gated on
        // request, BENCH_tick.json untouched (the full run records it).
        assert!(nodes >= NODES, "--nodes must be >= {NODES}");
        let counts: Vec<usize> = if nodes == NODES {
            vec![NODES]
        } else {
            vec![NODES, nodes]
        };
        let points = scale_sweep(&counts, active_fraction, smoke);
        if gate {
            scale_gate(&points);
            println!("scale gates passed");
        }
        println!(
            "scale sweep done ({} point(s); BENCH_tick.json untouched)",
            points.len()
        );
        return;
    }

    let hardware_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "tickbench: {NODES} nodes x {CONTAINERS_PER_NODE} containers, {SERVICES} services, \
         {measured_ticks} ticks, {hardware_threads} hardware thread(s){}",
        if smoke { " [smoke]" } else { "" }
    );

    let request_outcomes = sweep("request mode", warmup_ticks, measured_ticks, false);
    let cohort_outcomes = sweep("cohort mode", warmup_ticks, measured_ticks, true);

    let serial = &request_outcomes[0];
    let parallel = request_outcomes
        .iter()
        .find(|o| o.workers == HEADLINE_WORKERS)
        .expect("sweep includes the headline worker count");
    let cohort_serial = &cohort_outcomes[0];
    let cohort_parallel = cohort_outcomes
        .iter()
        .find(|o| o.workers == HEADLINE_WORKERS)
        .expect("sweep includes the headline worker count");

    let speedup_parallel = parallel.ticks_per_sec / serial.ticks_per_sec;
    // On boxes with fewer cores than workers the serial engine wins;
    // track the trajectory against the best configuration either way.
    let best = request_outcomes
        .iter()
        .map(|o| o.ticks_per_sec)
        .fold(f64::MIN, f64::max);
    let speedup_vs_baseline = best / BASELINE_TICKS_PER_SEC;
    // Best of the cohort sweep: on boxes with fewer cores than the
    // headline worker count the serial configuration wins wall-clock.
    let headline_rps = cohort_outcomes
        .iter()
        .map(|o| o.requests_per_sec)
        .fold(f64::MIN, f64::max);
    let cohort_vs_request = headline_rps / serial.requests_per_sec;
    let cohort_vs_baseline = headline_rps / BASELINE_REQUESTS_PER_SEC;
    println!(
        "speedup: {speedup_parallel:.2}x parallel({HEADLINE_WORKERS}) over serial ticks, \
         {speedup_vs_baseline:.2}x over pre-rework baseline ({BASELINE_TICKS_PER_SEC:.0} ticks/s)"
    );
    println!(
        "cohort hot path: {headline_rps:.0} req/s = {cohort_vs_request:.1}x this machine's \
         request mode, {cohort_vs_baseline:.1}x the {BASELINE_REQUESTS_PER_SEC:.0} req/s baseline"
    );

    let (ramp_steps, knee_rps) = ramp(
        initial_rps,
        increment_rps,
        max_rps,
        ramp_warmup,
        ramp_measured,
    );
    let million = million_users();
    let scale_points = scale_sweep(&SCALE_SWEEP_NODES, active_fraction, smoke);

    if gate {
        scale_gate(&scale_points);
        let floor = gate_floor(hardware_threads);
        assert!(
            speedup_parallel >= floor,
            "throughput gate: parallel({HEADLINE_WORKERS}) is {speedup_parallel:.2}x serial, \
             below the {floor:.2}x floor for {hardware_threads} hardware thread(s) — \
             per-tick handoff overhead has regressed"
        );
        assert!(
            cohort_vs_request >= COHORT_GATE_FACTOR,
            "cohort gate: {headline_rps:.0} req/s is only {cohort_vs_request:.2}x this \
             machine's request-mode serial ({:.0} req/s); the columnar hot path must stay \
             >= {COHORT_GATE_FACTOR:.1}x",
            serial.requests_per_sec
        );
        println!(
            "throughput gates passed ({speedup_parallel:.2}x >= {floor:.2}x floor, \
             cohort {cohort_vs_request:.1}x >= {COHORT_GATE_FACTOR:.1}x)"
        );
    }

    let sweep_json = |outcomes: &[RunOutcome]| -> String {
        outcomes
            .iter()
            .map(|o| {
                format!(
                    "      {{ \"workers\": {}, \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1}, \
                     \"tick_latency_us\": {{ \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1} }} }}",
                    o.workers,
                    o.ticks_per_sec,
                    o.requests_per_sec,
                    o.latency.p50,
                    o.latency.p95,
                    o.latency.p99,
                    o.latency.max,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let scale_base_tps = scale_points
        .iter()
        .find(|p| p.nodes == NODES)
        .map(|p| p.outcome.ticks_per_sec)
        .expect("sweep includes the 24-node baseline");
    let scale_json: Vec<String> = scale_points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"nodes\": {}, \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1}, \"vs_24_nodes\": {:.3} }}",
                p.nodes,
                p.outcome.ticks_per_sec,
                p.outcome.requests_per_sec,
                p.outcome.ticks_per_sec / scale_base_tps
            )
        })
        .collect();
    let ramp_json: Vec<String> = ramp_steps
        .iter()
        .map(|s| {
            format!(
                "      {{ \"offered_rps\": {:.0}, \"completed_ratio\": {:.3} }}",
                s.offered_rps, s.completed_ratio
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scenario\": \"steady-state {NODES}x{CONTAINERS_PER_NODE} containers, {SERVICES} services\",\n  \
         \"measured_ticks\": {measured_ticks},\n  \
         \"baseline_ticks_per_sec\": {BASELINE_TICKS_PER_SEC:.1},\n  \
         \"baseline_requests_per_sec\": {BASELINE_REQUESTS_PER_SEC:.1},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"request_mode\": {{\n    \"sweep\": [\n{}\n    ],\n    \
         \"serial\": {{ \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1} }},\n    \
         \"parallel\": {{ \"workers\": {HEADLINE_WORKERS}, \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1} }}\n  }},\n  \
         \"cohort_mode\": {{\n    \"members_per_cohort\": {COHORT_MEMBERS},\n    \"sweep\": [\n{}\n    ],\n    \
         \"serial\": {{ \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1} }},\n    \
         \"parallel\": {{ \"workers\": {HEADLINE_WORKERS}, \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1} }}\n  }},\n  \
         \"ramp\": {{\n    \"initial_rps\": {initial_rps:.0},\n    \"increment_rps\": {increment_rps:.0},\n    \
         \"max_rps\": {max_rps:.0},\n    \"ticks_per_step\": {ramp_measured},\n    \
         \"saturation_knee_rps\": {knee_rps:.0},\n    \"steps\": [\n{}\n    ]\n  }},\n  \
         \"million_users\": {{\n    \"containers\": {},\n    \"members_per_container\": {MILLION_MEMBERS_PER_CONTAINER},\n    \
         \"peak_in_flight\": {},\n    \"drain_ticks\": {},\n    \"requests_per_sec\": {:.1},\n    \
         \"bit_identical\": true,\n    \"warp_ticks_skipped\": {}\n  }},\n  \
         \"scale_sweep\": {{\n    \"footprint_nodes\": {},\n    \"active_fraction\": {active_fraction:.2},\n    \
         \"workers\": 1,\n    \"sublinear_gate_floor\": {SCALE_GATE_FLOOR:.2},\n    \
         \"gate_span_nodes\": {SCALE_GATE_SPAN_NODES},\n    \"bit_identical\": true,\n    \
         \"points\": [\n{}\n    ]\n  }},\n  \
         \"requests_per_sec\": {headline_rps:.1},\n  \
         \"bit_identical\": true,\n  \
         \"speedup_parallel_vs_serial\": {speedup_parallel:.2},\n  \
         \"speedup_vs_baseline\": {speedup_vs_baseline:.2},\n  \
         \"speedup_requests_vs_baseline\": {cohort_vs_baseline:.2}\n}}\n",
        sweep_json(&request_outcomes),
        serial.ticks_per_sec,
        serial.requests_per_sec,
        parallel.ticks_per_sec,
        parallel.requests_per_sec,
        sweep_json(&cohort_outcomes),
        cohort_serial.ticks_per_sec,
        cohort_serial.requests_per_sec,
        cohort_parallel.ticks_per_sec,
        cohort_parallel.requests_per_sec,
        ramp_json.join(",\n"),
        NODES * CONTAINERS_PER_NODE,
        million.peak_in_flight,
        million.drain_ticks,
        million.requests_per_sec,
        million.warp_ticks,
        footprint_nodes(active_fraction),
        scale_json.join(",\n"),
    );
    std::fs::write("BENCH_tick.json", json).expect("write BENCH_tick.json");
    println!("wrote BENCH_tick.json");
}
