//! `tickbench` — steady-state throughput benchmark for the tick engine.
//!
//! Drives a synthetic 24-node / 15-service cluster in a busy steady state
//! (every node ~90% CPU-loaded, modest egress) through `Cluster::advance`
//! alone — no autoscaler, no load balancer — so the numbers isolate the
//! simulation hot loop. Sweeps the persistent worker pool across worker
//! counts {1, 2, 4, 8}, asserts every configuration is bit-identical to
//! serial (order-sensitive completion digest), and writes
//! `BENCH_tick.json` with per-configuration ticks/sec, requests/sec, and
//! per-tick latency percentiles, plus the speedups over both the serial
//! run and the pre-rework engine's recorded baseline, so later PRs can
//! be checked against the trajectory.
//!
//! Usage: `cargo run --release -p hyscale-bench --bin tickbench [-- flags]`
//!
//! * `--smoke` — CI scale: fewer measured ticks, same assertions.
//! * `--gate`  — regression gate: fail if parallel(4) throughput falls
//!   below the floor for this machine's core count (guards against
//!   reintroducing per-tick spawn overhead; see `gate_floor`).

use std::time::Instant;

use hyscale_cluster::{
    Cluster, ClusterConfig, ContainerId, ContainerSpec, Cores, MemMb, NodeSpec, Request, ServiceId,
    TickReport,
};
use hyscale_sim::{SimDuration, SimRng, SimTime};

const NODES: usize = 24;
const SERVICES: usize = 15;
const CONTAINERS_PER_NODE: usize = 4;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const HEADLINE_WORKERS: usize = 4;

/// Serial ticks/sec of the pre-rework engine (per-tick allocations, no
/// idle fast path) on this exact scenario, measured on the reference
/// machine before the tick-engine rework landed. The acceptance bar for
/// the rework was >= 2x this figure.
const BASELINE_TICKS_PER_SEC: f64 = 1480.0;

/// The 24-node / 15-service steady-state scenario: four replicas per node,
/// services striped round-robin across the replica grid.
fn build_cluster(parallelism: usize) -> (Cluster, Vec<ContainerId>) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.set_parallelism(parallelism);
    let mut containers = Vec::new();
    for n in 0..NODES {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        for c in 0..CONTAINERS_PER_NODE {
            let service = ServiceId::new(((n * CONTAINERS_PER_NODE + c) % SERVICES) as u32);
            let spec = ContainerSpec::new(service)
                .with_cpu_request(Cores(1.0))
                .with_mem_limit(MemMb(512.0))
                .with_startup_secs(0.0);
            let id = cluster
                .start_container(node, spec, SimTime::ZERO)
                .expect("placement fits");
            containers.push(id);
        }
    }
    (cluster, containers)
}

/// Per-tick wall-clock latency distribution, in microseconds.
struct Latency {
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
}

impl Latency {
    fn from_ns(samples: &mut [u64]) -> Latency {
        samples.sort_unstable();
        let pct = |p: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let rank = (p / 100.0 * (samples.len() - 1) as f64).round() as usize;
            samples[rank.min(samples.len() - 1)] as f64 / 1e3
        };
        Latency {
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max: samples.last().copied().unwrap_or(0) as f64 / 1e3,
        }
    }
}

/// Result of driving one engine configuration through the scenario.
struct RunOutcome {
    workers: usize,
    ticks_per_sec: f64,
    requests_per_sec: f64,
    latency: Latency,
    /// Order-sensitive digest of every completion (id, response time):
    /// two configurations are bit-identical iff digests match.
    checksum: u64,
}

fn drive(parallelism: usize, warmup_ticks: usize, measured_ticks: usize) -> RunOutcome {
    let (mut cluster, containers) = build_cluster(parallelism);
    let mut rng = SimRng::seed_from(0x71C2);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    let mut next = 0usize;
    let mut report = TickReport::default();

    let services: Vec<ServiceId> = containers
        .iter()
        .map(|&id| cluster.container(id).expect("live").spec().service)
        .collect();

    let admit = |cluster: &mut Cluster, rng: &mut SimRng, now: SimTime, next: &mut usize| {
        // One request per container per tick keeps each 4-core node at
        // roughly 90% CPU: 4 × (0.085 mean cpu_secs + base tax) per 0.4
        // core-secs of tick capacity.
        for _ in 0..CONTAINERS_PER_NODE * NODES {
            let idx = *next % containers.len();
            let id = containers[idx];
            let service = services[idx];
            *next += 1;
            let cpu_secs = rng.uniform_range(0.07, 0.10);
            let megabits = rng.uniform_range(0.2, 0.8);
            let request = Request::new(service, now, cpu_secs, MemMb(8.0), megabits);
            // Full queues just shed load; the steady state stays steady.
            let _ = cluster.admit_request(id, request, now);
        }
    };

    for _ in 0..warmup_ticks {
        admit(&mut cluster, &mut rng, now, &mut next);
        cluster.advance_into(now, dt, &mut report);
        now += dt;
    }

    let mut completed = 0u64;
    let mut checksum = 0u64;
    let mut tick_ns: Vec<u64> = Vec::with_capacity(measured_ticks);
    let start = Instant::now();
    for _ in 0..measured_ticks {
        admit(&mut cluster, &mut rng, now, &mut next);
        let t0 = Instant::now();
        cluster.advance_into(now, dt, &mut report);
        tick_ns.push(t0.elapsed().as_nanos() as u64);
        completed += report.completed.len() as u64;
        for done in &report.completed {
            checksum = checksum
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(done.id.index())
                .wrapping_add(done.response_time.as_secs().to_bits());
        }
        now += dt;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let outcome = RunOutcome {
        workers: parallelism,
        ticks_per_sec: measured_ticks as f64 / elapsed,
        requests_per_sec: completed as f64 / elapsed,
        latency: Latency::from_ns(&mut tick_ns),
        checksum,
    };
    println!(
        "workers={:<2} {:>10.0} ticks/s {:>11.0} req/s  p50 {:>7.1}us p95 {:>7.1}us p99 {:>7.1}us max {:>8.1}us  (checksum {:016x})",
        outcome.workers,
        outcome.ticks_per_sec,
        outcome.requests_per_sec,
        outcome.latency.p50,
        outcome.latency.p95,
        outcome.latency.p99,
        outcome.latency.max,
        outcome.checksum
    );
    outcome
}

/// The lowest acceptable parallel(4)/serial throughput ratio for a
/// machine with `hardware_threads` cores. With 4+ cores the persistent
/// pool must win outright; with fewer, parallel cannot beat serial in
/// wall-clock, but the pool's park/unpark handoff must still stay close —
/// the spawn-per-tick engine this PR replaces measured 0.72x on one
/// core, so 0.80 catches that regression while absorbing timeshare
/// jitter.
fn gate_floor(hardware_threads: usize) -> f64 {
    match hardware_threads {
        0 | 1 => 0.80,
        2 | 3 => 0.95,
        _ => 1.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate = args.iter().any(|a| a == "--gate");
    let (warmup_ticks, measured_ticks) = if smoke { (500, 5_000) } else { (2_000, 30_000) };

    let hardware_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "tickbench: {NODES} nodes x {CONTAINERS_PER_NODE} containers, {SERVICES} services, \
         {measured_ticks} ticks, {hardware_threads} hardware thread(s){}",
        if smoke { " [smoke]" } else { "" }
    );

    let outcomes: Vec<RunOutcome> = WORKER_SWEEP
        .iter()
        .map(|&w| drive(w, warmup_ticks, measured_ticks))
        .collect();

    let serial = &outcomes[0];
    for o in &outcomes[1..] {
        assert_eq!(
            serial.checksum, o.checksum,
            "parallel engine diverged from serial at {} workers",
            o.workers
        );
    }
    println!("all worker counts are bit-identical to serial");

    let parallel = outcomes
        .iter()
        .find(|o| o.workers == HEADLINE_WORKERS)
        .expect("sweep includes the headline worker count");
    let speedup_parallel = parallel.ticks_per_sec / serial.ticks_per_sec;
    // On boxes with fewer cores than workers the serial engine wins;
    // track the trajectory against the best configuration either way.
    let best = outcomes
        .iter()
        .map(|o| o.ticks_per_sec)
        .fold(f64::MIN, f64::max);
    let speedup_vs_baseline = best / BASELINE_TICKS_PER_SEC;
    println!(
        "speedup: {speedup_parallel:.2}x parallel({HEADLINE_WORKERS}) over serial, \
         {speedup_vs_baseline:.2}x over pre-rework baseline ({BASELINE_TICKS_PER_SEC:.0} ticks/s)"
    );

    if gate {
        let floor = gate_floor(hardware_threads);
        assert!(
            speedup_parallel >= floor,
            "throughput gate: parallel({HEADLINE_WORKERS}) is {speedup_parallel:.2}x serial, \
             below the {floor:.2}x floor for {hardware_threads} hardware thread(s) — \
             per-tick handoff overhead has regressed"
        );
        println!("throughput gate passed ({speedup_parallel:.2}x >= {floor:.2}x floor)");
    }

    let sweep_json: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "    {{ \"workers\": {}, \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1}, \
                 \"tick_latency_us\": {{ \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1} }} }}",
                o.workers,
                o.ticks_per_sec,
                o.requests_per_sec,
                o.latency.p50,
                o.latency.p95,
                o.latency.p99,
                o.latency.max,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scenario\": \"steady-state {NODES}x{CONTAINERS_PER_NODE} containers, {SERVICES} services\",\n  \
         \"measured_ticks\": {measured_ticks},\n  \
         \"baseline_ticks_per_sec\": {BASELINE_TICKS_PER_SEC:.1},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"serial\": {{ \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1} }},\n  \
         \"parallel\": {{ \"workers\": {HEADLINE_WORKERS}, \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1} }},\n  \
         \"bit_identical\": true,\n  \
         \"speedup_parallel_vs_serial\": {speedup_parallel:.2},\n  \
         \"speedup_vs_baseline\": {speedup_vs_baseline:.2}\n}}\n",
        sweep_json.join(",\n"),
        serial.ticks_per_sec,
        serial.requests_per_sec,
        parallel.ticks_per_sec,
        parallel.requests_per_sec,
    );
    std::fs::write("BENCH_tick.json", json).expect("write BENCH_tick.json");
    println!("wrote BENCH_tick.json");
}
