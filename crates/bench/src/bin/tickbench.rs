//! `tickbench` — steady-state throughput benchmark for the tick engine.
//!
//! Drives a synthetic 24-node / 15-service cluster in a busy steady state
//! (every node ~90% CPU-loaded, modest egress) through `Cluster::advance`
//! alone — no autoscaler, no load balancer — so the numbers isolate the
//! simulation hot loop. Runs the scenario twice, serial and with four
//! worker threads, asserts the two are bit-identical (order-sensitive
//! completion digest), and writes `BENCH_tick.json` with ticks/sec,
//! requests/sec, and the speedups over both the serial run and the
//! pre-rework engine's recorded baseline, so later PRs can be checked
//! against the trajectory.
//!
//! Usage: `cargo run --release -p hyscale-bench --bin tickbench`

use std::time::Instant;

use hyscale_cluster::{
    Cluster, ClusterConfig, ContainerId, ContainerSpec, Cores, MemMb, NodeSpec, Request, ServiceId,
    TickReport,
};
use hyscale_sim::{SimDuration, SimRng, SimTime};

const NODES: usize = 24;
const SERVICES: usize = 15;
const CONTAINERS_PER_NODE: usize = 4;
const WARMUP_TICKS: usize = 2_000;
const MEASURED_TICKS: usize = 30_000;
const PARALLEL_WORKERS: usize = 4;

/// Serial ticks/sec of the pre-rework engine (per-tick allocations, no
/// idle fast path) on this exact scenario, measured on the reference
/// machine before the tick-engine rework landed. The acceptance bar for
/// the rework was >= 2x this figure.
const BASELINE_TICKS_PER_SEC: f64 = 1480.0;

/// The 24-node / 15-service steady-state scenario: four replicas per node,
/// services striped round-robin across the replica grid.
fn build_cluster(parallelism: usize) -> (Cluster, Vec<ContainerId>) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.set_parallelism(parallelism);
    let mut containers = Vec::new();
    for n in 0..NODES {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        for c in 0..CONTAINERS_PER_NODE {
            let service = ServiceId::new(((n * CONTAINERS_PER_NODE + c) % SERVICES) as u32);
            let spec = ContainerSpec::new(service)
                .with_cpu_request(Cores(1.0))
                .with_mem_limit(MemMb(512.0))
                .with_startup_secs(0.0);
            let id = cluster
                .start_container(node, spec, SimTime::ZERO)
                .expect("placement fits");
            containers.push(id);
        }
    }
    (cluster, containers)
}

/// Result of driving one engine configuration through the scenario.
struct RunOutcome {
    ticks_per_sec: f64,
    requests_per_sec: f64,
    /// Order-sensitive digest of every completion (id, response time):
    /// two configurations are bit-identical iff digests match.
    checksum: u64,
}

fn drive(label: &str, parallelism: usize) -> RunOutcome {
    let (mut cluster, containers) = build_cluster(parallelism);
    let mut rng = SimRng::seed_from(0x71C2);
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    let mut next = 0usize;
    let mut report = TickReport::default();

    let services: Vec<ServiceId> = containers
        .iter()
        .map(|&id| cluster.container(id).expect("live").spec().service)
        .collect();

    let admit = |cluster: &mut Cluster, rng: &mut SimRng, now: SimTime, next: &mut usize| {
        // One request per container per tick keeps each 4-core node at
        // roughly 90% CPU: 4 × (0.085 mean cpu_secs + base tax) per 0.4
        // core-secs of tick capacity.
        for _ in 0..CONTAINERS_PER_NODE * NODES {
            let idx = *next % containers.len();
            let id = containers[idx];
            let service = services[idx];
            *next += 1;
            let cpu_secs = rng.uniform_range(0.07, 0.10);
            let megabits = rng.uniform_range(0.2, 0.8);
            let request = Request::new(service, now, cpu_secs, MemMb(8.0), megabits);
            // Full queues just shed load; the steady state stays steady.
            let _ = cluster.admit_request(id, request, now);
        }
    };

    for _ in 0..WARMUP_TICKS {
        admit(&mut cluster, &mut rng, now, &mut next);
        cluster.advance_into(now, dt, &mut report);
        now += dt;
    }

    let mut completed = 0u64;
    let mut checksum = 0u64;
    let start = Instant::now();
    for _ in 0..MEASURED_TICKS {
        admit(&mut cluster, &mut rng, now, &mut next);
        cluster.advance_into(now, dt, &mut report);
        completed += report.completed.len() as u64;
        for done in &report.completed {
            checksum = checksum
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(done.id.index())
                .wrapping_add(done.response_time.as_secs().to_bits());
        }
        now += dt;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let outcome = RunOutcome {
        ticks_per_sec: MEASURED_TICKS as f64 / elapsed,
        requests_per_sec: completed as f64 / elapsed,
        checksum,
    };
    println!(
        "{label:<10} {:>12.0} ticks/s {:>12.0} req/s  (checksum {:016x})",
        outcome.ticks_per_sec, outcome.requests_per_sec, outcome.checksum
    );
    outcome
}

fn main() {
    println!(
        "tickbench: {NODES} nodes x {CONTAINERS_PER_NODE} containers, {SERVICES} services, {MEASURED_TICKS} ticks"
    );
    let serial = drive("serial", 1);
    let parallel = drive("parallel/4", PARALLEL_WORKERS);

    assert_eq!(
        serial.checksum, parallel.checksum,
        "parallel engine diverged from serial"
    );
    println!("parallel/{PARALLEL_WORKERS} is bit-identical to serial");

    let speedup_parallel = parallel.ticks_per_sec / serial.ticks_per_sec;
    // On boxes with fewer cores than workers the serial engine wins;
    // track the trajectory against the best configuration either way.
    let best = serial.ticks_per_sec.max(parallel.ticks_per_sec);
    let speedup_vs_baseline = best / BASELINE_TICKS_PER_SEC;
    println!(
        "speedup: {speedup_parallel:.2}x over serial, {speedup_vs_baseline:.2}x over pre-rework baseline ({BASELINE_TICKS_PER_SEC:.0} ticks/s)"
    );

    let json = format!(
        "{{\n  \"scenario\": \"steady-state {NODES}x{CONTAINERS_PER_NODE} containers, {SERVICES} services\",\n  \"measured_ticks\": {MEASURED_TICKS},\n  \"baseline_ticks_per_sec\": {BASELINE_TICKS_PER_SEC:.1},\n  \"serial\": {{ \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1} }},\n  \"parallel\": {{ \"workers\": {PARALLEL_WORKERS}, \"ticks_per_sec\": {:.1}, \"requests_per_sec\": {:.1} }},\n  \"bit_identical\": true,\n  \"speedup_parallel_vs_serial\": {speedup_parallel:.2},\n  \"speedup_vs_baseline\": {speedup_vs_baseline:.2}\n}}\n",
        serial.ticks_per_sec,
        serial.requests_per_sec,
        parallel.ticks_per_sec,
        parallel.requests_per_sec,
    );
    std::fs::write("BENCH_tick.json", json).expect("write BENCH_tick.json");
    println!("wrote BENCH_tick.json");
}
