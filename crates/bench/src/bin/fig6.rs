//! Figure 6: CPU-bound experiments — % failed requests and average
//! response times for all four algorithms under low-burst (6a) and
//! high-burst (6b) client load.
//!
//! Paper expectations: HyScaleCPU+Mem fastest overall, Kubernetes slowest
//! (1.49x / 1.43x HyScale speedups on low/high burst), HyScale up to 10x
//! fewer failed requests, availability ≥ 99.8% everywhere.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin fig6 [-- --full]
//! ```

use hyscale_bench::runner::{cost_table, perf_table, scale_from_args, sla_table, sweep_all};
use hyscale_bench::scenarios::{cpu_bound, Burst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    for burst in [Burst::Low, Burst::High] {
        let rows = sweep_all(|k| cpu_bound(&scale, burst, k), &scale.seeds)?;
        println!("\n=== Fig. 6 ({}) CPU-bound ===", burst.label());
        println!("{}", perf_table(&rows));
        println!("{}", cost_table(&rows));
        println!("{}", sla_table(&rows));
    }
    println!("paper: hybrid/hybridmem ~1.4-1.5x faster than kubernetes;");
    println!("       kubernetes up to 10x more failed requests; avail >= 99.8%");
    Ok(())
}
