//! Retry-storm experiment: the three-tier call graph under a seeded
//! fault storm, with per-hop retries enabled, run in two arms — one
//! with no brakes (unlimited retries, no deadline, no shedding) and one
//! with the full resilience kit (10% retry budget, 30 s root deadline,
//! admission shedding). Reports the goodput-vs-wasted-work split per
//! algorithm for both arms, plus a serial-vs-parallel and repeat-run
//! bit-identity check of the whole resilience path (backoff jitter,
//! token buckets, deadlines, shedding).
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin retry_storm [-- --full | --smoke]
//! ```

use hyscale_bench::runner::{perf_table, sweep_all, FigureRow};
use hyscale_bench::scenarios::{retry_storm, Scale};
use hyscale_core::{AlgorithmKind, SimulationDriver};
use hyscale_metrics::Table;

/// The resilience scoreboard: how much retrying happened, which brake
/// stopped it, and whether the work that completed was worth doing.
fn resilience_table(rows: &[FigureRow]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "retries",
        "retried members",
        "budget out",
        "deadline out",
        "shed roots",
        "goodput",
        "wasted",
        "goodput %",
    ]);
    for row in rows {
        let r = &row.report.resilience;
        table.row(vec![
            row.algorithm.label().to_string(),
            r.retries.to_string(),
            r.retried_members.to_string(),
            r.budget_exhausted.to_string(),
            r.deadline_exceeded.to_string(),
            r.shed_roots.to_string(),
            r.goodput_members.to_string(),
            r.wasted_members.to_string(),
            format!("{:.2}", r.goodput_pct()),
        ]);
    }
    table
}

fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        println!("[scale: full — 19 workers, 15 services, 3600 s, 5 seeds]");
        Scale::full()
    } else if std::env::args().any(|a| a == "--smoke") {
        println!("[scale: smoke — 4 workers, 3 services, 300 s, 1 seed]");
        Scale::bench()
    } else {
        println!("[scale: quick — pass --full for the paper-size run]");
        Scale::quick()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();

    // Determinism gate: every resilience mechanism draws from a
    // dedicated serial-phase RNG stream, so the storm must be
    // bit-identical serial vs node-parallel and across repeated runs.
    let mut serial = retry_storm(&scale, AlgorithmKind::HyScaleCpu, true);
    serial.seed = scale.seeds[0];
    serial.parallelism = 1;
    let mut parallel = serial.clone();
    parallel.parallelism = 4;
    let a = SimulationDriver::run(&serial)?;
    let b = SimulationDriver::run(&parallel)?;
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "retry-storm run diverged between serial and parallel execution"
    );
    let c = SimulationDriver::run(&serial)?;
    assert_eq!(
        format!("{a:?}"),
        format!("{c:?}"),
        "retry-storm run diverged across repeated identical runs"
    );
    println!("[determinism: serial == parallelism(4) == repeat, bit-identical]");
    assert!(
        a.resilience.retries > 0,
        "the storm must actually trigger retries"
    );

    for budgeted in [false, true] {
        let rows = sweep_all(|k| retry_storm(&scale, k, budgeted), &scale.seeds)?;
        let arm = if budgeted {
            "budgeted: 10% retry budget, 30 s root deadline, admission shedding"
        } else {
            "unbudgeted: unlimited retries, no deadline, no shedding"
        };
        println!("\n=== Retry storm ({arm}) ===");
        println!("{}", perf_table(&rows));
        println!("{}", resilience_table(&rows));
    }
    println!("expectation: both arms face the identical fault storm and");
    println!("retry policy. Without brakes, failed bursts re-enter the");
    println!("struggling tiers as fresh load, so retries snowball and a");
    println!("growing share of completed work belongs to roots that fail");
    println!("anyway — goodput % collapses. With the budget, deadline, and");
    println!("shedding engaged, retries are capped at a fixed fraction of");
    println!("successes and hopeless roots are cut early, so wasted work");
    println!("stays bounded and goodput % recovers.");
    Ok(())
}
