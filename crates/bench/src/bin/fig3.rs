//! Figure 3: response times of horizontal scaling for the network tests
//! with a total bandwidth of 100 Mb/s (Sec. III-C).
//!
//! 640 iperf-style bulk streams push through 1–16 replicas, each holding
//! a `tc` cap of `100/replicas` Mb/s on its own machine. The paper's
//! finding: vertical network scaling is ≈ neutral, but horizontal
//! scaling yields "a large decrease in execution time ... tapering off at
//! around 8 replicas" as the per-machine transmit-queue contention is
//! relieved until the aggregate 100 Mb/s allocation becomes the binding
//! constraint.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin fig3
//! ```

use hyscale_bench::studies::fig3_net_point;
use hyscale_metrics::Table;

fn main() {
    println!("Fig. 3: network horizontal scaling at 100 Mb/s total allocation");
    println!("640 parallel bulk streams; tc cap = 100/replicas Mb/s each.\n");
    let mut table = Table::new(vec![
        "replicas",
        "mean rt (s)",
        "makespan (s)",
        "speedup vs 1 replica",
    ]);
    let baseline = fig3_net_point(1);
    for replicas in [1usize, 2, 4, 8, 16] {
        let point = if replicas == 1 {
            baseline
        } else {
            fig3_net_point(replicas)
        };
        assert_eq!(point.failed, 0, "fig3 scenarios must not drop requests");
        table.row(vec![
            replicas.to_string(),
            format!("{:.2}", point.mean_response_secs),
            format!("{:.2}", point.makespan_secs),
            format!(
                "{:.2}x",
                baseline.mean_response_secs / point.mean_response_secs
            ),
        ]);
    }
    println!("{table}");
    println!("paper: large decrease in execution time with more replicas,");
    println!("       tapering off at around 8 replicas");
}
