//! Chaos-control experiment: the chaos fault storm run through an
//! *unreliable control plane* (lossy/delayed/duplicated stat reports,
//! failable actuations), comparing all four algorithms' SLO violations
//! and availability against the same storm over a healthy link.
//!
//! Also gates determinism: the degraded run's trace journal must be
//! byte-identical serial vs node-parallel (every control-plane RNG draw
//! happens in the serial Monitor phase).
//!
//! Writes the comparison to `results/chaos_control[_full].txt`.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin chaos_control [-- --full | --smoke]
//! ```

use std::fmt::Write as _;

use hyscale_bench::runner::{perf_table, sla_table, sweep_all, FigureRow};
use hyscale_bench::scenarios::{chaos_control, Scale};
use hyscale_core::{AlgorithmKind, ScenarioConfig, SimulationDriver};
use hyscale_metrics::Table;
use hyscale_trace::{export, RunMeta, TraceSink};

/// Ring capacity for the journal gate: large enough that the bench-scale
/// scenario never wraps.
const CAPACITY: usize = 1 << 18;

fn scale_from_args() -> (Scale, &'static str) {
    if std::env::args().any(|a| a == "--full") {
        println!("[scale: full — 19 workers, 15 services, 3600 s, 5 seeds]");
        (Scale::full(), "full")
    } else if std::env::args().any(|a| a == "--smoke") {
        println!("[scale: smoke — 4 workers, 3 services, 300 s, 1 seed]");
        (Scale::bench(), "smoke")
    } else {
        println!("[scale: quick — pass --full for the paper-size run]");
        (Scale::quick(), "quick")
    }
}

/// Control-plane health columns: what the degradation did and what the
/// resilience machinery absorbed.
fn control_plane_table(rows: &[FigureRow]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "lost",
        "late",
        "dup",
        "act fails",
        "retries",
        "deduped",
        "abandoned",
        "breaker opens",
        "safe-mode periods",
        "stale vetoes",
    ]);
    for row in rows {
        let cp = &row.report.control_plane;
        table.row(vec![
            row.algorithm.label().to_string(),
            cp.reports_lost.to_string(),
            cp.reports_late.to_string(),
            cp.reports_duplicated.to_string(),
            cp.actuation_failures.to_string(),
            cp.actuation_retries.to_string(),
            cp.actuations_deduped.to_string(),
            cp.actuations_abandoned.to_string(),
            cp.breaker_opens.to_string(),
            cp.safe_mode_periods.to_string(),
            cp.stale_vetoes.to_string(),
        ]);
    }
    table
}

fn availability_table(rows: &[FigureRow]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "min uptime %",
        "max mttr (s)",
        "respawns",
        "recovery fails",
    ]);
    for row in rows {
        let r = &row.report;
        table.row(vec![
            row.algorithm.label().to_string(),
            format!("{:.3}", r.min_uptime_pct()),
            format!("{:.1}", r.max_mttr_secs()),
            r.total_respawns().to_string(),
            r.total_recovery_failures().to_string(),
        ]);
    }
    table
}

/// Runs the scenario with an enabled sink and serializes the journal.
fn traced_journal(config: &ScenarioConfig) -> Result<String, Box<dyn std::error::Error>> {
    let mut sink = TraceSink::with_capacity(CAPACITY);
    SimulationDriver::run_traced(config, &mut sink)?;
    let meta = RunMeta {
        scenario: &config.name,
        seed: config.seed,
        algorithm: config.algorithm.label(),
    };
    Ok(export::jsonl(&sink, &meta))
}

fn arm_section(title: &str, rows: &[FigureRow], out: &mut String) -> Result<(), std::fmt::Error> {
    writeln!(out, "\n=== {title} ===")?;
    writeln!(out, "{}", perf_table(rows))?;
    writeln!(out, "{}", sla_table(rows))?;
    writeln!(out, "{}", availability_table(rows))?;
    writeln!(out, "{}", control_plane_table(rows))?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (scale, label) = scale_from_args();

    // Determinism gate: the degraded control plane draws all its chaos in
    // the serial Monitor phase, so the trace journal must be
    // byte-identical serial vs node-parallel.
    let mut config = chaos_control(&scale, AlgorithmKind::HyScaleCpu, true);
    config.seed = scale.seeds[0];
    config.parallelism = 1;
    let serial = traced_journal(&config)?;
    let mut wide = config.clone();
    wide.parallelism = 4;
    let parallel = traced_journal(&wide)?;
    assert_eq!(
        serial, parallel,
        "degraded control-plane journal diverged between serial and parallelism(4)"
    );
    println!("[determinism: degraded run serial == parallelism(4), byte-identical JSONL]");

    let healthy = sweep_all(|k| chaos_control(&scale, k, false), &scale.seeds)?;
    let degraded = sweep_all(|k| chaos_control(&scale, k, true), &scale.seeds)?;

    let mut out = String::new();
    arm_section(
        "Chaos-control: healthy control plane (fault storm only)",
        &healthy,
        &mut out,
    )?;
    arm_section(
        "Chaos-control: degraded control plane (5% loss, 10% delay<=2, 2% dup, 5% act-fail)",
        &degraded,
        &mut out,
    )?;
    writeln!(
        out,
        "expectation: the degraded arm loses some SLO headroom (stale views"
    )?;
    writeln!(
        out,
        "delay scaling; failed actuations retry with backoff) but safe mode,"
    )?;
    writeln!(
        out,
        "staleness vetoes, idempotent retries, and circuit breakers keep"
    )?;
    writeln!(
        out,
        "availability close to the healthy arm — degradation must not cascade."
    )?;
    print!("{out}");

    let path = if label == "full" {
        "results/chaos_control_full.txt".to_string()
    } else {
        format!("results/chaos_control_{label}.txt")
    };
    if std::fs::create_dir_all("results").is_ok() {
        std::fs::write(&path, &out)?;
        println!("[written: {path}]");
    }
    Ok(())
}
