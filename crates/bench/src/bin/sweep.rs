//! A parameterized experiment runner: compose your own scenario from the
//! command line without writing code.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin sweep -- \
//!     --profile mixed --burst high --nodes 12 --services 9 \
//!     --duration 1800 --seeds 3
//! ```
//!
//! Flags (all optional):
//!
//! * `--profile cpu|mem|net|disk|mixed` — microservice flavour (default cpu)
//! * `--burst low|high` — client-load shape (default low)
//! * `--nodes N` — worker count (default 8)
//! * `--services N` — microservice count (default 6)
//! * `--duration SECS` — simulated seconds (default 1200)
//! * `--seeds N` — seeds to average, starting at 101 (default 1)
//! * `--peak FRACTION` — peak demand as a fraction of cluster CPU (default 0.6)
//! * `--placement spread|pack` — scale-out placement policy (default spread)

use hyscale_bench::runner::{cost_table, perf_table, sla_table, sweep};
use hyscale_bench::scenarios::service_weights;
use hyscale_cluster::MemMb;
use hyscale_core::{AlgorithmKind, PlacementPolicy, ScenarioBuilder};
use hyscale_workload::{LoadPattern, ServiceProfile, ServiceSpec};

/// Minimal flag parser: `--key value` pairs.
fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == format!("--{name}"))
        .map(|w| w[1].clone())
        .unwrap_or_else(|| default.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = match arg("profile", "cpu").as_str() {
        "cpu" => ServiceProfile::CpuBound,
        "mem" => ServiceProfile::MemBound,
        "net" => ServiceProfile::NetBound,
        "disk" => ServiceProfile::DiskBound,
        "mixed" => ServiceProfile::Mixed,
        other => return Err(format!("unknown profile {other}").into()),
    };
    let burst = arg("burst", "low");
    let nodes: usize = arg("nodes", "8").parse()?;
    let services: usize = arg("services", "6").parse()?;
    let duration: f64 = arg("duration", "1200").parse()?;
    let seed_count: u64 = arg("seeds", "1").parse()?;
    let peak: f64 = arg("peak", "0.6").parse()?;
    let placement = match arg("placement", "spread").as_str() {
        "spread" => PlacementPolicy::Spread,
        "pack" => PlacementPolicy::Pack,
        other => return Err(format!("unknown placement {other}").into()),
    };
    let seeds: Vec<u64> = (0..seed_count).map(|i| 101 + i * 101).collect();

    let base = match burst.as_str() {
        "low" => LoadPattern::low_burst(),
        "high" => LoadPattern::high_burst(),
        other => return Err(format!("unknown burst {other}").into()),
    };
    // Size the aggregate peak against cluster CPU using the profile's
    // CPU cost (the dominant driver for every profile except net/disk,
    // where it still provides a sane scale).
    let cpu_per_req = match profile {
        ServiceProfile::CpuBound => 0.2,
        ServiceProfile::MemBound => 0.05,
        ServiceProfile::NetBound => 0.02,
        ServiceProfile::DiskBound => 0.02,
        ServiceProfile::Mixed => 0.12,
    };
    let capacity = nodes as f64 * 4.0;
    let factor = peak * capacity / (base.peak_rate() * cpu_per_req * services as f64);
    let weights = service_weights(services);

    println!(
        "sweep: {profile} / {burst}-burst, {nodes} nodes, {services} services, \
         {duration:.0}s, {} seed(s), peak {:.0}% CPU, {placement} placement\n",
        seeds.len(),
        peak * 100.0
    );

    let configs = AlgorithmKind::ALL
        .iter()
        .chain([AlgorithmKind::VerticalOnly].iter())
        .map(|&kind| {
            let mut builder = ScenarioBuilder::new("sweep")
                .nodes(nodes)
                .duration_secs(duration)
                .algorithm(kind);
            for (i, w) in weights.iter().enumerate() {
                let mut spec =
                    ServiceSpec::synthetic(i as u32, profile, base.clone().scaled(factor * w));
                match profile {
                    ServiceProfile::Mixed => {
                        spec = spec.with_demands(cpu_per_req, MemMb(8.0), 0.2);
                        spec.container = spec
                            .container
                            .clone()
                            .with_mem_per_rps(MemMb(14.0))
                            .with_queue_cap(64);
                    }
                    ServiceProfile::CpuBound => {
                        // A CPU experiment: ample memory.
                        spec.container = spec.container.clone().with_mem_limit(MemMb(512.0));
                    }
                    _ => {}
                }
                builder = builder.service(spec);
            }
            let mut config = builder.build();
            config.hpa.placement = placement;
            config.hyscale.placement = placement;
            (kind, config)
        })
        .collect();

    let rows = sweep(configs, &seeds)?;
    println!("{}", perf_table(&rows));
    println!("{}", cost_table(&rows));
    println!("{}", sla_table(&rows));
    Ok(())
}
