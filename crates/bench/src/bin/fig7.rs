//! Figure 7: mixed CPU+memory experiments — the memory-blind algorithms
//! (Kubernetes, HyScaleCPU) accumulate large connection-failure
//! percentages, and Kubernetes *beats* HyScaleCPU on the low-burst run
//! because horizontal scale-out incidentally adds memory.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin fig7 [-- --full]
//! ```

use hyscale_bench::runner::{cost_table, perf_table, scale_from_args, sla_table, sweep_all};
use hyscale_bench::scenarios::{mixed, Burst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    for burst in [Burst::Low, Burst::High] {
        let rows = sweep_all(|k| mixed(&scale, burst, k), &scale.seeds)?;
        println!("\n=== Fig. 7 ({}) mixed CPU+memory ===", burst.label());
        println!("{}", perf_table(&rows));
        println!("{}", cost_table(&rows));
        println!("{}", sla_table(&rows));
    }
    println!("paper: hybridmem best; kubernetes > hybrid (scale-out adds memory);");
    println!("       kubernetes/hybrid suffer significant connection failures");
    println!("       (served up to 23.67% fewer requests), skewing their mean rt low");
    Ok(())
}
