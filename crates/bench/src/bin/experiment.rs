//! Declarative experiment harness: runs the `algorithms × rps ramp`
//! grid described by a text config (see `experiments/sample.toml`) over
//! a weighted scenario mix, and writes the comparison table to
//! `results/experiment_<name>[_smoke].txt`.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin experiment -- experiments/sample.toml
//! cargo run --release -p hyscale-bench --bin experiment -- experiments/sample.toml --smoke
//! cargo run --release -p hyscale-bench --bin experiment -- --selftest
//! ```
//!
//! `--smoke` caps the simulated duration for CI; `--selftest` exercises
//! the parser and one tiny run without reading any file.

use std::fmt::Write as _;
use std::process::ExitCode;

use hyscale_bench::config::{parse, ExperimentSpec};
use hyscale_bench::runner::sweep;
use hyscale_metrics::{format_speedup, Table};

/// The checked-in sample, embedded so `--selftest` needs no files.
const SAMPLE: &str = include_str!("../../../../experiments/sample.toml");

fn grid_table(spec: &ExperimentSpec, rows: &[(String, f64, hyscale_core::RunReport)]) -> Table {
    // Speedup baseline: the first listed algorithm at the same rps step.
    let baseline = spec.algorithms[0].label();
    let mut table = Table::new(vec![
        "run",
        "rps",
        "mean rt (ms)",
        "p95 rt (ms)",
        "failed %",
        "avail %",
        "scale actions",
        "speedup vs first",
        "state digest",
    ]);
    for (label, rps, report) in rows {
        let base_mean = rows
            .iter()
            .find(|(l, r, _)| (r - rps).abs() < 1e-9 && l.contains(baseline))
            .map(|(_, _, rep)| rep.requests.mean_response_secs())
            .unwrap_or(0.0);
        let r = &report.requests;
        table.row(vec![
            label.clone(),
            format!("{rps:.0}"),
            format!("{:.1}", report.mean_response_ms()),
            format!("{:.1}", r.response_times.percentile(95.0) * 1e3),
            format!("{:.2}", r.failed_pct()),
            format!("{:.2}", r.availability_pct()),
            report.scaling.total().to_string(),
            format_speedup(base_mean, r.mean_response_secs()),
            report
                .state_digest
                .map(|d| format!("{d:016x}"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table
}

fn run_spec(spec: &ExperimentSpec, smoke: bool) -> Result<(), Box<dyn std::error::Error>> {
    let runs = spec.runs();
    println!(
        "[experiment '{}': {} algorithms x {} rps steps x {} scenario classes = {} runs]",
        spec.name,
        spec.algorithms.len(),
        spec.ramp.steps().len(),
        spec.scenarios.len(),
        runs.len()
    );
    let pairs = runs
        .iter()
        .map(|r| (r.algorithm, r.config.clone()))
        .collect();
    let reports = sweep(pairs, &[spec.seed])?;
    let rows: Vec<(String, f64, hyscale_core::RunReport)> = runs
        .iter()
        .zip(reports)
        .map(|(run, row)| (run.label.clone(), run.rps, row.report))
        .collect();

    let mut out = String::new();
    writeln!(out, "=== Experiment: {} ===", spec.name)?;
    writeln!(
        out,
        "mix: {}",
        spec.scenarios
            .iter()
            .map(|m| format!("{} {}% {}", m.name, m.weight, m.profile))
            .collect::<Vec<_>>()
            .join(", ")
    )?;
    writeln!(
        out,
        "ramp: {:.0} -> {:.0} rps in steps of {:.0}; {} nodes, {:.0} s each, seed {}",
        spec.ramp.initial_rps,
        spec.ramp.max_rps,
        spec.ramp.increment_rps,
        spec.nodes,
        spec.duration_secs,
        spec.seed
    )?;
    writeln!(out, "{}", grid_table(spec, &rows))?;
    if let Some(snap) = &spec.snapshot {
        writeln!(
            out,
            "snapshots: every {} ticks under {} (resume via ScenarioBuilder::resume_from)",
            snap.every_ticks, snap.dir
        )?;
    }
    print!("{out}");

    let suffix = if smoke { "_smoke" } else { "" };
    let path = format!("results/experiment_{}{suffix}.txt", spec.name);
    if std::fs::create_dir_all("results").is_ok() {
        std::fs::write(&path, &out)?;
        println!("[written: {path}]");
    }
    Ok(())
}

fn selftest() -> Result<(), Box<dyn std::error::Error>> {
    // The embedded sample must parse and expand.
    let spec = parse(SAMPLE)?;
    let runs = spec.runs();
    assert_eq!(runs.len(), spec.algorithms.len() * spec.ramp.steps().len());

    // Malformed input must come back as a descriptive error, not a panic.
    let err = parse("[experiment]\nbogus = 1\n").expect_err("bad key must be rejected");
    assert!(err.to_string().contains("line 2"), "error names the line");

    // One tiny end-to-end run through the first grid cell.
    let mut config = runs[0].config.clone();
    config.duration = hyscale_sim::SimDuration::from_secs(20.0);
    config.snapshot = None;
    let report = hyscale_core::SimulationDriver::run(&config)?;
    assert!(report.requests.issued > 0, "selftest run served traffic");
    println!(
        "[selftest: parser + {} grid cells + tiny run ok]",
        runs.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--selftest") {
        return match selftest() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("selftest failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: experiment <config.toml> [--smoke] | --selftest");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut spec = match parse(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    if smoke {
        spec.duration_secs = spec.duration_secs.min(30.0);
        println!("[smoke: duration capped at {:.0} s]", spec.duration_secs);
    }
    match run_spec(&spec, smoke) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}
