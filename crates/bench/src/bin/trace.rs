//! Trace-journal determinism gate and journal generator: replays the
//! chaos benchmark scenario with an enabled trace sink, proves the JSONL
//! journal is byte-identical serial vs node-parallel and across repeated
//! seeded runs — likewise for the graph scenario's journal, which adds
//! per-hop span events — then writes `TRACE_journal.jsonl` /
//! `TRACE_journal.csv` / `TRACE_graph.jsonl` and prints the event-kind
//! census.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin trace [-- --full | --smoke]
//! ```

use std::collections::BTreeMap;

use hyscale_bench::scenarios::{chaos, graph, Scale};
use hyscale_core::{AlgorithmKind, ScenarioConfig, SimulationDriver};
use hyscale_trace::{export, RunMeta, TraceSink};

/// Ring capacity for the journal runs: large enough that the bench-scale
/// chaos scenario never wraps (wraparound is exercised by the test
/// battery, not here — the published journal should be complete).
const CAPACITY: usize = 1 << 18;

fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        println!("[scale: full — 19 workers, 15 services, 3600 s, 5 seeds]");
        Scale::full()
    } else if std::env::args().any(|a| a == "--smoke") {
        println!("[scale: smoke — 4 workers, 3 services, 300 s, 1 seed]");
        Scale::bench()
    } else {
        println!("[scale: quick — pass --full for the paper-size run]");
        Scale::quick()
    }
}

/// Runs the scenario with an enabled sink and serializes the journal.
fn traced_journal(
    config: &ScenarioConfig,
) -> Result<(TraceSink, String), Box<dyn std::error::Error>> {
    let mut sink = TraceSink::with_capacity(CAPACITY);
    SimulationDriver::run_traced(config, &mut sink)?;
    let meta = RunMeta {
        scenario: &config.name,
        seed: config.seed,
        algorithm: config.algorithm.label(),
    };
    let journal = export::jsonl(&sink, &meta);
    Ok((sink, journal))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();

    let mut config = chaos(&scale, AlgorithmKind::HyScaleCpu);
    config.seed = scale.seeds[0];
    config.parallelism = 1;

    // Gate 1: the journal is byte-identical serial vs node-parallel.
    let (sink, serial) = traced_journal(&config)?;
    let mut wide = config.clone();
    wide.parallelism = 4;
    let (_, parallel) = traced_journal(&wide)?;
    assert_eq!(
        serial, parallel,
        "trace journal diverged between serial and parallelism(4)"
    );
    println!("[determinism: serial == parallelism(4), byte-identical JSONL]");

    // Gate 2: repeating the seeded run reproduces the journal exactly.
    let (_, again) = traced_journal(&config)?;
    assert_eq!(serial, again, "trace journal diverged across repeated runs");
    println!(
        "[determinism: repeated seed {} run, byte-identical JSONL]",
        config.seed
    );

    // Gate 3: tracing does not perturb the simulation.
    let untraced = SimulationDriver::run(&config)?;
    let mut disabled = TraceSink::disabled();
    let traced = SimulationDriver::run_traced(&config, &mut disabled)?;
    assert_eq!(
        format!("{untraced:?}"),
        format!("{traced:?}"),
        "tracing perturbed the run report"
    );
    println!("[isolation: traced and untraced reports are bit-identical]");

    // Gate 4: the graph scenario's journal — which adds per-hop span
    // events — is also byte-identical serial vs node-parallel, and
    // actually contains spans.
    let mut graph_config = graph(&scale, AlgorithmKind::HyScaleCpu);
    graph_config.seed = scale.seeds[0];
    graph_config.parallelism = 1;
    let (graph_sink, graph_serial) = traced_journal(&graph_config)?;
    let mut graph_wide = graph_config.clone();
    graph_wide.parallelism = 4;
    let (_, graph_parallel) = traced_journal(&graph_wide)?;
    assert_eq!(
        graph_serial, graph_parallel,
        "graph trace journal diverged between serial and parallelism(4)"
    );
    let spans = graph_sink
        .events()
        .filter(|e| e.kind.label() == "span")
        .count();
    assert!(spans > 0, "graph journal carries no span events");
    println!("[determinism: graph journal byte-identical, {spans} spans]");

    std::fs::write("TRACE_journal.jsonl", &serial)?;
    std::fs::write("TRACE_journal.csv", export::csv(&sink))?;
    std::fs::write("TRACE_graph.jsonl", &graph_serial)?;
    println!("wrote TRACE_journal.jsonl + TRACE_journal.csv + TRACE_graph.jsonl");

    let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
    for event in sink.events() {
        *census.entry(event.kind.label()).or_insert(0) += 1;
    }
    println!("\n=== Journal census ({} events retained) ===", sink.len());
    for (kind, count) in &census {
        println!("{kind:>18}  {count}");
    }
    println!(
        "{:>18}  {} (emitted {}, ring capacity {})",
        "dropped",
        sink.dropped(),
        sink.total_emitted(),
        CAPACITY
    );
    Ok(())
}
