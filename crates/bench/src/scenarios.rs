//! Paper-scale scenario definitions for the Section VI experiments.
//!
//! The paper's setup: 24 nodes (5 dedicated to load balancers, so 19
//! workers host containers), 15 microservices, one hour per experiment,
//! averaged over 5 runs, Monitor period 5 s. [`Scale::full`] reproduces
//! that; [`Scale::quick`] and [`Scale::bench`] shrink the cluster and the
//! clock for CI and criterion runs while preserving the load-to-capacity
//! ratio (which is what the algorithms actually react to).

use hyscale_cluster::{FaultPlan, FaultPlanConfig, Mbps, MemMb, NodeSpec};
use hyscale_core::{
    AlgorithmKind, ControlPlaneConfig, ResilienceConfig, ScenarioBuilder, ScenarioConfig,
};
use hyscale_sim::SimRng;
use hyscale_workload::bitbrains::{trace_to_load_pattern, SyntheticTrace};
use hyscale_workload::{
    GraphEdge, LoadPattern, RetryPolicy, ServiceGraph, ServiceProfile, ServiceSpec,
};

/// The paper's five-run averaging protocol, as seeds.
pub const PAPER_SEEDS: [u64; 5] = [101, 202, 303, 404, 505];

/// Which client-load shape an experiment uses (Sec. VI: "low-burst"
/// stable vs "high-burst" unstable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Burst {
    /// Stable, low-amplitude bursty traffic.
    Low,
    /// Unstable spiking traffic.
    High,
}

impl Burst {
    /// The label the paper's figures use.
    pub fn label(self) -> &'static str {
        match self {
            Burst::Low => "low-burst",
            Burst::High => "high-burst",
        }
    }
}

/// Experiment size: cluster, service count, duration, seeds.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Worker nodes (paper: 19 = 24 minus 5 LB nodes).
    pub nodes: usize,
    /// Number of microservices (paper: 15).
    pub services: usize,
    /// Simulated seconds per run (paper: 3600).
    pub duration_secs: f64,
    /// Seeds to average over (paper: 5 runs).
    pub seeds: Vec<u64>,
    /// Tick-engine worker threads (bit-identical at any setting; only
    /// wall-clock time changes).
    pub parallelism: usize,
}

impl Scale {
    /// The paper's full experiment size.
    pub fn full() -> Self {
        Scale {
            nodes: 19,
            services: 15,
            duration_secs: 3600.0,
            seeds: PAPER_SEEDS.to_vec(),
            parallelism: 4,
        }
    }

    /// A minutes-scale variant for development and CI.
    pub fn quick() -> Self {
        Scale {
            nodes: 8,
            services: 6,
            duration_secs: 1200.0,
            seeds: vec![101, 202, 303],
            parallelism: 2,
        }
    }

    /// A seconds-scale variant for criterion benches.
    pub fn bench() -> Self {
        Scale {
            nodes: 4,
            services: 3,
            duration_secs: 300.0,
            seeds: vec![101],
            parallelism: 1,
        }
    }

    /// Total worker CPU capacity in cores (4-core paper nodes).
    pub fn capacity_cores(&self) -> f64 {
        self.nodes as f64 * 4.0
    }
}

/// Scales a base load pattern so that the experiment's *peak* demand sits
/// at `peak_fraction` of the cluster's CPU capacity — the knob that keeps
/// quick and full runs equally stressed. Peaks around 85% are what the
/// paper's runs look like: saturating once the co-location overhead of an
/// over-replicating algorithm eats the margin, comfortable for one that
/// scales precisely.
fn sized_load(
    scale: &Scale,
    burst: Burst,
    cpu_secs_per_req: f64,
    peak_fraction: f64,
) -> LoadPattern {
    let base = match burst {
        Burst::Low => LoadPattern::low_burst(),   // peak 10 req/s
        Burst::High => LoadPattern::high_burst(), // peak 20 req/s
    };
    let peak_demand_cores = base.peak_rate() * cpu_secs_per_req * scale.services as f64;
    let factor = peak_fraction * scale.capacity_cores() / peak_demand_cores;
    base.scaled(factor)
}

/// Per-service demand multipliers: the paper runs "15 different
/// microservices", not 15 identical ones. Sizes span 0.5x-2x the mean
/// (normalized to sum to `n`), so the largest services need more than one
/// node at peak (horizontal-scaling territory) while the smallest fit
/// comfortably inside one (vertical-scaling territory).
pub fn service_weights(n: usize) -> Vec<f64> {
    if n <= 1 {
        return vec![1.0; n];
    }
    let raw: Vec<f64> = (0..n)
        .map(|i| 0.5 + 1.5 * i as f64 / (n as f64 - 1.0))
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w * n as f64 / sum).collect()
}

/// Figure 6: CPU-bound microservices.
///
/// Per-request demand 0.2 core-seconds; peak load sized to ~60% of raw
/// cluster CPU — comfortable for a precise scaler, tight once an
/// over-replicating algorithm's co-location overhead eats the margin.
pub fn cpu_bound(scale: &Scale, burst: Burst, algorithm: AlgorithmKind) -> ScenarioConfig {
    let cpu_per_req = 0.2;
    let load = sized_load(scale, burst, cpu_per_req, 0.60);
    let weights = service_weights(scale.services);
    let mut builder = ScenarioBuilder::new(format!("fig6-{}-{algorithm}", burst.label()))
        .nodes(scale.nodes)
        .duration_secs(scale.duration_secs)
        .parallelism(scale.parallelism)
        .algorithm(algorithm);
    for (i, weight) in weights.iter().enumerate() {
        let mut spec =
            ServiceSpec::synthetic(i as u32, ServiceProfile::CpuBound, load.scaled(*weight))
                // Responses carry ~0.5 Mb, so egress tracks request rate and
                // the network scaler has a correlated (if indirect) signal.
                .with_demands(cpu_per_req, MemMb(2.0), 0.5);
        // A CPU experiment: give containers ample memory so the only
        // scarce resource is CPU.
        spec.container = spec.container.clone().with_mem_limit(MemMb(512.0));
        spec.container.net_request = Mbps(10.0);
        builder = builder.service(spec);
    }
    builder.build()
}

/// Figure 7: mixed CPU+memory microservices.
///
/// Each in-flight request additionally holds 8 MB and each served req/s of throughput ~14 MB of working set, so queue buildup
/// during bursts overflows the 256 MB default limit unless an algorithm
/// raises it (HyScaleCPU+Mem) or incidentally adds replicas-with-memory
/// (Kubernetes) — the paper's Fig. 7 inversion.
pub fn mixed(scale: &Scale, burst: Burst, algorithm: AlgorithmKind) -> ScenarioConfig {
    let cpu_per_req = 0.12;
    let load = sized_load(scale, burst, cpu_per_req, 0.55);
    let weights = service_weights(scale.services);
    let mut builder = ScenarioBuilder::new(format!("fig7-{}-{algorithm}", burst.label()))
        .nodes(scale.nodes)
        .duration_secs(scale.duration_secs)
        .parallelism(scale.parallelism)
        .algorithm(algorithm);
    for (i, weight) in weights.iter().enumerate() {
        let mut spec =
            ServiceSpec::synthetic(i as u32, ServiceProfile::Mixed, load.scaled(*weight))
                .with_demands(cpu_per_req, MemMb(8.0), 0.2);
        // Mixed services carry a rate-proportional working set (caches,
        // session state): 14 MB per served req/s. A single replica serving
        // a whole service's peak blows past the 256 MB default limit; the
        // same rate split over Kubernetes' replicas stays under it. A
        // modest socket backlog keeps a swapping replica's resident set
        // bounded: overflow surfaces as fast connection failures (the
        // paper's failure class) rather than an unbounded swap spiral.
        spec.container = spec
            .container
            .clone()
            .with_mem_per_rps(MemMb(14.0))
            .with_queue_cap(64);
        builder = builder.service(spec);
    }
    builder.build()
}

/// Figure 8: network-bound microservices.
///
/// Every worker NIC is 250 Mb/s; each request pushes 8 Mb of egress and
/// costs only 0.02 core-seconds of CPU (the "moderate use of CPU caused
/// by networking system calls" that lets the CPU scalers limp along on
/// low-burst loads). Bursts saturate a single replica's transmit queues;
/// only the network scaler reads the right signal.
pub fn network(scale: &Scale, burst: Burst, algorithm: AlgorithmKind) -> ScenarioConfig {
    let megabits_per_req = 8.0;
    // One shared sizing for both bursts, anchored on the low-burst peak:
    // the average service peaks at ~38% of one NIC on the stable load
    // (every algorithm copes without scaling), while the high-burst
    // spikes reach twice that — past a single NIC for the larger
    // services, fixable only by replicating onto other machines' NICs.
    // The per-request CPU cost is tiny, so the CPU-driven scalers barely
    // see the overload.
    let nic = 250.0;
    let factor = 0.38 * nic / (10.0 * megabits_per_req);
    let base = match burst {
        Burst::Low => LoadPattern::low_burst(),
        Burst::High => LoadPattern::high_burst(),
    };
    let load = base.scaled(factor);

    let mut builder = ScenarioBuilder::new(format!("fig8-{}-{algorithm}", burst.label()))
        .nodes_with_spec(scale.nodes, NodeSpec::uniform_worker().with_nic(Mbps(nic)))
        .duration_secs(scale.duration_secs)
        .parallelism(scale.parallelism)
        .algorithm(algorithm);
    let weights = service_weights(scale.services);
    for (i, weight) in weights.iter().enumerate() {
        builder = builder.service(
            ServiceSpec::synthetic(i as u32, ServiceProfile::NetBound, load.scaled(*weight))
                .with_demands(0.01, MemMb(4.0), megabits_per_req),
        );
    }
    builder.build()
}

/// Chaos: the CPU-bound high-burst experiment under a seeded storm of
/// infrastructure faults — node crashes (with reboot), OOM-kills, NIC
/// degradations, and NodeManager stat outages.
///
/// The paper's robustness claim (availability ≥ 99.8%, Figs. 6–8) is
/// measured with the cluster intact; this scenario stresses the platform
/// side of that claim: the Monitor's roll call must notice dead replicas
/// and the recovery path must respawn them while the burst load is still
/// arriving. Reports uptime %, MTTR, and recovery counts per algorithm.
pub fn chaos(scale: &Scale, algorithm: AlgorithmKind) -> ScenarioConfig {
    let mut config = cpu_bound(scale, Burst::High, algorithm);
    config.name = format!("chaos-{algorithm}");
    let plan_cfg = FaultPlanConfig {
        horizon_secs: scale.duration_secs,
        nodes: scale.nodes,
        services: scale.services,
        node_crashes: (scale.nodes / 4).max(1),
        oom_kills: (scale.services / 2).max(1),
        nic_degradations: (scale.nodes / 6).max(1),
        stat_outages: (scale.nodes / 4).max(1),
        min_down_secs: scale.duration_secs * 0.02,
        max_down_secs: scale.duration_secs * 0.08,
    };
    // The fault storm is part of the experiment definition: fixed seed,
    // independent of the run seeds (the bitbrains trace does the same),
    // so every algorithm faces the identical sequence of disasters.
    config.faults = FaultPlan::random(&plan_cfg, &mut SimRng::seed_from(0xFA17));
    config
}

/// Chaos-control: the chaos experiment run through an *unreliable
/// control plane* — Node Manager reports are lost/delayed/duplicated and
/// scaling actuations fail, on top of the infrastructure fault storm.
///
/// Both arms run the control-plane layer (snapshot-mode balancer,
/// staleness vetoes, safe-mode quorum, actuation retries) so the only
/// difference between them is the degradation itself: the `degraded`
/// arm adds 5% report loss, 10% delay up to 2 periods, 2% duplication,
/// and 5% actuation failure; the healthy arm's link is perfect. The
/// `chaos_control` bench bin compares SLO violations and availability
/// across the two arms for all four algorithms.
pub fn chaos_control(scale: &Scale, algorithm: AlgorithmKind, degraded: bool) -> ScenarioConfig {
    let mut config = chaos(scale, algorithm);
    let arm = if degraded { "degraded" } else { "healthy" };
    config.name = format!("chaos-control-{arm}-{algorithm}");
    config.control_plane = if degraded {
        ControlPlaneConfig::degraded()
    } else {
        ControlPlaneConfig {
            enabled: true,
            ..ControlPlaneConfig::perfect()
        }
    };
    config
}

/// Graph: the CPU-bound low-burst experiment rewired as a three-tier
/// call graph (frontends → aggregators → backends).
///
/// Client load attaches only to the frontend tier; every other tier sees
/// purely derived traffic. Each frontend request fans out to two requests
/// on every aggregator (half the CPU cost — routing, not computing), and
/// each aggregator request issues one request per backend (a quarter of
/// the CPU but twice the egress — the data-heavy tier). The `graph`
/// bench bin reports per-entry-point end-to-end p95/p99 on top of the
/// usual per-hop metrics, which no independent-services scenario can
/// attribute.
pub fn graph(scale: &Scale, algorithm: AlgorithmKind) -> ScenarioConfig {
    let mut config = cpu_bound(scale, Burst::Low, algorithm);
    config.name = format!("graph-{algorithm}");
    let n = config.services.len();
    assert!(n >= 3, "the graph scenario needs at least three services");
    // Tier sizes: n/3 frontends, n/3 aggregators, the rest backends.
    let fronts = (n / 3).max(1);
    let mids = (n / 3).max(1);
    let mut g = ServiceGraph::new(n);
    for f in 0..fronts {
        for m in fronts..fronts + mids {
            g = g.with_edge_spec(GraphEdge::new(f, m, 2).with_costs(0.5, 1.0));
        }
    }
    for m in fronts..fronts + mids {
        for b in fronts + mids..n {
            g = g.with_edge_spec(GraphEdge::new(m, b, 1).with_costs(0.25, 2.0));
        }
    }
    config.graph = Some(g);
    config
}

/// Retry storm: the three-tier call graph under a seeded fault storm,
/// with per-hop retries enabled — in two arms that differ only in their
/// brakes.
///
/// Both arms retry queue aborts and infrastructure deaths with the same
/// exponential backoff. The *unbudgeted* arm retries with no brake at
/// all (no token budget, no deadline, no shedding): every burst of
/// failures multiplies into fresh load on the already-struggling tier,
/// so an ever-larger share of the work that does complete belongs to
/// roots that ultimately fail anyway — the goodput collapse. The
/// *budgeted* arm caps retries at 10% of completions per service,
/// bounds every root to a 30 s end-to-end deadline, and sheds new
/// client roots at the entry points once in-flight work passes a
/// capacity-proportional watermark — giving up a little edge
/// availability to keep the completed work useful.
///
/// Tight container queues (cap 24) turn overload into fast, retryable
/// queue aborts rather than long waits, and the chaos-style fault storm
/// supplies mid-flight infrastructure deaths; both failure kinds feed
/// the retry loop.
pub fn retry_storm(scale: &Scale, algorithm: AlgorithmKind, budgeted: bool) -> ScenarioConfig {
    let mut config = graph(scale, algorithm);
    let arm = if budgeted { "budgeted" } else { "unbudgeted" };
    config.name = format!("retry-storm-{arm}-{algorithm}");
    for spec in &mut config.services {
        // Push the client load past saturation at peak (the graph base
        // sizes peaks at 60% of capacity; 1.8x lands them at 108%) so
        // bursts already queue without faults and the crash windows
        // leave no spare capacity at all to absorb retries.
        spec.load = spec.load.scaled(1.8);
        spec.container = spec.container.clone().with_queue_cap(24);
    }
    let plan_cfg = FaultPlanConfig {
        horizon_secs: scale.duration_secs,
        nodes: scale.nodes,
        services: scale.services,
        // Harsher than `chaos`: a third of the nodes crash and stay
        // down long enough for the backlog (and the retry echo of it)
        // to build.
        node_crashes: (scale.nodes / 3).max(2),
        oom_kills: (scale.services / 2).max(1),
        nic_degradations: (scale.nodes / 6).max(1),
        stat_outages: (scale.nodes / 4).max(1),
        min_down_secs: scale.duration_secs * 0.05,
        max_down_secs: scale.duration_secs * 0.15,
    };
    // Fixed storm seed, independent of the run seeds: every algorithm
    // and both arms face the identical sequence of disasters.
    config.faults = FaultPlan::random(&plan_cfg, &mut SimRng::seed_from(0x570A));
    let policy = RetryPolicy::standard().with_max_attempts(5);
    config.resilience = if budgeted {
        ResilienceConfig::with_policy(policy)
            .with_root_budget_secs(30.0)
            .with_budget(10.0, 64.0)
            .with_shed_watermark((scale.capacity_cores() * 4.0) as u64)
    } else {
        ResilienceConfig::with_policy(policy)
    };
    config
}

/// Figures 9–10: the Bitbrains `Rnd` replay.
///
/// The synthetic GWA-T-12-like trace (see `hyscale-workload::bitbrains`)
/// provides per-service demand shapes; services are mixed CPU+memory, as
/// the paper observes the trace "exhibits the same behaviour as the
/// low-burst mix and high-burst mix workloads".
pub fn bitbrains(scale: &Scale, algorithm: AlgorithmKind) -> ScenarioConfig {
    let trace_cfg = SyntheticTrace {
        vms: scale.services * 4,
        duration_secs: scale.duration_secs,
        interval_secs: 15.0,
        ..SyntheticTrace::default()
    };
    // The trace itself is part of the experiment definition: fixed seed,
    // independent of the run seeds.
    let traces = trace_cfg.generate(&mut SimRng::seed_from(0xB17B));

    let cpu_per_req = 0.12;
    // A service at 100% trace CPU should drive roughly the same demand as
    // a fig-7 service at peak: rate_at_full_load chosen against capacity.
    let rate_at_full = 1.1 * scale.capacity_cores() / (cpu_per_req * scale.services as f64);

    let mut builder = ScenarioBuilder::new(format!("fig10-{algorithm}"))
        .nodes(scale.nodes)
        .duration_secs(scale.duration_secs)
        .parallelism(scale.parallelism)
        .algorithm(algorithm);
    for i in 0..scale.services {
        let slice: Vec<_> = traces.iter().skip(i).step_by(scale.services).collect();
        let len = slice.iter().map(|t| t.samples.len()).min().unwrap_or(0);
        let mean_cpu: Vec<f64> = (0..len)
            .map(|s| {
                slice
                    .iter()
                    .map(|t| t.samples[s].cpu_usage_pct)
                    .sum::<f64>()
                    / slice.len() as f64
            })
            .collect();
        let load = trace_to_load_pattern(&mean_cpu, trace_cfg.interval_secs, rate_at_full);
        let mut spec = ServiceSpec::synthetic(i as u32, ServiceProfile::Mixed, load).with_demands(
            cpu_per_req,
            MemMb(24.0),
            0.2,
        );
        spec.container = spec.container.clone().with_queue_cap(64);
        builder = builder.service(spec);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_sane_shapes() {
        let full = Scale::full();
        assert_eq!(full.nodes, 19);
        assert_eq!(full.services, 15);
        assert_eq!(full.seeds.len(), 5);
        assert_eq!(full.capacity_cores(), 76.0);
        assert!(Scale::quick().duration_secs < full.duration_secs);
        assert!(Scale::bench().nodes < Scale::quick().nodes);
    }

    #[test]
    fn scenarios_validate() {
        let scale = Scale::bench();
        for kind in AlgorithmKind::ALL {
            for burst in [Burst::Low, Burst::High] {
                cpu_bound(&scale, burst, kind).validate().unwrap();
                mixed(&scale, burst, kind).validate().unwrap();
                network(&scale, burst, kind).validate().unwrap();
            }
            bitbrains(&scale, kind).validate().unwrap();
            graph(&scale, kind).validate().unwrap();
        }
    }

    #[test]
    fn graph_scenario_has_three_tiers() {
        let config = graph(&Scale::bench(), AlgorithmKind::HyScaleCpu);
        let g = config.graph.as_ref().expect("graph scenario sets a graph");
        assert_eq!(g.nodes(), config.services.len());
        // bench scale: 3 services => one per tier, chained 0 -> 1 -> 2.
        assert_eq!(g.entry_points(), vec![0]);
        assert!(!g.is_trivial());
        assert!(g.is_entry(0) && !g.is_entry(1) && !g.is_entry(2));
        // The quick scale (6 services) keeps a frontend tier of two.
        let wide = graph(&Scale::quick(), AlgorithmKind::HyScaleCpu);
        assert_eq!(wide.graph.as_ref().unwrap().entry_points(), vec![0, 1]);
    }

    #[test]
    fn load_sizing_tracks_capacity() {
        // The quick and full cpu-bound scenarios should put the same mean
        // demand fraction on their clusters.
        let frac = |scale: &Scale| {
            let config = cpu_bound(scale, Burst::Low, AlgorithmKind::Kubernetes);
            let mean_rate: f64 = config
                .services
                .iter()
                .map(|s| match &s.load {
                    LoadPattern::Wave {
                        base, amplitude, ..
                    } => base + amplitude / 2.0,
                    _ => panic!("expected wave"),
                })
                .sum();
            mean_rate * 0.2 / scale.capacity_cores()
        };
        let quick = frac(&Scale::quick());
        let full = frac(&Scale::full());
        assert!((quick - full).abs() < 1e-9, "quick {quick} vs full {full}");
        // Peak sized to 85% of capacity => mean of the wave (7/10 of
        // peak) sits at 59.5%.
        // Peak sized to 60% of capacity => wave mean (7/10 of peak) at 42%.
        assert!((quick - 0.42).abs() < 1e-9, "fraction {quick}");
    }

    #[test]
    fn service_weights_are_normalized_and_spread() {
        let w = service_weights(6);
        assert_eq!(w.len(), 6);
        let sum: f64 = w.iter().sum();
        assert!((sum - 6.0).abs() < 1e-9);
        assert!(w[5] / w[0] > 3.0, "largest should be ~4x the smallest");
        assert_eq!(service_weights(1), vec![1.0]);
        assert!(service_weights(0).is_empty());
    }

    #[test]
    fn chaos_has_a_deterministic_nonempty_fault_plan() {
        let a = chaos(&Scale::bench(), AlgorithmKind::HyScaleCpu);
        let b = chaos(&Scale::bench(), AlgorithmKind::Kubernetes);
        assert!(!a.faults.is_empty());
        // Every algorithm faces the identical fault storm.
        assert_eq!(a.faults, b.faults);
        a.validate().unwrap();
        // Scale-proportional fault counts: bench (4 nodes, 3 services)
        // schedules 1 crash + 1 OOM + 1 NIC + 1 outage.
        assert_eq!(a.faults.len(), 4);
    }

    #[test]
    fn chaos_control_arms_differ_only_in_the_control_plane() {
        let scale = Scale::bench();
        let healthy = chaos_control(&scale, AlgorithmKind::HyScaleCpu, false);
        let degraded = chaos_control(&scale, AlgorithmKind::HyScaleCpu, true);
        healthy.validate().unwrap();
        degraded.validate().unwrap();
        assert!(healthy.control_plane.enabled);
        assert!(degraded.control_plane.enabled);
        assert_eq!(healthy.control_plane.loss_prob, 0.0);
        assert!(degraded.control_plane.loss_prob > 0.0);
        // Same fault storm underneath both arms.
        assert_eq!(healthy.faults, degraded.faults);
        assert!(healthy.name.contains("healthy"));
        assert!(degraded.name.contains("degraded"));
    }

    #[test]
    fn retry_storm_arms_differ_only_in_the_brakes() {
        let scale = Scale::bench();
        let loose = retry_storm(&scale, AlgorithmKind::HyScaleCpu, false);
        let tight = retry_storm(&scale, AlgorithmKind::HyScaleCpu, true);
        loose.validate().unwrap();
        tight.validate().unwrap();
        // Both arms retry with the same policy over the same storm...
        assert!(loose.resilience.enabled && tight.resilience.enabled);
        assert_eq!(
            loose.resilience.default_policy,
            tight.resilience.default_policy
        );
        assert_eq!(loose.faults, tight.faults);
        assert!(!loose.faults.is_empty());
        assert!(loose.graph.is_some());
        // ...but only the budgeted arm has brakes.
        assert!(!loose.resilience.has_retry_budget());
        assert!(!loose.resilience.has_root_budget());
        assert_eq!(loose.resilience.shed_watermark, 0);
        assert!(tight.resilience.has_retry_budget());
        assert!(tight.resilience.has_root_budget());
        assert!(tight.resilience.shed_watermark > 0);
        assert!(loose.name.contains("unbudgeted"));
        assert!(tight.name.contains("-budgeted"));
    }

    #[test]
    fn burst_labels() {
        assert_eq!(Burst::Low.label(), "low-burst");
        assert_eq!(Burst::High.label(), "high-burst");
    }

    #[test]
    fn bitbrains_trace_is_deterministic() {
        let a = bitbrains(&Scale::bench(), AlgorithmKind::HyScaleCpuMem);
        let b = bitbrains(&Scale::bench(), AlgorithmKind::HyScaleCpuMem);
        assert_eq!(a.services.len(), b.services.len());
        for (x, y) in a.services.iter().zip(&b.services) {
            assert_eq!(x.load, y.load);
        }
    }
}
