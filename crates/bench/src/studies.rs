//! The Section III manual scaling studies (Figs. 2–3 and the unplotted
//! memory study).
//!
//! These experiments bypass the autoscalers entirely: fixed allocations,
//! fixed replica counts, a fixed batch of 640 client requests (the
//! paper's setup), equal *aggregate* resources across scenarios, and an
//! antagonist (progrium-stress stand-in) contending on every machine.

use hyscale_cluster::{
    Cluster, ClusterConfig, ContainerSpec, Cores, Mbps, MemMb, NodeSpec, OverheadModel, Request,
    ServiceId,
};
use hyscale_sim::{SimDuration, SimTime};

/// Result of one manual-scaling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyPoint {
    /// Replica count of the scenario.
    pub replicas: usize,
    /// Mean response time over the batch, seconds.
    pub mean_response_secs: f64,
    /// Time until the whole batch drained, seconds.
    pub makespan_secs: f64,
    /// Requests that failed (timeout); should be zero in these studies.
    pub failed: usize,
}

/// Ticks the cluster until every in-flight request drains (or `max_secs`
/// passes) and returns (mean response seconds, makespan seconds, failed).
fn drain(cluster: &mut Cluster, max_secs: f64) -> (f64, f64, usize) {
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    let horizon = SimTime::from_secs(max_secs);
    let mut sum_rt = 0.0;
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut makespan = 0.0;
    while now < horizon {
        let report = cluster.advance(now, dt);
        for done in report.completed {
            sum_rt += done.response_time.as_secs();
            completed += 1;
            makespan = done.finished.as_secs();
        }
        failed += report.failed.len();
        now += dt;
        if cluster.containers().all(|c| c.in_flight_count() == 0) {
            break;
        }
    }
    let mean = if completed > 0 {
        sum_rt / completed as f64
    } else {
        0.0
    };
    (mean, makespan, failed)
}

/// Figure 2: CPU scaling. `replicas` microservice instances spread over
/// `replicas` 4-core machines, with the *aggregate* CPU share held at
/// `total_share` cores; every machine also runs a progrium-stress
/// antagonist consuming the rest. 640 requests are issued up front and
/// the batch is drained.
///
/// Vertical scaling is the `replicas = 1` point; the paper's finding is
/// that response times *rise* with the replica count because each replica
/// adds application (JVM) overhead, co-location contention, and
/// distribution cost.
pub fn fig2_cpu_point(replicas: usize, total_share: f64) -> StudyPoint {
    assert!(replicas >= 1, "need at least one replica");
    let mut cluster = Cluster::new(ClusterConfig {
        overheads: OverheadModel {
            // The paper attributes most horizontal overhead to the
            // application runtime; keep the default contention and a
            // visible fan-out term.
            fanout_latency_alpha: 0.02,
            ..OverheadModel::default()
        },
        ..ClusterConfig::default()
    });
    let svc = ServiceId::new(0);
    let per_replica = total_share / replicas as f64;
    let requests_per_replica = 640 / replicas;

    for _ in 0..replicas {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        // The microservice replica with its share of the aggregate.
        let ctr = cluster
            .start_container(
                node,
                ContainerSpec::new(svc)
                    .with_cpu_request(Cores(per_replica))
                    .with_mem_limit(MemMb(2048.0))
                    // JVM-like per-replica runtime tax (Sec. III-A).
                    .with_base_overhead(Cores(0.08), MemMb(128.0))
                    .with_queue_cap(1024)
                    .with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .expect("start replica");
        // progrium-stress hogging the rest of the machine.
        cluster
            .start_container(
                node,
                ContainerSpec::new(ServiceId::new(99))
                    .with_cpu_request(Cores(4.0 - per_replica))
                    .with_startup_secs(0.0)
                    .antagonist(),
                SimTime::ZERO,
            )
            .expect("start antagonist");
        for _ in 0..requests_per_replica {
            let request = Request::new(svc, SimTime::ZERO, 0.05, MemMb(1.0), 0.0)
                .with_timeout(SimDuration::from_secs(3600.0));
            cluster
                .admit_request(ctr, request, SimTime::ZERO)
                .expect("admit");
        }
    }

    let (mean, makespan, failed) = drain(&mut cluster, 3600.0);
    StudyPoint {
        replicas,
        mean_response_secs: mean,
        makespan_secs: makespan,
        failed,
    }
}

/// Figure 3: network scaling at a fixed total bandwidth of 100 Mb/s.
/// `replicas` replicas each hold a `tc` cap of `100/replicas` Mb/s on
/// their own machine; 640 concurrent transfer streams (the paper's client
/// requests running iperf) are spread across them. On few machines the
/// streams contend for the transmit queues and the microservice cannot
/// even reach its `tc` allocation; spreading relieves the queues until
/// the 100 Mb/s aggregate cap binds (tapering around 8 replicas).
pub fn fig3_net_point(replicas: usize) -> StudyPoint {
    assert!(replicas >= 1, "need at least one replica");
    let mut cluster = Cluster::new(ClusterConfig {
        overheads: OverheadModel {
            txq_contention_coeff: 2.0,
            ..OverheadModel::default()
        },
        ..ClusterConfig::default()
    });
    let svc = ServiceId::new(0);
    let cap = Mbps(100.0 / replicas as f64);
    let requests_per_replica = 640 / replicas;

    for _ in 0..replicas {
        let node = cluster.add_node(NodeSpec::uniform_worker().with_nic(Mbps(300.0)));
        let ctr = cluster
            .start_container(
                node,
                ContainerSpec::new(svc)
                    .with_net_cap(cap)
                    .with_mem_limit(MemMb(2048.0))
                    .with_queue_cap(1024)
                    // iperf opens one real kernel flow per stream.
                    .with_net_flow_pool(None)
                    .with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .expect("start replica");
        for _ in 0..requests_per_replica {
            // A bulk 2-megabit transfer per stream, negligible CPU.
            let request = Request::new(svc, SimTime::ZERO, 0.0, MemMb(1.0), 2.0)
                .with_timeout(SimDuration::from_secs(36000.0));
            cluster
                .admit_request(ctr, request, SimTime::ZERO)
                .expect("admit");
        }
    }

    let (mean, makespan, failed) = drain(&mut cluster, 36000.0);
    StudyPoint {
        replicas,
        mean_response_secs: mean,
        makespan_secs: makespan,
        failed,
    }
}

/// Section III-B memory study: equal aggregate memory (`total_mb`),
/// split over `replicas` replicas; each in-flight request holds
/// `mem_per_req_mb`. Horizontal replicas each pay the container/JVM base
/// memory, so the same aggregate limit swaps earlier when split.
pub fn mem_point(
    replicas: usize,
    total_mb: f64,
    concurrent: usize,
    mem_per_req_mb: f64,
) -> StudyPoint {
    assert!(replicas >= 1, "need at least one replica");
    let mut cluster = Cluster::new(ClusterConfig::default());
    let svc = ServiceId::new(0);
    let per_replica_limit = total_mb / replicas as f64;
    let per_replica_requests = concurrent / replicas;

    for _ in 0..replicas {
        let node = cluster.add_node(NodeSpec::uniform_worker());
        let ctr = cluster
            .start_container(
                node,
                ContainerSpec::new(svc)
                    .with_cpu_request(Cores(4.0))
                    .with_mem_limit(MemMb(per_replica_limit))
                    .with_base_overhead(Cores(0.02), MemMb(64.0))
                    .with_queue_cap(1024)
                    .with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .expect("start replica");
        for _ in 0..per_replica_requests {
            let request = Request::new(svc, SimTime::ZERO, 0.5, MemMb(mem_per_req_mb), 0.0)
                .with_timeout(SimDuration::from_secs(3600.0));
            cluster
                .admit_request(ctr, request, SimTime::ZERO)
                .expect("admit");
        }
    }

    let (mean, makespan, failed) = drain(&mut cluster, 3600.0);
    StudyPoint {
        replicas,
        mean_response_secs: mean,
        makespan_secs: makespan,
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_vertical_beats_horizontal() {
        let one = fig2_cpu_point(1, 2.0);
        let four = fig2_cpu_point(4, 2.0);
        let eight = fig2_cpu_point(8, 2.0);
        assert_eq!(one.failed + four.failed + eight.failed, 0);
        assert!(
            one.mean_response_secs < four.mean_response_secs,
            "1: {:.2}s vs 4: {:.2}s",
            one.mean_response_secs,
            four.mean_response_secs
        );
        assert!(four.mean_response_secs < eight.mean_response_secs);
    }

    #[test]
    fn fig3_horizontal_wins_then_tapers() {
        let one = fig3_net_point(1);
        let four = fig3_net_point(4);
        let eight = fig3_net_point(8);
        let sixteen = fig3_net_point(16);
        assert!(one.mean_response_secs > four.mean_response_secs * 1.5);
        assert!(four.mean_response_secs > eight.mean_response_secs);
        // Tapering: 8 -> 16 improves far less than 4 -> 8 (relative).
        let gain_48 = four.mean_response_secs / eight.mean_response_secs;
        let gain_816 = eight.mean_response_secs / sixteen.mean_response_secs;
        assert!(
            gain_816 < gain_48,
            "gain 4->8 {gain_48:.2} vs 8->16 {gain_816:.2}"
        );
    }

    #[test]
    fn memory_split_swaps_earlier() {
        // Aggregate 512 MB; 4 concurrent 110 MB requests. Vertical:
        // 64 base + 440 = 504 < 512, no swap. Split over 2: each replica
        // holds 64 base + 220 = 284 > 256 -> swap, and swap dominates.
        // (Concurrency <= cores/node so CPU gives every request one core
        // in both scenarios; only memory differs.)
        let vertical = mem_point(1, 512.0, 4, 110.0);
        let split = mem_point(2, 512.0, 4, 110.0);
        assert_eq!(vertical.failed + split.failed, 0);
        assert!(
            split.mean_response_secs > vertical.mean_response_secs * 2.0,
            "vertical {:.2}s vs split {:.2}s",
            vertical.mean_response_secs,
            split.mean_response_secs
        );
    }

    #[test]
    fn memory_equal_when_not_swapping() {
        // Plenty of headroom in both scenarios: near-equal response times
        // (paper: "negligible differences ... between vertical and
        // horizontal scaling scenarios" when not swapping).
        let vertical = mem_point(1, 4096.0, 4, 40.0);
        let split = mem_point(2, 4096.0, 4, 40.0);
        let ratio = split.mean_response_secs / vertical.mean_response_secs;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }
}
