//! Declarative experiment configs: a hand-rolled, dependency-free parser
//! for a TOML-like text format describing weighted scenario mixes, rps
//! ramps, and algorithm matrices, plus the expansion of one parsed spec
//! into the concrete [`ScenarioConfig`] grid the `experiment` binary
//! runs.
//!
//! The grammar is a strict subset of TOML:
//!
//! * `[experiment]`, `[ramp]`, `[retry]`, `[snapshot]` — singleton
//!   sections;
//! * `[[scenario]]` — repeatable, one per workload class in the mix;
//! * `key = value` lines where a value is a number, a `"quoted string"`,
//!   or a `["list", "of", "strings"]`;
//! * `#` comments (full-line or trailing) and blank lines.
//!
//! Every parse failure is a descriptive [`ConfigError`] carrying the
//! 1-based line number — malformed input must never panic.

use std::fmt;
use std::path::PathBuf;

use hyscale_core::{AlgorithmKind, ResilienceConfig, ScenarioBuilder, ScenarioConfig};
use hyscale_workload::{LoadPattern, RetryPolicy, ServiceGraph, ServiceProfile, ServiceSpec};

/// A parse or validation failure, pointing at the offending line
/// (`line == 0` for file-level problems such as a missing section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number, or 0 when no single line is to blame.
    pub line: usize,
    /// Human-readable description of what is wrong.
    pub message: String,
}

impl ConfigError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ConfigError {
            line,
            message: message.into(),
        }
    }

    fn file(message: impl Into<String>) -> Self {
        ConfigError::at(0, message)
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

/// The rps ramp: total offered load starts at `initial_rps` and rises by
/// `increment_rps` per step until it would exceed `max_rps`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ramp {
    /// Offered load of the first step, requests/s across the whole mix.
    pub initial_rps: f64,
    /// Additive step size, requests/s.
    pub increment_rps: f64,
    /// Inclusive ceiling on the offered load.
    pub max_rps: f64,
}

impl Ramp {
    /// The concrete rps steps the ramp expands to.
    pub fn steps(&self) -> Vec<f64> {
        let mut steps = Vec::new();
        let mut rps = self.initial_rps;
        while rps <= self.max_rps + 1e-9 {
            steps.push(rps);
            rps += self.increment_rps;
        }
        steps
    }
}

/// One workload class in the weighted mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMix {
    /// Human-readable class name (becomes the service name).
    pub name: String,
    /// Share of the total offered load, in percent. All weights in a
    /// spec sum to exactly 100.
    pub weight: u32,
    /// The resource flavour of the class.
    pub profile: ServiceProfile,
}

/// Optional request-resilience layer applied to every run in the grid:
/// per-hop retries with the standard backoff, a per-service retry
/// budget, and admission shedding. Services in the mix become graph
/// entry points (an edge-free service graph) so retries act on
/// admission failures and shedding acts on client roots.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrySpec {
    /// Total delivery attempts per hop (first try + retries).
    pub max_attempts: u32,
    /// Retry budget as a percentage of successful completions
    /// (`0` = unlimited retries).
    pub budget_pct: f64,
    /// Shed new client roots once a service's in-flight member count
    /// reaches this watermark (`0` = shedding off).
    pub shed_watermark: u64,
}

/// Optional snapshotting of every run in the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSpec {
    /// Snapshot cadence in ticks.
    pub every_ticks: u64,
    /// Root directory; each run snapshots into its own subdirectory.
    pub dir: String,
}

/// A fully parsed and validated experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (used in run labels and the results file).
    pub name: String,
    /// Base RNG seed shared by every run in the grid.
    pub seed: u64,
    /// Simulated duration per run, seconds.
    pub duration_secs: f64,
    /// Autoscaler decision period, seconds.
    pub scale_period_secs: f64,
    /// Worker node count.
    pub nodes: usize,
    /// Replicas per service at t = 0.
    pub initial_replicas: usize,
    /// The algorithms to sweep (the matrix's first axis).
    pub algorithms: Vec<AlgorithmKind>,
    /// The rps ramp (the matrix's second axis).
    pub ramp: Ramp,
    /// The weighted scenario mix every run serves.
    pub scenarios: Vec<ScenarioMix>,
    /// Optional resilience layer (retries, budgets, shedding).
    pub retry: Option<RetrySpec>,
    /// Optional snapshotting policy applied to every run.
    pub snapshot: Option<SnapshotSpec>,
}

/// One cell of the experiment grid, ready to run.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Unique label, e.g. `sample-mix/hybrid/rps6`.
    pub label: String,
    /// The algorithm axis value.
    pub algorithm: AlgorithmKind,
    /// The offered-load axis value, requests/s.
    pub rps: f64,
    /// The concrete scenario.
    pub config: ScenarioConfig,
}

impl ExperimentSpec {
    /// Expands the spec into the full `algorithms × ramp steps` grid.
    pub fn runs(&self) -> Vec<ExperimentRun> {
        let mut runs = Vec::new();
        for &algorithm in &self.algorithms {
            for rps in self.ramp.steps() {
                let label = format!("{}/{}/rps{rps:.0}", self.name, algorithm.label());
                let mut builder = ScenarioBuilder::new(label.clone())
                    .nodes(self.nodes)
                    .duration_secs(self.duration_secs)
                    .scale_period_secs(self.scale_period_secs)
                    .initial_replicas(self.initial_replicas)
                    .algorithm(algorithm)
                    .seed(self.seed);
                for (index, mix) in self.scenarios.iter().enumerate() {
                    let rate = rps * f64::from(mix.weight) / 100.0;
                    let mut spec = ServiceSpec::synthetic(
                        index as u32,
                        mix.profile,
                        LoadPattern::Constant { rate },
                    );
                    spec.name = format!("{}-{}", mix.name, mix.profile);
                    builder = builder.service(spec);
                }
                if let Some(retry) = &self.retry {
                    // An edge-free graph makes every mix class an entry
                    // point, which is what the resilience layer hooks.
                    let mut resilience = ResilienceConfig::with_policy(
                        RetryPolicy::standard().with_max_attempts(retry.max_attempts),
                    )
                    .with_shed_watermark(retry.shed_watermark);
                    if retry.budget_pct > 0.0 {
                        // A fixed 32-member floor lets cold services
                        // retry before their first completions.
                        resilience = resilience.with_budget(retry.budget_pct, 32.0);
                    }
                    builder = builder
                        .graph(ServiceGraph::new(self.scenarios.len()))
                        .resilience(resilience);
                }
                if let Some(snap) = &self.snapshot {
                    let subdir = PathBuf::from(&snap.dir).join(label.replace('/', "_"));
                    builder = builder.snapshot_every(snap.every_ticks, subdir);
                }
                runs.push(ExperimentRun {
                    label,
                    algorithm,
                    rps,
                    config: builder.build(),
                });
            }
        }
        runs
    }
}

/// A parsed `key = value` right-hand side.
enum Value {
    Num(f64),
    Str(String),
    List(Vec<String>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "a number",
            Value::Str(_) => "a quoted string",
            Value::List(_) => "a list of strings",
        }
    }

    fn num(&self, key: &str, line: usize) -> Result<f64, ConfigError> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(ConfigError::at(
                line,
                format!("'{key}' must be a number, not {}", other.type_name()),
            )),
        }
    }

    fn integer(&self, key: &str, line: usize) -> Result<u64, ConfigError> {
        let n = self.num(key, line)?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(ConfigError::at(
                line,
                format!("'{key}' must be a non-negative integer, got {n}"),
            ));
        }
        Ok(n as u64)
    }

    fn string(&self, key: &str, line: usize) -> Result<String, ConfigError> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            other => Err(ConfigError::at(
                line,
                format!("'{key}' must be a quoted string, not {}", other.type_name()),
            )),
        }
    }

    fn list(&self, key: &str, line: usize) -> Result<Vec<String>, ConfigError> {
        match self {
            Value::List(items) => Ok(items.clone()),
            other => Err(ConfigError::at(
                line,
                format!(
                    "'{key}' must be a [\"...\"] list of strings, not {}",
                    other.type_name()
                ),
            )),
        }
    }
}

/// Strips a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ConfigError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(ConfigError::at(line, "missing value after '='"));
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(ConfigError::at(line, "unterminated string literal"));
        };
        if inner.contains('"') {
            return Err(ConfigError::at(
                line,
                "stray '\"' inside string literal (escapes are not supported)",
            ));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(ConfigError::at(line, "unterminated list (expected ']')"));
        };
        let inner = inner.trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in inner.split(',') {
                match parse_value(item, line)? {
                    Value::Str(s) => items.push(s),
                    other => {
                        return Err(ConfigError::at(
                            line,
                            format!(
                                "lists may only contain quoted strings, found {}",
                                other.type_name()
                            ),
                        ))
                    }
                }
            }
        }
        return Ok(Value::List(items));
    }
    raw.parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| {
            ConfigError::at(
                line,
                format!("expected a number, \"string\", or [\"...\"] list, got '{raw}'"),
            )
        })
}

fn parse_algorithm(label: &str, line: usize) -> Result<AlgorithmKind, ConfigError> {
    AlgorithmKind::ALL
        .iter()
        .copied()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = AlgorithmKind::ALL.iter().map(|k| k.label()).collect();
            ConfigError::at(
                line,
                format!(
                    "unknown algorithm '{label}' (expected one of {})",
                    known.join(", ")
                ),
            )
        })
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    None,
    Experiment,
    Ramp,
    Retry,
    Snapshot,
    Scenario,
}

#[derive(Default)]
struct ExperimentDraft {
    name: Option<String>,
    seed: Option<u64>,
    duration_secs: Option<f64>,
    scale_period_secs: Option<f64>,
    nodes: Option<u64>,
    initial_replicas: Option<u64>,
    algorithms: Option<Vec<AlgorithmKind>>,
}

#[derive(Default)]
struct RampDraft {
    /// Line of the `[ramp]` section header, for cross-field errors that
    /// have no single offending key line.
    line: usize,
    initial_rps: Option<f64>,
    increment_rps: Option<f64>,
    max_rps: Option<f64>,
}

#[derive(Default)]
struct RetryDraft {
    max_attempts: Option<u32>,
    budget_pct: Option<f64>,
    shed_watermark: Option<u64>,
}

#[derive(Default)]
struct SnapshotDraft {
    every_ticks: Option<u64>,
    dir: Option<String>,
}

#[derive(Default)]
struct ScenarioDraft {
    line: usize,
    name: Option<String>,
    weight: Option<u64>,
    profile: Option<ServiceProfile>,
}

fn require<T>(field: Option<T>, section: &str, key: &str, line: usize) -> Result<T, ConfigError> {
    field.ok_or_else(|| ConfigError::at(line, format!("{section} is missing required key '{key}'")))
}

fn positive(value: f64, key: &str, line: usize) -> Result<f64, ConfigError> {
    if value > 0.0 {
        Ok(value)
    } else {
        Err(ConfigError::at(
            line,
            format!("'{key}' must be positive, got {value}"),
        ))
    }
}

/// Parses and validates an experiment config.
///
/// # Errors
///
/// Returns a [`ConfigError`] naming the offending line for any syntax
/// error, unknown section/key, type mismatch, missing required key, or
/// failed cross-field validation (e.g. weights not summing to 100).
pub fn parse(text: &str) -> Result<ExperimentSpec, ConfigError> {
    let mut section = Section::None;
    let mut section_line = 0usize;
    let mut experiment: Option<ExperimentDraft> = None;
    let mut ramp: Option<RampDraft> = None;
    let mut retry: Option<RetryDraft> = None;
    let mut snapshot: Option<SnapshotDraft> = None;
    let mut scenarios: Vec<ScenarioDraft> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let content = strip_comment(raw_line).trim();
        if content.is_empty() {
            continue;
        }
        if let Some(header) = content.strip_prefix("[[") {
            let Some(name) = header.strip_suffix("]]") else {
                return Err(ConfigError::at(line, "malformed section header"));
            };
            match name.trim() {
                "scenario" => {
                    section = Section::Scenario;
                    section_line = line;
                    scenarios.push(ScenarioDraft {
                        line,
                        ..ScenarioDraft::default()
                    });
                }
                other => {
                    return Err(ConfigError::at(
                        line,
                        format!("unknown repeated section '[[{other}]]' (expected [[scenario]])"),
                    ))
                }
            }
            continue;
        }
        if let Some(header) = content.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(ConfigError::at(line, "malformed section header"));
            };
            section_line = line;
            section = match name.trim() {
                "experiment" => {
                    if experiment.is_some() {
                        return Err(ConfigError::at(line, "duplicate [experiment] section"));
                    }
                    experiment = Some(ExperimentDraft::default());
                    Section::Experiment
                }
                "ramp" => {
                    if ramp.is_some() {
                        return Err(ConfigError::at(line, "duplicate [ramp] section"));
                    }
                    ramp = Some(RampDraft {
                        line,
                        ..RampDraft::default()
                    });
                    Section::Ramp
                }
                "retry" => {
                    if retry.is_some() {
                        return Err(ConfigError::at(line, "duplicate [retry] section"));
                    }
                    retry = Some(RetryDraft::default());
                    Section::Retry
                }
                "snapshot" => {
                    if snapshot.is_some() {
                        return Err(ConfigError::at(line, "duplicate [snapshot] section"));
                    }
                    snapshot = Some(SnapshotDraft::default());
                    Section::Snapshot
                }
                other => {
                    return Err(ConfigError::at(
                        line,
                        format!(
                            "unknown section '[{other}]' \
                             (expected [experiment], [ramp], [retry], [snapshot], \
                             or [[scenario]])"
                        ),
                    ))
                }
            };
            continue;
        }
        let Some((key, value)) = content.split_once('=') else {
            return Err(ConfigError::at(
                line,
                format!("expected 'key = value' or a section header, got '{content}'"),
            ));
        };
        let key = key.trim();
        let value = parse_value(value, line)?;
        match section {
            Section::None => {
                return Err(ConfigError::at(
                    line,
                    format!("'{key}' appears before any section header"),
                ))
            }
            Section::Experiment => {
                let draft = experiment.as_mut().expect("section implies draft");
                match key {
                    "name" => draft.name = Some(value.string(key, line)?),
                    "seed" => draft.seed = Some(value.integer(key, line)?),
                    "duration_secs" => {
                        draft.duration_secs = Some(positive(value.num(key, line)?, key, line)?)
                    }
                    "scale_period_secs" => {
                        draft.scale_period_secs = Some(positive(value.num(key, line)?, key, line)?)
                    }
                    "nodes" => draft.nodes = Some(value.integer(key, line)?),
                    "initial_replicas" => draft.initial_replicas = Some(value.integer(key, line)?),
                    "algorithms" => {
                        let labels = value.list(key, line)?;
                        if labels.is_empty() {
                            return Err(ConfigError::at(line, "'algorithms' must not be empty"));
                        }
                        let mut kinds = Vec::new();
                        for label in &labels {
                            let kind = parse_algorithm(label, line)?;
                            if kinds.contains(&kind) {
                                return Err(ConfigError::at(
                                    line,
                                    format!("algorithm '{label}' listed twice"),
                                ));
                            }
                            kinds.push(kind);
                        }
                        draft.algorithms = Some(kinds);
                    }
                    other => {
                        return Err(ConfigError::at(
                            line,
                            format!("unknown key '{other}' in [experiment]"),
                        ))
                    }
                }
            }
            Section::Ramp => {
                let draft = ramp.as_mut().expect("section implies draft");
                match key {
                    "initial_rps" => {
                        draft.initial_rps = Some(positive(value.num(key, line)?, key, line)?)
                    }
                    "increment_rps" => {
                        draft.increment_rps = Some(positive(value.num(key, line)?, key, line)?)
                    }
                    "max_rps" => draft.max_rps = Some(positive(value.num(key, line)?, key, line)?),
                    other => {
                        return Err(ConfigError::at(
                            line,
                            format!("unknown key '{other}' in [ramp]"),
                        ))
                    }
                }
            }
            Section::Retry => {
                let draft = retry.as_mut().expect("section implies draft");
                match key {
                    "max_attempts" => {
                        let attempts = value.integer(key, line)?;
                        if attempts == 0 || attempts > 16 {
                            return Err(ConfigError::at(
                                line,
                                format!("'max_attempts' must be in 1..=16, got {attempts}"),
                            ));
                        }
                        draft.max_attempts = Some(attempts as u32);
                    }
                    "budget_pct" => {
                        let pct = value.num(key, line)?;
                        if !(pct.is_finite() && (0.0..=100.0).contains(&pct)) {
                            return Err(ConfigError::at(
                                line,
                                format!("'budget_pct' must be in 0..=100, got {pct}"),
                            ));
                        }
                        draft.budget_pct = Some(pct);
                    }
                    "shed_watermark" => draft.shed_watermark = Some(value.integer(key, line)?),
                    other => {
                        return Err(ConfigError::at(
                            line,
                            format!("unknown key '{other}' in [retry]"),
                        ))
                    }
                }
            }
            Section::Snapshot => {
                let draft = snapshot.as_mut().expect("section implies draft");
                match key {
                    "every_ticks" => {
                        let ticks = value.integer(key, line)?;
                        if ticks == 0 {
                            return Err(ConfigError::at(line, "'every_ticks' must be positive"));
                        }
                        draft.every_ticks = Some(ticks);
                    }
                    "dir" => draft.dir = Some(value.string(key, line)?),
                    other => {
                        return Err(ConfigError::at(
                            line,
                            format!("unknown key '{other}' in [snapshot]"),
                        ))
                    }
                }
            }
            Section::Scenario => {
                let draft = scenarios.last_mut().expect("section implies draft");
                match key {
                    "name" => draft.name = Some(value.string(key, line)?),
                    "weight" => draft.weight = Some(value.integer(key, line)?),
                    "profile" => {
                        let label = value.string(key, line)?;
                        draft.profile = Some(
                            label
                                .parse::<ServiceProfile>()
                                .map_err(|e| ConfigError::at(line, e))?,
                        );
                    }
                    other => {
                        return Err(ConfigError::at(
                            line,
                            format!("unknown key '{other}' in [[scenario]]"),
                        ))
                    }
                }
            }
        }
    }
    let _ = section_line;

    // Assemble + cross-validate.
    let Some(draft) = experiment else {
        return Err(ConfigError::file("missing required [experiment] section"));
    };
    let name = require(draft.name, "[experiment]", "name", 0)?;
    if name.is_empty() {
        return Err(ConfigError::file("'name' must not be empty"));
    }
    let Some(ramp_draft) = ramp else {
        return Err(ConfigError::file("missing required [ramp] section"));
    };
    let ramp_line = ramp_draft.line;
    let ramp = Ramp {
        initial_rps: require(ramp_draft.initial_rps, "[ramp]", "initial_rps", ramp_line)?,
        increment_rps: require(
            ramp_draft.increment_rps,
            "[ramp]",
            "increment_rps",
            ramp_line,
        )?,
        max_rps: require(ramp_draft.max_rps, "[ramp]", "max_rps", ramp_line)?,
    };
    // A staircase that starts above its own ceiling would run zero
    // steps; blame the [ramp] section header since no single key line
    // is wrong on its own.
    if ramp.max_rps + 1e-9 < ramp.initial_rps {
        return Err(ConfigError::at(
            ramp_line,
            format!(
                "'max_rps' ({}) must be at least 'initial_rps' ({})",
                ramp.max_rps, ramp.initial_rps
            ),
        ));
    }
    if scenarios.is_empty() {
        return Err(ConfigError::file(
            "at least one [[scenario]] section is required",
        ));
    }
    let mut mix = Vec::new();
    for draft in scenarios {
        let line = draft.line;
        let weight = require(draft.weight, "[[scenario]]", "weight", line)?;
        if weight == 0 || weight > 100 {
            return Err(ConfigError::at(
                line,
                format!("'weight' must be in 1..=100, got {weight}"),
            ));
        }
        mix.push(ScenarioMix {
            name: require(draft.name, "[[scenario]]", "name", line)?,
            weight: weight as u32,
            profile: require(draft.profile, "[[scenario]]", "profile", line)?,
        });
    }
    let total_weight: u32 = mix.iter().map(|m| m.weight).sum();
    if total_weight != 100 {
        return Err(ConfigError::file(format!(
            "scenario weights must sum to exactly 100, got {total_weight}"
        )));
    }
    let retry = retry.map(|draft| RetrySpec {
        max_attempts: draft.max_attempts.unwrap_or(3),
        budget_pct: draft.budget_pct.unwrap_or(10.0),
        shed_watermark: draft.shed_watermark.unwrap_or(0),
    });
    let snapshot = match snapshot {
        Some(draft) => Some(SnapshotSpec {
            every_ticks: require(draft.every_ticks, "[snapshot]", "every_ticks", 0)?,
            dir: require(draft.dir, "[snapshot]", "dir", 0)?,
        }),
        None => None,
    };
    let nodes = require(draft.nodes, "[experiment]", "nodes", 0)?;
    if nodes == 0 {
        return Err(ConfigError::file("'nodes' must be at least 1"));
    }
    Ok(ExperimentSpec {
        name,
        seed: draft.seed.unwrap_or(1),
        duration_secs: require(draft.duration_secs, "[experiment]", "duration_secs", 0)?,
        scale_period_secs: draft.scale_period_secs.unwrap_or(12.0),
        nodes: nodes as usize,
        initial_replicas: draft.initial_replicas.unwrap_or(1).max(1) as usize,
        algorithms: require(draft.algorithms, "[experiment]", "algorithms", 0)?,
        ramp,
        scenarios: mix,
        retry,
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The checked-in sample, kept in sync with `experiments/sample.toml`.
    pub(crate) const SAMPLE: &str = include_str!("../../../experiments/sample.toml");

    #[test]
    fn golden_sample_parses() {
        let spec = parse(SAMPLE).expect("sample config parses");
        assert_eq!(spec.name, "sample-mix");
        assert_eq!(spec.nodes, 4);
        assert_eq!(
            spec.algorithms,
            vec![AlgorithmKind::Kubernetes, AlgorithmKind::HyScaleCpu]
        );
        let weights: Vec<u32> = spec.scenarios.iter().map(|m| m.weight).collect();
        assert_eq!(weights, vec![80, 15, 5]);
        assert_eq!(spec.scenarios[0].profile, ServiceProfile::CpuBound);
        assert_eq!(spec.scenarios[1].profile, ServiceProfile::Mixed);
        assert_eq!(spec.scenarios[2].profile, ServiceProfile::NetBound);
        assert_eq!(spec.ramp.steps(), vec![2.0, 4.0, 6.0]);
        assert!(spec.snapshot.is_some());
        assert_eq!(
            spec.retry,
            Some(RetrySpec {
                max_attempts: 3,
                budget_pct: 10.0,
                shed_watermark: 0,
            })
        );
    }

    #[test]
    fn golden_sample_expands_to_full_grid() {
        let spec = parse(SAMPLE).unwrap();
        let runs = spec.runs();
        assert_eq!(runs.len(), spec.algorithms.len() * spec.ramp.steps().len());
        for run in &runs {
            assert_eq!(run.config.services.len(), 3);
            run.config.validate().expect("expanded config is valid");
            // The sample's [retry] section enables the resilience layer
            // over an edge-free graph (every class an entry point).
            assert!(run.config.resilience.enabled);
            assert_eq!(run.config.resilience.default_policy.max_attempts, 3);
            assert!(run.config.resilience.has_retry_budget());
            assert_eq!(run.config.resilience.shed_watermark, 0);
            let g = run.config.graph.as_ref().expect("retry implies a graph");
            assert_eq!(g.nodes(), 3);
            assert!(g.is_trivial());
            // The weighted split reconstructs the total offered load.
            let total: f64 = run
                .config
                .services
                .iter()
                .map(|s| match s.load {
                    LoadPattern::Constant { rate } => rate,
                    _ => panic!("mix services use constant load"),
                })
                .sum();
            assert!((total - run.rps).abs() < 1e-9);
            // Per-run snapshot dirs must not collide.
            let dir = run.config.snapshot.as_ref().unwrap().dir.clone();
            assert!(dir.to_string_lossy().contains(&run.label.replace('/', "_")));
        }
    }

    #[test]
    fn minimal_config_applies_defaults() {
        let spec = parse(
            r#"
            [experiment]
            name = "tiny"
            duration_secs = 30
            nodes = 2
            algorithms = ["hybrid"]
            [ramp]
            initial_rps = 1
            increment_rps = 1
            max_rps = 1
            [[scenario]]
            name = "only"
            weight = 100
            profile = "mem-bound"
            "#,
        )
        .expect("minimal config parses");
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.scale_period_secs, 12.0);
        assert_eq!(spec.initial_replicas, 1);
        assert!(spec.snapshot.is_none());
        assert!(spec.retry.is_none());
        assert_eq!(spec.ramp.steps(), vec![1.0]);
        // With no [retry] section the expanded grid keeps the classic
        // graph-free, resilience-free shape.
        for run in spec.runs() {
            assert!(!run.config.resilience.enabled);
            assert!(run.config.graph.is_none());
        }
    }

    #[test]
    fn empty_retry_section_applies_defaults_and_expands() {
        let spec = parse(
            r#"
            [experiment]
            name = "tiny"
            duration_secs = 30
            nodes = 2
            algorithms = ["hybrid"]
            [ramp]
            initial_rps = 1
            increment_rps = 1
            max_rps = 1
            [retry]
            shed_watermark = 40
            [[scenario]]
            name = "only"
            weight = 100
            profile = "cpu-bound"
            "#,
        )
        .expect("retry config parses");
        let retry = spec.retry.as_ref().expect("retry section parsed");
        assert_eq!(retry.max_attempts, 3);
        assert_eq!(retry.budget_pct, 10.0);
        assert_eq!(retry.shed_watermark, 40);
        for run in spec.runs() {
            run.config.validate().expect("expanded config is valid");
            assert!(run.config.resilience.enabled);
            assert_eq!(run.config.resilience.shed_watermark, 40);
            assert!(run.config.graph.is_some());
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec = parse(
            "# leading comment\n\n[experiment]\nname = \"c\" # trailing\nduration_secs = 1\nnodes = 1\nalgorithms = [\"network\"]\n[ramp]\ninitial_rps = 1\nincrement_rps = 1\nmax_rps = 2\n[[scenario]]\nname = \"a # not a comment\"\nweight = 100\nprofile = \"mixed\"\n",
        )
        .expect("commented config parses");
        assert_eq!(spec.scenarios[0].name, "a # not a comment");
        assert_eq!(spec.ramp.steps(), vec![1.0, 2.0]);
    }

    fn err_of(text: &str) -> ConfigError {
        parse(text).expect_err("config must be rejected")
    }

    #[test]
    fn malformed_inputs_give_descriptive_line_errors() {
        // (input, line, message fragment) triples.
        let cases: Vec<(&str, usize, &str)> = vec![
            ("[experiment\nname = \"x\"", 1, "malformed section header"),
            ("[mystery]\n", 1, "unknown section"),
            ("[[mystery]]\n", 1, "unknown repeated section"),
            ("name = \"x\"\n", 1, "before any section header"),
            ("[experiment]\nbogus = 1\n", 2, "unknown key 'bogus'"),
            ("[experiment]\nname = unquoted\n", 2, "expected a number"),
            ("[experiment]\nname = \"open\n", 2, "unterminated string"),
            (
                "[experiment]\nalgorithms = [\"hybrid\"\n",
                2,
                "unterminated list",
            ),
            (
                "[experiment]\nalgorithms = [\"warp-drive\"]\n",
                2,
                "unknown algorithm 'warp-drive'",
            ),
            ("[experiment]\nseed = -4\n", 2, "non-negative integer"),
            ("[experiment]\nnodes = 2.5\n", 2, "non-negative integer"),
            ("[experiment]\nname = 7\n", 2, "must be a quoted string"),
            ("[ramp]\ninitial_rps = 0\n", 2, "must be positive"),
            ("[experiment]\njust a line\n", 2, "expected 'key = value'"),
            (
                "[snapshot]\nevery_ticks = 0\n",
                2,
                "'every_ticks' must be positive",
            ),
            (
                "[[scenario]]\nprofile = \"gpu-bound\"\n",
                2,
                "unknown service profile 'gpu-bound'",
            ),
            (
                "[retry]\nmax_attempts = 0\n",
                2,
                "'max_attempts' must be in 1..=16",
            ),
            (
                "[retry]\nmax_attempts = 99\n",
                2,
                "'max_attempts' must be in 1..=16",
            ),
            (
                "[retry]\nbudget_pct = -5\n",
                2,
                "'budget_pct' must be in 0..=100",
            ),
            (
                "[retry]\nbudget_pct = 250\n",
                2,
                "'budget_pct' must be in 0..=100",
            ),
            ("[retry]\nshed_watermark = 1.5\n", 2, "non-negative integer"),
            ("[retry]\nbogus = 1\n", 2, "unknown key 'bogus' in [retry]"),
            ("[retry]\n[retry]\n", 2, "duplicate [retry] section"),
        ];
        for (text, line, fragment) in cases {
            let err = err_of(text);
            assert_eq!(err.line, line, "wrong line for {text:?}: {err}");
            assert!(
                err.message.contains(fragment),
                "error for {text:?} should mention '{fragment}', got: {err}"
            );
        }
    }

    #[test]
    fn cross_field_validation_is_enforced() {
        let base = |weights: &[u32]| {
            let mut text = String::from(
                "[experiment]\nname = \"w\"\nduration_secs = 10\nnodes = 1\nalgorithms = [\"hybrid\"]\n[ramp]\ninitial_rps = 1\nincrement_rps = 1\nmax_rps = 2\n",
            );
            for (i, w) in weights.iter().enumerate() {
                text.push_str(&format!(
                    "[[scenario]]\nname = \"s{i}\"\nweight = {w}\nprofile = \"mixed\"\n"
                ));
            }
            text
        };
        let err = err_of(&base(&[60, 30]));
        assert!(err.message.contains("sum to exactly 100"), "{err}");
        let err = err_of(&base(&[]));
        assert!(err.message.contains("at least one [[scenario]]"), "{err}");
        let err = err_of(
            "[experiment]\nname = \"w\"\nduration_secs = 10\nnodes = 1\nalgorithms = [\"hybrid\"]\n[ramp]\ninitial_rps = 5\nincrement_rps = 1\nmax_rps = 2\n[[scenario]]\nname = \"s\"\nweight = 100\nprofile = \"mixed\"\n",
        );
        assert!(err.message.contains("'max_rps'"), "{err}");
        // Cross-field ramp errors blame the `[ramp]` section header line.
        assert_eq!(err.line, 6, "{err}");
        let err = err_of("[ramp]\ninitial_rps = 1\n");
        assert!(
            err.message.contains("missing required [experiment]"),
            "{err}"
        );
        let err = err_of("[experiment]\nname = \"w\"\n[experiment]\n");
        assert!(err.message.contains("duplicate [experiment]"), "{err}");
        let err = err_of(
            "[experiment]\nduration_secs = 10\nnodes = 1\nalgorithms = [\"hybrid\"]\n[ramp]\ninitial_rps = 1\nincrement_rps = 1\nmax_rps = 1\n[[scenario]]\nname = \"s\"\nweight = 100\nprofile = \"mixed\"\n",
        );
        assert!(err.message.contains("missing required key 'name'"), "{err}");
    }

    #[test]
    fn degenerate_ramps_are_rejected_with_line_numbers() {
        // A zero increment would loop the ramp forever at `initial_rps`;
        // the error points at the offending key's own line.
        let err = err_of(
            "[experiment]\nname = \"w\"\nduration_secs = 10\nnodes = 1\nalgorithms = [\"hybrid\"]\n[ramp]\ninitial_rps = 1\nincrement_rps = 0\nmax_rps = 2\n[[scenario]]\nname = \"s\"\nweight = 100\nprofile = \"mixed\"\n",
        );
        assert_eq!(err.line, 8, "{err}");
        assert!(
            err.message.contains("'increment_rps' must be positive"),
            "{err}"
        );
        // `max_rps` below `initial_rps` is a cross-field error: no single
        // key is at fault, so it is reported at the `[ramp]` header line.
        let err = err_of(
            "[experiment]\nname = \"w\"\nduration_secs = 10\nnodes = 1\nalgorithms = [\"hybrid\"]\n[ramp]\ninitial_rps = 9\nincrement_rps = 1\nmax_rps = 3\n[[scenario]]\nname = \"s\"\nweight = 100\nprofile = \"mixed\"\n",
        );
        assert_eq!(err.line, 6, "{err}");
        assert!(
            err.message
                .contains("'max_rps' (3) must be at least 'initial_rps' (9)"),
            "{err}"
        );
    }

    #[test]
    fn parser_never_panics_on_garbage() {
        // Assorted hostile inputs: all must return Err, never panic.
        for garbage in [
            "",
            "=",
            "= =",
            "[",
            "]",
            "[[",
            "[[]]",
            "[]",
            "\u{0}\u{1}\u{2}",
            "[experiment]\n= 3",
            "[experiment]\nname =",
            "[experiment]\nalgorithms = [3]",
            "[experiment]\nalgorithms = [\"a\", 3]",
            "[experiment]\nseed = 999999999999999999999999",
            "[experiment]\nseed = nan",
            "[experiment]\nseed = inf",
        ] {
            assert!(parse(garbage).is_err(), "garbage accepted: {garbage:?}");
        }
    }
}
