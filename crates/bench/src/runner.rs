//! Multi-algorithm sweeps and report formatting.

use hyscale_core::{AlgorithmKind, CoreError, RunReport, ScenarioConfig, SimulationDriver};
use hyscale_metrics::{format_speedup, SlaPolicy, Table};

/// One algorithm's (multi-seed) result in a figure.
#[derive(Debug)]
pub struct FigureRow {
    /// The algorithm the row belongs to.
    pub algorithm: AlgorithmKind,
    /// Its merged report.
    pub report: RunReport,
}

/// Runs each `(algorithm, config)` pair over `seeds`, in parallel across
/// a fixed-size worker set (each run is single-threaded and
/// deterministic, so the parallelism cannot affect results).
///
/// Workers are capped at [`std::thread::available_parallelism`]: a large
/// study sweeps hundreds of pairs, and one OS thread per pair would
/// oversubscribe the machine and thrash. Pairs are pulled off a shared
/// atomic cursor and results land in their input slot, so the returned
/// rows are in input order regardless of which worker ran what.
///
/// # Errors
///
/// Propagates the first failing run's error (in input order).
pub fn sweep(
    configs: Vec<(AlgorithmKind, ScenarioConfig)>,
    seeds: &[u64],
) -> Result<Vec<FigureRow>, CoreError> {
    if configs.is_empty() {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(configs.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<Result<FigureRow, CoreError>>> = std::iter::repeat_with(|| None)
        .take(configs.len())
        .collect();
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..workers {
            let tx = tx.clone();
            let configs = &configs;
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some((algorithm, config)) = configs.get(i) else {
                    break;
                };
                let row = SimulationDriver::run_averaged(config, seeds).map(|report| FigureRow {
                    algorithm: *algorithm,
                    report,
                });
                if tx.send((i, row)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, row) in rx {
            results[i] = Some(row);
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every pair was claimed by a worker"))
        .collect()
}

/// Convenience: build-and-sweep all four algorithms through a scenario
/// constructor.
///
/// # Errors
///
/// Propagates the first failing run's error.
pub fn sweep_all<F>(make: F, seeds: &[u64]) -> Result<Vec<FigureRow>, CoreError>
where
    F: Fn(AlgorithmKind) -> ScenarioConfig,
{
    sweep(
        AlgorithmKind::ALL.iter().map(|&k| (k, make(k))).collect(),
        seeds,
    )
}

/// The standard user-perceived-performance table the paper's Figs. 6–8
/// and 10 report: response times plus the failure breakdown.
pub fn perf_table(rows: &[FigureRow]) -> Table {
    let k8s_mean = rows
        .iter()
        .find(|r| r.algorithm == AlgorithmKind::Kubernetes)
        .map(|r| r.report.requests.mean_response_secs())
        .unwrap_or(0.0);
    let mut table = Table::new(vec![
        "algorithm",
        "mean rt (ms)",
        "p95 rt (ms)",
        "failed %",
        "removal %",
        "connection %",
        "avail %",
        "speedup vs k8s",
    ]);
    for row in rows {
        let r = &row.report.requests;
        table.row(vec![
            row.algorithm.label().to_string(),
            format!("{:.1}", row.report.mean_response_ms()),
            format!("{:.1}", r.response_times.percentile(95.0) * 1e3),
            format!("{:.2}", r.failed_pct()),
            format!("{:.2}", r.removal_failed_pct()),
            format!("{:.2}", r.connection_failed_pct()),
            format!("{:.2}", r.availability_pct()),
            format_speedup(k8s_mean, r.mean_response_secs()),
        ]);
    }
    table
}

/// A compact resource-efficiency table (the cost-model extension).
pub fn cost_table(rows: &[FigureRow]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "mean cores",
        "mean busy nodes",
        "container-hours",
        "spawns",
        "removals",
        "vertical ops",
    ]);
    for row in rows {
        table.row(vec![
            row.algorithm.label().to_string(),
            format!("{:.2}", row.report.cost.mean_cores()),
            format!("{:.2}", row.report.cost.mean_busy_nodes()),
            format!("{:.2}", row.report.cost.container_hours()),
            row.report.scaling.spawns.to_string(),
            row.report.scaling.removals.to_string(),
            row.report.scaling.vertical.to_string(),
        ]);
    }
    table
}

/// SLA-violation table (the paper's economic framing: penalties per
/// violating request under a 1 s / 99.8% interactive SLA).
pub fn sla_table(rows: &[FigureRow]) -> Table {
    let policy = SlaPolicy::interactive();
    let mut table = Table::new(vec![
        "algorithm",
        "violations",
        "violation %",
        "penalty",
        "availability ok",
    ]);
    for row in rows {
        let report = policy.evaluate(&row.report.requests);
        table.row(vec![
            row.algorithm.label().to_string(),
            report.violations.to_string(),
            format!("{:.2}", report.violation_pct),
            format!("{:.2}", report.penalty),
            if report.availability_met {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    table
}

/// Finds a row by algorithm.
pub fn row(rows: &[FigureRow], algorithm: AlgorithmKind) -> Option<&FigureRow> {
    rows.iter().find(|r| r.algorithm == algorithm)
}

/// Picks the experiment scale from the process arguments: `--full` runs
/// the paper-size experiment (19 workers, 15 services, 1 h, 5 seeds),
/// the default is the minutes-scale quick variant.
pub fn scale_from_args() -> crate::scenarios::Scale {
    if std::env::args().any(|a| a == "--full") {
        println!("[scale: full — 19 workers, 15 services, 3600 s, 5 seeds]");
        crate::scenarios::Scale::full()
    } else {
        println!("[scale: quick — pass --full for the paper-size run]");
        crate::scenarios::Scale::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{cpu_bound, Burst, Scale};

    #[test]
    fn sweep_runs_all_algorithms_in_parallel() {
        let scale = Scale::bench();
        let rows = sweep_all(|k| cpu_bound(&scale, Burst::Low, k), &[1]).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.report.requests.issued > 0, "{}", r.algorithm);
        }
        let table = perf_table(&rows);
        assert_eq!(table.len(), 4);
        let cost = cost_table(&rows);
        assert_eq!(cost.len(), 4);
        let sla = sla_table(&rows);
        assert_eq!(sla.len(), 4);
        assert!(row(&rows, AlgorithmKind::Network).is_some());
        assert!(row(&rows, AlgorithmKind::None).is_none());
    }

    #[test]
    fn sweep_preserves_input_order_with_more_pairs_than_workers() {
        // More pairs than any plausible worker cap: rows must still come
        // back in input order (the cursor hands out indices, results land
        // in their slot).
        let scale = Scale::bench();
        let pairs: Vec<_> = (0..3)
            .flat_map(|_| AlgorithmKind::ALL.iter().copied())
            .map(|k| (k, cpu_bound(&scale, Burst::Low, k)))
            .collect();
        let expected: Vec<AlgorithmKind> = pairs.iter().map(|(k, _)| *k).collect();
        let rows = sweep(pairs, &[1]).unwrap();
        let got: Vec<AlgorithmKind> = rows.iter().map(|r| r.algorithm).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sweep_of_nothing_is_empty() {
        assert!(sweep(Vec::new(), &[1]).unwrap().is_empty());
    }

    #[test]
    fn sweep_is_deterministic_despite_threads() {
        let scale = Scale::bench();
        let run = || {
            let rows = sweep_all(|k| cpu_bound(&scale, Burst::High, k), &[9]).unwrap();
            rows.iter()
                .map(|r| (r.algorithm, r.report.requests.completed, r.report.scaling))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
