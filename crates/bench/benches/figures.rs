//! Criterion benches that regenerate every paper figure at `bench` scale.
//!
//! Each bench runs the corresponding experiment end-to-end (workload →
//! load balancer → cluster → Monitor); criterion's statistics then double
//! as a regression guard on simulator throughput. The printed tables of
//! the full-size experiments come from the `figN` binaries; these benches
//! keep `cargo bench` exercising the exact same scenario definitions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyscale_bench::scenarios::{bitbrains, cpu_bound, mixed, network, Burst, Scale};
use hyscale_bench::studies::{fig2_cpu_point, fig3_net_point, mem_point};
use hyscale_core::{AlgorithmKind, SimulationDriver};
use hyscale_sim::SimRng;
use hyscale_workload::bitbrains::{aggregate_mean, SyntheticTrace};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_cpu_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for replicas in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, &r| {
            b.iter(|| {
                let point = fig2_cpu_point(r, 2.0);
                assert!(point.mean_response_secs > 0.0);
                point
            })
        });
    }
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_net_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for replicas in [1usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, &r| {
            b.iter(|| {
                let point = fig3_net_point(r);
                assert!(point.mean_response_secs > 0.0);
                point
            })
        });
    }
    group.finish();
}

fn bench_mem_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for replicas in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, &r| {
            b.iter(|| mem_point(r, 512.0, 4, 110.0))
        });
    }
    group.finish();
}

/// A scenario constructor parameterized by algorithm.
type ScenarioMaker = Box<dyn Fn(AlgorithmKind) -> hyscale_core::ScenarioConfig>;

fn bench_full_experiments(c: &mut Criterion) {
    let scale = Scale::bench();
    let figures: [(&str, ScenarioMaker); 4] = [
        (
            "fig6_cpu_bound",
            Box::new({
                let scale = scale.clone();
                move |k| cpu_bound(&scale, Burst::High, k)
            }),
        ),
        (
            "fig7_mixed",
            Box::new({
                let scale = scale.clone();
                move |k| mixed(&scale, Burst::High, k)
            }),
        ),
        (
            "fig8_network",
            Box::new({
                let scale = scale.clone();
                move |k| network(&scale, Burst::High, k)
            }),
        ),
        (
            "fig10_bitbrains",
            Box::new({
                let scale = scale.clone();
                move |k| bitbrains(&scale, k)
            }),
        ),
    ];
    for (name, make) in figures {
        let mut group = c.benchmark_group(name);
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(8));
        for kind in AlgorithmKind::ALL {
            let config = make(kind);
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label()),
                &config,
                |b, cfg| {
                    b.iter(|| {
                        let report = SimulationDriver::run(cfg).expect("scenario runs");
                        assert!(report.requests.issued > 0);
                        report.requests.completed
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_fig9_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_trace");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("generate_and_aggregate", |b| {
        let config = SyntheticTrace {
            vms: 100,
            duration_secs: 3600.0,
            interval_secs: 30.0,
            ..SyntheticTrace::default()
        };
        b.iter(|| {
            let traces = config.generate(&mut SimRng::seed_from(0xB17B));
            aggregate_mean(&traces).len()
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig3,
    bench_mem_study,
    bench_full_experiments,
    bench_fig9_trace
);
criterion_main!(figures);
