//! Std-only benches that regenerate every paper figure at `bench` scale.
//!
//! Each bench runs the corresponding experiment end-to-end (workload →
//! load balancer → cluster → Monitor) a fixed number of times and prints
//! the mean wall-clock per iteration, doubling as a regression guard on
//! simulator throughput. The printed tables of the full-size experiments
//! come from the `figN` binaries; this harness keeps `cargo bench`
//! exercising the exact same scenario definitions without external
//! dependencies (the offline build cannot reach crates.io).

use std::time::Instant;

use hyscale_bench::scenarios::{bitbrains, cpu_bound, mixed, network, Burst, Scale};
use hyscale_bench::studies::{fig2_cpu_point, fig3_net_point, mem_point};
use hyscale_core::{AlgorithmKind, SimulationDriver};
use hyscale_sim::SimRng;
use hyscale_workload::bitbrains::{aggregate_mean, SyntheticTrace};

const ITERS: u32 = 5;

/// Times `f` over [`ITERS`] iterations and prints the mean per-iteration
/// wall-clock under `name`.
fn bench<F: FnMut()>(name: &str, mut f: F) {
    // One warm-up iteration keeps one-time setup out of the mean.
    f();
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let mean = start.elapsed().as_secs_f64() / f64::from(ITERS);
    println!("{name:<40} {:>10.2} ms/iter", mean * 1e3);
}

fn bench_fig2() {
    for replicas in [1usize, 4, 16] {
        bench(&format!("fig2_cpu_scaling/{replicas}"), || {
            let point = fig2_cpu_point(replicas, 2.0);
            assert!(point.mean_response_secs > 0.0);
        });
    }
}

fn bench_fig3() {
    for replicas in [1usize, 8] {
        bench(&format!("fig3_net_scaling/{replicas}"), || {
            let point = fig3_net_point(replicas);
            assert!(point.mean_response_secs > 0.0);
        });
    }
}

fn bench_mem_study() {
    for replicas in [1usize, 2] {
        bench(&format!("mem_scaling/{replicas}"), || {
            mem_point(replicas, 512.0, 4, 110.0);
        });
    }
}

/// A scenario constructor parameterized by algorithm.
type ScenarioMaker = Box<dyn Fn(AlgorithmKind) -> hyscale_core::ScenarioConfig>;

fn bench_full_experiments() {
    let scale = Scale::bench();
    let figures: [(&str, ScenarioMaker); 4] = [
        (
            "fig6_cpu_bound",
            Box::new({
                let scale = scale.clone();
                move |k| cpu_bound(&scale, Burst::High, k)
            }),
        ),
        (
            "fig7_mixed",
            Box::new({
                let scale = scale.clone();
                move |k| mixed(&scale, Burst::High, k)
            }),
        ),
        (
            "fig8_network",
            Box::new({
                let scale = scale.clone();
                move |k| network(&scale, Burst::High, k)
            }),
        ),
        (
            "fig10_bitbrains",
            Box::new({
                let scale = scale.clone();
                move |k| bitbrains(&scale, k)
            }),
        ),
    ];
    for (name, make) in figures {
        for kind in AlgorithmKind::ALL {
            let config = make(kind);
            bench(&format!("{name}/{}", kind.label()), || {
                let report = SimulationDriver::run(&config).expect("scenario runs");
                assert!(report.requests.issued > 0);
            });
        }
    }
}

fn bench_fig9_trace() {
    let config = SyntheticTrace {
        vms: 100,
        duration_secs: 3600.0,
        interval_secs: 30.0,
        ..SyntheticTrace::default()
    };
    bench("fig9_trace/generate_and_aggregate", || {
        let traces = config.generate(&mut SimRng::seed_from(0xB17B));
        assert!(!aggregate_mean(&traces).is_empty());
    });
}

fn main() {
    // `cargo test` compiles harness-free benches and runs them with
    // `--test`-style flags; only do real work under `cargo bench`.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    bench_fig2();
    bench_fig3();
    bench_mem_study();
    bench_full_experiments();
    bench_fig9_trace();
}
