//! Deterministic discrete-time simulation substrate for HyScale.
//!
//! The HyScale paper evaluates its autoscaling algorithms on a 24-node
//! physical cluster over one-hour runs. This crate provides the substrate
//! that replaces that testbed: a simulated clock with microsecond
//! resolution, a deterministic pseudo-random number generator with the
//! distributions the workload generators need, a stable event queue, and a
//! fixed-step tick engine. Every simulation built on top of it is a pure
//! function of its configuration and seed, which makes the paper's
//! "averaged over 5 runs" protocol a matter of running five seeds.
//!
//! # Example
//!
//! ```
//! use hyscale_sim::{EventQueue, SimDuration, SimRng, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_secs(1.0), "first");
//! queue.schedule(SimTime::from_secs(0.5), "zeroth");
//!
//! let (t, event) = queue.pop().expect("event");
//! assert_eq!(event, "zeroth");
//! assert_eq!(t, SimTime::from_secs(0.5));
//!
//! let mut rng = SimRng::seed_from(42);
//! let sample = rng.uniform_f64();
//! assert!((0.0..1.0).contains(&sample));
//! # let _ = SimDuration::from_secs(1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod events;
mod rng;
mod snapshot;
mod time;

pub use engine::{TickEngine, TickOutcome};
pub use error::SimError;
pub use events::EventQueue;
pub use rng::SimRng;
pub use snapshot::{
    fnv1a, SnapReader, SnapWriter, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use time::{SimDuration, SimTime};
