//! A stable, deterministic event queue.
//!
//! Simulated components (client load generators, the Monitor's scaling
//! period, rescale-interval expirations) schedule future events here. Ties
//! in time are broken by insertion order so that two runs with the same
//! seed process events identically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// Events with equal timestamps are delivered in the order they were
/// scheduled (FIFO), which keeps simulations deterministic without
/// requiring `E: Ord`.
///
/// # Example
///
/// ```
/// use hyscale_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "b");
/// q.schedule(SimTime::from_secs(1.0), "a");
/// q.schedule(SimTime::from_secs(2.0), "c"); // same time as "b", FIFO after it
///
/// let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, with the
        // lowest sequence number winning ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`. Leaves later events queued.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all queued events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Queued events in delivery order — `(time, event)` pairs sorted by
    /// time with scheduling order breaking ties (snapshot support).
    ///
    /// Re-scheduling the returned pairs in order into a fresh queue
    /// reproduces the exact delivery sequence: fresh sequence numbers are
    /// assigned in the same relative order the originals held.
    pub fn entries_in_order(&self) -> Vec<(SimTime, &E)> {
        let mut entries: Vec<&Entry<E>> = self.heap.iter().collect();
        entries.sort_by(|a, b| a.time.cmp(&b.time).then_with(|| a.seq.cmp(&b.seq)));
        entries.into_iter().map(|e| (e.time, &e.event)).collect()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.schedule(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), "early");
        q.schedule(SimTime::from_secs(5.0), "late");
        assert_eq!(
            q.pop_due(SimTime::from_secs(2.0)),
            Some((SimTime::from_secs(1.0), "early"))
        );
        assert_eq!(q.pop_due(SimTime::from_secs(2.0)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_due(SimTime::from_secs(5.0)),
            Some((SimTime::from_secs(5.0), "late"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn collect_and_clear() {
        let mut q: EventQueue<u8> = (0..5u8)
            .map(|i| (SimTime::from_millis(i as u64), i))
            .collect();
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }
}
