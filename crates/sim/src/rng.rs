//! Deterministic pseudo-random number generation.
//!
//! HyScale experiments must be reproducible: the paper averages each
//! experiment over five runs, which we realize as five fixed seeds. To keep
//! the whole workspace bit-for-bit deterministic across platforms we ship a
//! self-contained xoshiro256** generator (public-domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64, plus the handful of
//! distributions the workload generators need (uniform, exponential,
//! normal, Poisson, Pareto).

/// A deterministic random number generator for simulations.
///
/// Cloning a `SimRng` forks the stream: both clones produce the same
/// subsequent values. Use [`SimRng::split`] to derive an independent
/// sub-stream (e.g. one per microservice) from a parent generator.
///
/// # Example
///
/// ```
/// use hyscale_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut child = a.split();
/// // The child stream is decorrelated from the parent.
/// let _ = child.uniform_f64();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream splitting.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed is valid, including zero; the SplitMix64 expansion
    /// guarantees a non-degenerate internal state.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Returns the raw xoshiro256** internal state (snapshot support).
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from a state captured by [`SimRng::state`].
    ///
    /// The restored generator continues the exact stream the original
    /// would have produced.
    pub fn from_state(state: [u64; 4]) -> Self {
        SimRng { state }
    }

    /// Derives an independent sub-stream, advancing this generator once.
    ///
    /// Useful for giving each simulated entity (service, node, client) its
    /// own stream so that adding an entity does not perturb the draws seen
    /// by the others.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Returns the next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is not finite.
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "uniform_range requires finite low < high, got [{low}, {high})"
        );
        low + (high - low) * self.uniform_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize requires n > 0");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * n,
        // negligible for simulation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponential sample with the given rate (mean `1/rate`).
    ///
    /// Used for Poisson-process inter-arrival times of client requests.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential requires rate > 0, got {rate}"
        );
        // Avoid ln(0) by flipping the uniform sample into (0, 1].
        let u = 1.0 - self.uniform_f64();
        -u.ln() / rate
    }

    /// Standard normal sample (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform_f64(); // (0, 1]
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "normal requires std_dev >= 0, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Poisson sample with the given mean.
    ///
    /// Uses Knuth's method for small means and a normal approximation for
    /// large means (`mean > 64`), which is accurate enough for request-count
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "poisson requires mean >= 0, got {mean}"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let sample = self.normal(mean, mean.sqrt());
            return sample.max(0.0).round() as u64;
        }
        let limit = (-mean).exp();
        let mut product = self.uniform_f64();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform_f64();
        }
        count
    }

    /// Pareto sample with scale `x_min` and shape `alpha` (heavy tail).
    ///
    /// Used for burst magnitudes in the Bitbrains-like synthetic trace.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "pareto requires positive parameters"
        );
        let u = 1.0 - self.uniform_f64(); // (0, 1]
        x_min / u.powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.uniform_usize(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SimRng::seed_from(0);
        let values: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
        assert!(values.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::seed_from(9);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn uniform_usize_covers_all_buckets() {
        let mut rng = SimRng::seed_from(5);
        let mut seen = [0u32; 7];
        for _ in 0..7_000 {
            seen[rng.uniform_usize(7)] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 700, "bucket {i} undersampled: {count}");
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from(11);
        let rate = 4.0;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = SimRng::seed_from(17);
        let n = 30_000;
        for &mean in &[0.5, 3.0, 100.0] {
            let avg: f64 = (0..n).map(|_| rng.poisson(mean) as f64).sum::<f64>() / n as f64;
            assert!(
                (avg - mean).abs() < mean.max(1.0) * 0.05,
                "poisson mean {mean}: observed {avg}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut rng = SimRng::seed_from(19);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities clamp rather than panic.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let mut parent = SimRng::seed_from(31);
        let mut a = parent.split();
        let mut b = parent.split();
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(37);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = SimRng::seed_from(41);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
