//! Simulated time with microsecond resolution.
//!
//! All simulated clocks in HyScale use integer microseconds internally so
//! that time arithmetic is exact and runs are bit-for-bit reproducible
//! across platforms; floating-point seconds are only a view.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds per second, the internal tick unit.
const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulated timeline, measured from simulation start.
///
/// `SimTime` is an absolute instant; [`SimDuration`] is a span between
/// instants. The distinction mirrors `std::time::{Instant, Duration}` and
/// prevents accidentally adding two instants together.
///
/// # Example
///
/// ```
/// use hyscale_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(1.5);
/// assert_eq!(t.as_secs(), 1.5);
/// assert_eq!(t - SimTime::from_secs(0.5), SimDuration::from_secs(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time.
///
/// See [`SimTime`] for the instant type. Durations are non-negative; the
/// subtraction operators saturate at zero rather than panicking so that
/// metric code computing `now - start` on slightly out-of-order samples is
/// total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from (possibly fractional) seconds since start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Creates an instant from whole milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Returns the instant as microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the span since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs requires a finite non-negative value, got {secs}"
        );
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Returns the span as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative factor, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64 requires a finite non-negative factor, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Integer-divides the span, rounding down.
    pub const fn div_u64(self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        assert!(!rhs.is_zero(), "division by zero-length SimDuration");
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < MICROS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs())
        }
    }
}

impl From<SimDuration> for f64 {
    fn from(d: SimDuration) -> f64 {
        d.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_through_seconds() {
        let t = SimTime::from_secs(12.345678);
        assert!((t.as_secs() - 12.345678).abs() < 1e-6);
        assert_eq!(t.as_micros(), 12_345_678);
    }

    #[test]
    fn duration_arithmetic_is_exact() {
        let a = SimDuration::from_millis(100);
        let b = SimDuration::from_millis(250);
        assert_eq!(a + b, SimDuration::from_millis(350));
        assert_eq!(b - a, SimDuration::from_millis(150));
        assert_eq!(a * 3, SimDuration::from_millis(300));
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let early = SimTime::from_secs(1.0);
        let late = SimTime::from_secs(2.0);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1.0));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn instant_plus_duration_advances() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(100);
        t += SimDuration::from_millis(100);
        assert_eq!(t, SimTime::from_millis(200));
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(4.0);
        assert!((a / b - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds_to_micros() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(2)); // 1.5 rounds to 2
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimTime::from_secs(2.0).to_string(), "t=2.000s");
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs(-1.0);
    }
}
