//! Fixed-step tick engine.
//!
//! HyScale's resource model is a fluid-flow model: each tick (default
//! 100 ms) the cluster advances every in-flight request by the CPU time and
//! bytes it received during the tick. The engine owns the clock and the
//! horizon, and hands each tick to a caller-supplied closure; discrete
//! events (request arrivals, scaling periods) are layered on top via
//! [`EventQueue`](crate::EventQueue) checked inside the tick body.

use crate::error::SimError;
use crate::time::{SimDuration, SimTime};

/// Outcome of a single tick, returned by the tick closure to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickOutcome {
    /// Keep ticking until the horizon.
    #[default]
    Continue,
    /// Skip the next `n` whole ticks: the body has already advanced the
    /// model across them in closed form (the time-warp fast path), so
    /// the engine moves the clock without invoking the body for them.
    /// The engine clamps the skip so it never crosses the horizon; the
    /// final (possibly truncated) tick always runs normally.
    SkipAhead(u64),
    /// Stop the simulation early (e.g. all work has drained).
    Stop,
}

/// A fixed-step simulation clock with a horizon.
///
/// # Example
///
/// ```
/// use hyscale_sim::{SimDuration, SimTime, TickEngine, TickOutcome};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut engine = TickEngine::new(SimDuration::from_millis(100), SimTime::from_secs(1.0))?;
/// let mut ticks = 0;
/// engine.run(|_now, _dt| {
///     ticks += 1;
///     TickOutcome::Continue
/// });
/// assert_eq!(ticks, 10);
/// assert_eq!(engine.now(), SimTime::from_secs(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TickEngine {
    tick: SimDuration,
    horizon: SimTime,
    now: SimTime,
    ticks_run: u64,
}

impl TickEngine {
    /// Creates an engine that steps by `tick` until `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `tick` is zero or `horizon`
    /// is not a positive instant.
    pub fn new(tick: SimDuration, horizon: SimTime) -> Result<Self, SimError> {
        if tick.is_zero() {
            return Err(SimError::invalid_config(
                "tick",
                "tick length must be positive",
            ));
        }
        if horizon == SimTime::ZERO {
            return Err(SimError::invalid_config(
                "horizon",
                "horizon must be after t=0",
            ));
        }
        Ok(TickEngine {
            tick,
            horizon,
            now: SimTime::ZERO,
            ticks_run: 0,
        })
    }

    /// Current simulated time (start of the next tick).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fixed tick length.
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// The configured end of simulation.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of ticks executed so far.
    pub fn ticks_run(&self) -> u64 {
        self.ticks_run
    }

    /// True once the clock has reached the horizon.
    pub fn finished(&self) -> bool {
        self.now >= self.horizon
    }

    /// Restores the clock to a previously captured position (snapshot
    /// resume). `now` must be a tick boundary within the horizon; the
    /// engine resumes stepping from there as if it had ticked to that
    /// point itself.
    pub fn restore_clock(&mut self, now: SimTime, ticks_run: u64) {
        self.now = now;
        self.ticks_run = ticks_run;
    }

    /// Advances one tick, invoking `body` with the tick's start time and
    /// length (the final tick is truncated to end exactly at the horizon).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PastHorizon`] if the engine already finished.
    pub fn step<F>(&mut self, mut body: F) -> Result<TickOutcome, SimError>
    where
        F: FnMut(SimTime, SimDuration) -> TickOutcome,
    {
        if self.finished() {
            return Err(SimError::PastHorizon);
        }
        let remaining = self.horizon - self.now;
        let dt = if remaining < self.tick {
            remaining
        } else {
            self.tick
        };
        let start = self.now;
        self.now += dt;
        self.ticks_run += 1;
        let outcome = body(start, dt);
        if let TickOutcome::SkipAhead(n) = outcome {
            let remaining = self.horizon - self.now;
            let skip = n.min(remaining.as_micros() / self.tick.as_micros());
            self.now += self.tick * skip;
            self.ticks_run += skip;
        }
        Ok(outcome)
    }

    /// Runs ticks until the horizon or until the body returns
    /// [`TickOutcome::Stop`]. Returns the time at which the run ended.
    pub fn run<F>(&mut self, mut body: F) -> SimTime
    where
        F: FnMut(SimTime, SimDuration) -> TickOutcome,
    {
        while !self.finished() {
            match self.step(&mut body) {
                Ok(TickOutcome::Continue) | Ok(TickOutcome::SkipAhead(_)) => {}
                Ok(TickOutcome::Stop) | Err(_) => break,
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_tick_and_zero_horizon() {
        assert!(TickEngine::new(SimDuration::ZERO, SimTime::from_secs(1.0)).is_err());
        assert!(TickEngine::new(SimDuration::from_millis(100), SimTime::ZERO).is_err());
    }

    #[test]
    fn runs_expected_number_of_ticks() {
        let mut e =
            TickEngine::new(SimDuration::from_millis(100), SimTime::from_secs(2.0)).unwrap();
        let mut n = 0;
        e.run(|_, _| {
            n += 1;
            TickOutcome::Continue
        });
        assert_eq!(n, 20);
        assert_eq!(e.ticks_run(), 20);
        assert!(e.finished());
    }

    #[test]
    fn truncates_final_partial_tick() {
        let mut e =
            TickEngine::new(SimDuration::from_millis(300), SimTime::from_millis(700)).unwrap();
        let mut dts = Vec::new();
        e.run(|_, dt| {
            dts.push(dt.as_micros());
            TickOutcome::Continue
        });
        assert_eq!(dts, [300_000, 300_000, 100_000]);
        assert_eq!(e.now(), SimTime::from_millis(700));
    }

    #[test]
    fn stop_halts_early() {
        let mut e =
            TickEngine::new(SimDuration::from_millis(100), SimTime::from_secs(10.0)).unwrap();
        let end = e.run(|now, _| {
            if now >= SimTime::from_millis(300) {
                TickOutcome::Stop
            } else {
                TickOutcome::Continue
            }
        });
        assert_eq!(end, SimTime::from_millis(400));
        assert!(!e.finished());
    }

    #[test]
    fn step_past_horizon_errors() {
        let mut e =
            TickEngine::new(SimDuration::from_millis(100), SimTime::from_millis(100)).unwrap();
        assert!(e.step(|_, _| TickOutcome::Continue).is_ok());
        assert_eq!(
            e.step(|_, _| TickOutcome::Continue),
            Err(SimError::PastHorizon)
        );
    }

    #[test]
    fn skip_ahead_advances_clock_and_tick_count() {
        let mut e =
            TickEngine::new(SimDuration::from_millis(100), SimTime::from_secs(1.0)).unwrap();
        let mut starts = Vec::new();
        e.run(|now, _| {
            starts.push(now.as_micros());
            if now == SimTime::from_millis(100) {
                TickOutcome::SkipAhead(3)
            } else {
                TickOutcome::Continue
            }
        });
        // Ticks at 200/300/400 ms were warped over; the body resumes at 500 ms.
        assert_eq!(
            starts,
            [0, 100_000, 500_000, 600_000, 700_000, 800_000, 900_000]
        );
        assert_eq!(e.ticks_run(), 10);
        assert!(e.finished());
    }

    #[test]
    fn skip_ahead_clamps_at_horizon() {
        let mut e =
            TickEngine::new(SimDuration::from_millis(100), SimTime::from_millis(450)).unwrap();
        let mut starts = Vec::new();
        e.run(|now, _| {
            starts.push(now.as_micros());
            TickOutcome::SkipAhead(1_000)
        });
        // First tick ends at 100 ms with 350 ms left: only three whole ticks
        // fit, so the truncated final 50 ms tick still runs.
        assert_eq!(starts, [0, 400_000]);
        assert_eq!(e.now(), SimTime::from_millis(450));
        assert!(e.finished());
    }

    #[test]
    fn skip_ahead_zero_is_a_plain_continue() {
        let mut e =
            TickEngine::new(SimDuration::from_millis(100), SimTime::from_millis(300)).unwrap();
        let mut n = 0;
        e.run(|_, _| {
            n += 1;
            TickOutcome::SkipAhead(0)
        });
        assert_eq!(n, 3);
        assert_eq!(e.ticks_run(), 3);
    }

    #[test]
    fn tick_times_are_monotone_starts() {
        let mut e =
            TickEngine::new(SimDuration::from_millis(250), SimTime::from_secs(1.0)).unwrap();
        let mut starts = Vec::new();
        e.run(|t, _| {
            starts.push(t.as_micros());
            TickOutcome::Continue
        });
        assert_eq!(starts, [0, 250_000, 500_000, 750_000]);
    }
}
