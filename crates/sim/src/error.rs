//! Error type for the simulation substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by the simulation substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was outside its legal range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The tick engine was asked to run past its configured horizon.
    PastHorizon,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            SimError::PastHorizon => write!(f, "tick engine already reached its horizon"),
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Convenience constructor for configuration errors.
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::invalid_config("tick", "must be positive");
        assert_eq!(
            e.to_string(),
            "invalid configuration for `tick`: must be positive"
        );
        assert_eq!(
            SimError::PastHorizon.to_string(),
            "tick engine already reached its horizon"
        );
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
