//! Versioned, dependency-free binary snapshot encoding.
//!
//! A snapshot file is a single *frame*:
//!
//! ```text
//! magic `HYSN` (4 bytes) | format version (u32 LE) | payload length (u64 LE)
//! | payload bytes | FNV-1a 64 checksum of the payload (u64 LE)
//! ```
//!
//! The payload itself is written field-by-field through [`SnapWriter`] and
//! read back through [`SnapReader`]; every multi-byte integer is
//! little-endian and every `f64` travels as its IEEE-754 bit pattern, so
//! snapshots are bit-identical across platforms. Decoding is strict: a bad
//! magic, a version mismatch, a truncated frame, or a checksum failure each
//! yield a distinct [`SnapshotError`] *before* any state is reconstructed —
//! restore is all-or-nothing by construction.

use std::error::Error;
use std::fmt;

/// The four magic bytes opening every snapshot frame.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HYSN";

/// The current snapshot format version.
///
/// Bump this on ANY change to the payload layout; old files then fail with
/// [`SnapshotError::VersionMismatch`] instead of misdecoding.
///
/// Version history: 1 = initial format; 2 = driver payloads append the
/// service-graph tracker state (a presence tag plus roots, hops, queued
/// child hops, and per-entry-point outcomes) and the cohort table carries
/// a per-slot admission time; 3 = the resilience layer — failure tallies
/// split into four kinds, the graph tracker carries retry/deadline/budget
/// state and stats, driver payloads append the resilience RNG stream, and
/// the cohort table carries a per-slot attempt counter.
pub const SNAPSHOT_VERSION: u32 = 3;

/// FNV-1a 64-bit hash of a byte slice.
///
/// Used both as the frame checksum and as the state-digest primitive
/// throughout the snapshot subsystem.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors raised while encoding, framing, or decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The file does not start with the `HYSN` magic bytes.
    BadMagic,
    /// The file's format version differs from this build's.
    VersionMismatch {
        /// Version this build reads and writes ([`SNAPSHOT_VERSION`]).
        expected: u32,
        /// Version found in the file header.
        found: u32,
    },
    /// The frame (or a field inside the payload) ended early.
    Truncated,
    /// The payload bytes do not match the recorded checksum.
    ChecksumMismatch,
    /// The payload decoded structurally but held an impossible value.
    Corrupt(String),
    /// The snapshot was taken under a different scenario configuration.
    ConfigMismatch {
        /// Digest of the configuration attempting the restore.
        expected: u64,
        /// Digest recorded in the snapshot.
        found: u64,
    },
    /// An underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::VersionMismatch { expected, found } => write!(
                f,
                "snapshot format version mismatch: expected {expected}, found {found}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot payload checksum mismatch (file corrupted)")
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot payload is corrupt: {what}"),
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot was taken under a different scenario configuration \
                 (config digest {found:#018x}, this scenario is {expected:#018x})"
            ),
            SnapshotError::Io(what) => write!(f, "snapshot i/o error: {what}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

/// Field-by-field payload encoder.
///
/// Accumulates raw payload bytes; [`SnapWriter::finish`] wraps them in the
/// versioned frame (magic, version, length, checksum).
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an optional `f64` as a presence byte plus the bit pattern.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed raw byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Current payload length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// FNV-1a digest of the payload written so far.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.buf)
    }

    /// Consumes the writer and returns the complete framed snapshot:
    /// magic, version, payload length, payload, payload checksum.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 24);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out.extend_from_slice(&fnv1a(&self.buf).to_le_bytes());
        out
    }
}

/// Strict field-by-field payload decoder.
///
/// [`SnapReader::open`] validates the entire frame (magic, version, length,
/// checksum) up front; the `get_*` accessors then walk the payload and fail
/// with [`SnapshotError::Truncated`] on any under-run.
#[derive(Debug)]
pub struct SnapReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Validates the frame around `bytes` and positions a reader at the
    /// start of the payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::VersionMismatch`],
    /// [`SnapshotError::Truncated`], or [`SnapshotError::ChecksumMismatch`],
    /// checked in that order.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 4 {
            return Err(if bytes.starts_with(&SNAPSHOT_MAGIC[..bytes.len()]) {
                SnapshotError::Truncated
            } else {
                SnapshotError::BadMagic
            });
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < 16 {
            return Err(SnapshotError::Truncated);
        }
        let found = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if found != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found,
            });
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
        let Some(total) = len.checked_add(24) else {
            return Err(SnapshotError::Truncated);
        };
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        if bytes.len() > total {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after frame",
                bytes.len() - total
            )));
        }
        let payload = &bytes[16..16 + len];
        let checksum = u64::from_le_bytes(bytes[16 + len..total].try_into().expect("8 bytes"));
        if fnv1a(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        Ok(SnapReader { payload, pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.payload.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the payload is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool written by [`SnapWriter::put_bool`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] on under-run; [`SnapshotError::Corrupt`]
    /// if the byte is neither 0 nor 1.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!(
                "bool byte must be 0 or 1, found {other}"
            ))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the payload is exhausted.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the payload is exhausted.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `usize` written by [`SnapWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] on under-run; [`SnapshotError::Corrupt`]
    /// if the value does not fit this platform's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("length {v} exceeds usize")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the payload is exhausted.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an optional `f64` written by [`SnapWriter::put_opt_f64`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] on under-run; [`SnapshotError::Corrupt`]
    /// on an invalid presence byte.
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        if self.get_bool()? {
            Ok(Some(self.get_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] on under-run; [`SnapshotError::Corrupt`]
    /// on invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("string is not valid UTF-8".into()))
    }

    /// Reads a length-prefixed raw byte slice.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the payload is exhausted.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.get_usize()?;
        self.take(len)
    }

    /// Bytes left unread in the payload.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if unread bytes remain.
    pub fn expect_done(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} unread payload bytes",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(12);
        w.put_f64(-0.5);
        w.put_opt_f64(Some(3.25));
        w.put_opt_f64(None);
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        w.finish()
    }

    #[test]
    fn round_trip_all_field_types() {
        let bytes = sample_frame();
        let mut r = SnapReader::open(&bytes).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 12);
        assert_eq!(r.get_f64().unwrap(), -0.5);
        assert_eq!(r.get_opt_f64().unwrap(), Some(3.25));
        assert_eq!(r.get_opt_f64().unwrap(), None);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        r.expect_done().unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample_frame();
        bytes[0] = b'X';
        assert_eq!(
            SnapReader::open(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SnapReader::open(b"nope").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn version_mismatch_reports_expected_and_found() {
        let mut bytes = sample_frame();
        bytes[4] = SNAPSHOT_VERSION as u8 + 1;
        assert_eq!(
            SnapReader::open(&bytes).unwrap_err(),
            SnapshotError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: SNAPSHOT_VERSION + 1,
            }
        );
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = sample_frame();
        for cut in 0..bytes.len() {
            let err = SnapReader::open(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch
                ),
                "cut {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn payload_bit_flip_fails_checksum() {
        let mut bytes = sample_frame();
        bytes[20] ^= 0x40;
        assert_eq!(
            SnapReader::open(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut bytes = sample_frame();
        bytes.push(0);
        assert!(matches!(
            SnapReader::open(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn field_overrun_is_truncated() {
        let mut w = SnapWriter::new();
        w.put_u8(1);
        let bytes = w.finish();
        let mut r = SnapReader::open(&bytes).unwrap();
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u64().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn display_messages_are_descriptive() {
        let v = SnapshotError::VersionMismatch {
            expected: 1,
            found: 9,
        };
        assert_eq!(
            v.to_string(),
            "snapshot format version mismatch: expected 1, found 9"
        );
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
    }
}
