//! GWA-T-12 Bitbrains trace support.
//!
//! The paper's realistic experiment replays the `Rnd` dataset of the
//! GWA-T-12 Bitbrains workload trace: resource usage of 500 VMs from a
//! managed-hosting data centre, repurposed as microservice demand. The
//! real dataset cannot be shipped with this repository, so this module
//! provides both:
//!
//! * [`VmTrace::parse_gwa`] — a parser for the actual GWA-T-12 per-VM CSV
//!   format (semicolon-separated, 300 s samples), so the genuine dataset
//!   can be dropped in, and
//! * [`SyntheticTrace`] — a deterministic generator producing traces with
//!   the `Rnd` dataset's qualitative features: a diurnal swell,
//!   autocorrelated noise, and heavy-tailed usage spikes (compare the
//!   paper's Fig. 9, which the fig9 bench plots from this output).
//!
//! The demand signal is consumed through [`trace_to_load_pattern`], which
//! turns a CPU-usage series into a piecewise-constant request-rate
//! [`LoadPattern`] exactly as the paper "re-purposed
//! this dataset to be applicable to our microservices use case and scaled
//! it to run on our cluster".

use hyscale_sim::SimRng;

use crate::pattern::LoadPattern;

/// One sample row of a GWA-T-12 VM trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceSample {
    /// Seconds since the trace epoch.
    pub timestamp_secs: f64,
    /// Number of virtual cores provisioned.
    pub cpu_cores: f64,
    /// CPU capacity provisioned, MHz.
    pub cpu_capacity_mhz: f64,
    /// CPU usage, MHz.
    pub cpu_usage_mhz: f64,
    /// CPU usage as a percentage of provisioned capacity.
    pub cpu_usage_pct: f64,
    /// Memory provisioned, KB.
    pub mem_capacity_kb: f64,
    /// Memory actively used, KB.
    pub mem_usage_kb: f64,
    /// Network received throughput, KB/s.
    pub net_rx_kbs: f64,
    /// Network transmitted throughput, KB/s.
    pub net_tx_kbs: f64,
}

impl TraceSample {
    /// Memory usage as a percentage of provisioned capacity.
    pub fn mem_usage_pct(&self) -> f64 {
        if self.mem_capacity_kb > 0.0 {
            (self.mem_usage_kb / self.mem_capacity_kb * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        }
    }
}

/// The usage time series of one VM.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VmTrace {
    /// Identifier (file stem for parsed traces, index for synthetic).
    pub name: String,
    /// Samples in timestamp order.
    pub samples: Vec<TraceSample>,
}

/// Error from parsing a GWA-T-12 CSV file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl VmTrace {
    /// Parses one GWA-T-12 per-VM CSV file (semicolon-separated, with the
    /// standard 11-column header). Rows with fewer than 11 fields are
    /// rejected; the header row (beginning with `Timestamp`) is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on the first malformed row.
    pub fn parse_gwa(name: impl Into<String>, text: &str) -> Result<VmTrace, ParseTraceError> {
        let mut samples = Vec::new();
        let mut epoch_ms: Option<f64> = None;
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with("Timestamp") || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(';').map(str::trim).collect();
            if fields.len() < 11 {
                return Err(ParseTraceError {
                    line: line_no,
                    reason: format!("expected 11 fields, found {}", fields.len()),
                });
            }
            let parse = |i: usize| -> Result<f64, ParseTraceError> {
                fields[i].parse::<f64>().map_err(|e| ParseTraceError {
                    line: line_no,
                    reason: format!("field {i} ({:?}): {e}", fields[i]),
                })
            };
            let ts_ms = parse(0)?;
            let epoch = *epoch_ms.get_or_insert(ts_ms);
            samples.push(TraceSample {
                timestamp_secs: (ts_ms - epoch) / 1000.0,
                cpu_cores: parse(1)?,
                cpu_capacity_mhz: parse(2)?,
                cpu_usage_mhz: parse(3)?,
                cpu_usage_pct: parse(4)?,
                mem_capacity_kb: parse(5)?,
                mem_usage_kb: parse(6)?,
                net_rx_kbs: parse(9)?,
                net_tx_kbs: parse(10)?,
            });
        }
        Ok(VmTrace {
            name: name.into(),
            samples,
        })
    }

    /// The CPU-usage-percent series.
    pub fn cpu_pct_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.cpu_usage_pct).collect()
    }

    /// The memory-usage-percent series.
    pub fn mem_pct_series(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(TraceSample::mem_usage_pct)
            .collect()
    }
}

/// Configuration of the synthetic Bitbrains-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTrace {
    /// Number of VMs to generate (the real `Rnd` set has 500).
    pub vms: usize,
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Sampling interval in seconds (GWA-T-12 uses 300 s).
    pub interval_secs: f64,
    /// Mean baseline CPU usage, percent.
    pub base_cpu_pct: f64,
    /// Amplitude of the diurnal swell, percent.
    pub diurnal_amplitude_pct: f64,
    /// Diurnal period in seconds (a "day"; compressed for experiments).
    pub diurnal_period_secs: f64,
    /// AR(1) autocorrelation of the noise term, in `[0, 1)`.
    pub noise_persistence: f64,
    /// Standard deviation of the noise innovation, percent.
    pub noise_std_pct: f64,
    /// Per-sample probability of a heavy-tailed usage spike.
    pub spike_probability: f64,
}

impl Default for SyntheticTrace {
    fn default() -> Self {
        SyntheticTrace {
            vms: 500,
            duration_secs: 3600.0,
            interval_secs: 30.0,
            base_cpu_pct: 18.0,
            diurnal_amplitude_pct: 22.0,
            diurnal_period_secs: 1800.0,
            noise_persistence: 0.6,
            noise_std_pct: 6.0,
            spike_probability: 0.04,
        }
    }
}

impl SyntheticTrace {
    /// Generates the per-VM traces deterministically from `rng`.
    ///
    /// Each VM gets its own phase, baseline, and noise stream; memory
    /// usage is generated as a slow-moving series loosely correlated with
    /// CPU, as observed in the real trace.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<VmTrace> {
        let steps = (self.duration_secs / self.interval_secs).ceil() as usize;
        (0..self.vms)
            .map(|vm| {
                let mut vm_rng = rng.split();
                let phase = vm_rng.uniform_range(0.0, std::f64::consts::TAU);
                let base = (self.base_cpu_pct * vm_rng.normal(1.0, 0.3)).clamp(2.0, 80.0);
                let mem_base = vm_rng.uniform_range(20.0, 60.0);
                let mut noise = 0.0;
                let mut mem = mem_base;
                let samples = (0..steps)
                    .map(|i| {
                        let t = i as f64 * self.interval_secs;
                        let diurnal = self.diurnal_amplitude_pct
                            * (std::f64::consts::TAU * t / self.diurnal_period_secs + phase)
                                .sin()
                                .max(-0.5);
                        noise =
                            self.noise_persistence * noise + vm_rng.normal(0.0, self.noise_std_pct);
                        let spike = if vm_rng.chance(self.spike_probability) {
                            vm_rng.pareto(8.0, 1.6).min(70.0)
                        } else {
                            0.0
                        };
                        let cpu_pct = (base + diurnal + noise + spike).clamp(0.0, 100.0);
                        // Memory: slow random walk pulled toward its base,
                        // nudged upward during CPU activity.
                        mem = (mem
                            + 0.1 * (mem_base - mem)
                            + 0.05 * (cpu_pct - base)
                            + vm_rng.normal(0.0, 1.0))
                        .clamp(5.0, 95.0);
                        let capacity_mhz = 2930.0 * 4.0;
                        let mem_capacity_kb = 8.0 * 1024.0 * 1024.0;
                        TraceSample {
                            timestamp_secs: t,
                            cpu_cores: 4.0,
                            cpu_capacity_mhz: capacity_mhz,
                            cpu_usage_mhz: capacity_mhz * cpu_pct / 100.0,
                            cpu_usage_pct: cpu_pct,
                            mem_capacity_kb,
                            mem_usage_kb: mem_capacity_kb * mem / 100.0,
                            net_rx_kbs: cpu_pct * 10.0,
                            net_tx_kbs: cpu_pct * 25.0,
                        }
                    })
                    .collect();
                VmTrace {
                    name: format!("vm-{vm}"),
                    samples,
                }
            })
            .collect()
    }
}

/// Averages many VM traces into one `(cpu %, mem %)` series — the
/// "averaged over all microservices" signal the paper plots in Fig. 9.
///
/// All traces must be sampled on the same grid; the output has the length
/// of the shortest trace.
pub fn aggregate_mean(traces: &[VmTrace]) -> Vec<(f64, f64, f64)> {
    let Some(min_len) = traces.iter().map(|t| t.samples.len()).min() else {
        return Vec::new();
    };
    (0..min_len)
        .map(|i| {
            let n = traces.len() as f64;
            let t = traces[0].samples[i].timestamp_secs;
            let cpu = traces
                .iter()
                .map(|tr| tr.samples[i].cpu_usage_pct)
                .sum::<f64>()
                / n;
            let mem = traces
                .iter()
                .map(|tr| tr.samples[i].mem_usage_pct())
                .sum::<f64>()
                / n;
            (t, cpu, mem)
        })
        .collect()
}

/// Converts a CPU-usage-percent series into a request-rate pattern: a VM
/// at `100%` CPU maps to `rate_at_full_load` requests per second.
///
/// This is the paper's re-purposing step — the trace provides the demand
/// *shape*, the microservice emulator provides the per-request costs.
pub fn trace_to_load_pattern(
    cpu_pct_series: &[f64],
    interval_secs: f64,
    rate_at_full_load: f64,
) -> LoadPattern {
    LoadPattern::Trace {
        samples: cpu_pct_series
            .iter()
            .map(|pct| (pct / 100.0 * rate_at_full_load).max(0.0))
            .collect(),
        interval_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_CSV: &str = "\
Timestamp [ms];CPU cores;CPU capacity provisioned [MHZ];CPU usage [MHZ];CPU usage [%];Memory capacity provisioned [KB];Memory usage [KB];Disk read throughput [KB/s];Disk write throughput [KB/s];Network received throughput [KB/s];Network transmitted throughput [KB/s]
1376314846000;4;11703.998;585.2;5.0;8388608;4194304;0;10.4;7.2;11.9
1376315146000;4;11703.998;1170.4;10.0;8388608;2097152;0;0;1.0;2.0
";

    #[test]
    fn parses_gwa_format() {
        let trace = VmTrace::parse_gwa("vm1", SAMPLE_CSV).unwrap();
        assert_eq!(trace.samples.len(), 2);
        let s0 = &trace.samples[0];
        assert_eq!(s0.timestamp_secs, 0.0);
        assert_eq!(s0.cpu_usage_pct, 5.0);
        assert_eq!(s0.mem_usage_pct(), 50.0);
        assert_eq!(s0.net_tx_kbs, 11.9);
        let s1 = &trace.samples[1];
        assert_eq!(s1.timestamp_secs, 300.0);
        assert_eq!(s1.mem_usage_pct(), 25.0);
    }

    #[test]
    fn rejects_malformed_rows() {
        let err = VmTrace::parse_gwa("bad", "1;2;3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("expected 11 fields"));

        let err = VmTrace::parse_gwa(
            "bad",
            "1376314846000;4;x;585.2;5.0;8388608;4194304;0;10.4;7.2;11.9\n",
        )
        .unwrap_err();
        assert!(err.reason.contains("field 2"));
    }

    #[test]
    fn skips_header_comments_and_blank_lines() {
        let text = format!("# comment\n\n{SAMPLE_CSV}\n\n");
        let trace = VmTrace::parse_gwa("vm1", &text).unwrap();
        assert_eq!(trace.samples.len(), 2);
    }

    #[test]
    fn synthetic_produces_requested_shape() {
        let cfg = SyntheticTrace {
            vms: 20,
            duration_secs: 600.0,
            interval_secs: 30.0,
            ..SyntheticTrace::default()
        };
        let mut rng = SimRng::seed_from(42);
        let traces = cfg.generate(&mut rng);
        assert_eq!(traces.len(), 20);
        for t in &traces {
            assert_eq!(t.samples.len(), 20);
            for s in &t.samples {
                assert!((0.0..=100.0).contains(&s.cpu_usage_pct));
                assert!((0.0..=100.0).contains(&s.mem_usage_pct()));
            }
        }
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let cfg = SyntheticTrace {
            vms: 5,
            duration_secs: 300.0,
            ..SyntheticTrace::default()
        };
        let a = cfg.generate(&mut SimRng::seed_from(7));
        let b = cfg.generate(&mut SimRng::seed_from(7));
        let c = cfg.generate(&mut SimRng::seed_from(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_has_bursts_and_variation() {
        let cfg = SyntheticTrace {
            vms: 50,
            duration_secs: 3600.0,
            ..SyntheticTrace::default()
        };
        let traces = cfg.generate(&mut SimRng::seed_from(1));
        let agg = aggregate_mean(&traces);
        let cpus: Vec<f64> = agg.iter().map(|&(_, c, _)| c).collect();
        let mean = cpus.iter().sum::<f64>() / cpus.len() as f64;
        let max = cpus.iter().copied().fold(0.0, f64::max);
        let min = cpus.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(mean > 5.0 && mean < 60.0, "mean {mean}");
        assert!(max - min > 5.0, "too flat: {min}..{max}");
    }

    #[test]
    fn aggregate_mean_averages_pointwise() {
        let make = |pct: f64| VmTrace {
            name: "t".into(),
            samples: vec![TraceSample {
                timestamp_secs: 0.0,
                cpu_usage_pct: pct,
                mem_capacity_kb: 100.0,
                mem_usage_kb: pct,
                ..TraceSample::default()
            }],
        };
        let agg = aggregate_mean(&[make(10.0), make(30.0)]);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].1, 20.0);
        assert_eq!(agg[0].2, 20.0);
        assert!(aggregate_mean(&[]).is_empty());
    }

    #[test]
    fn load_pattern_scales_cpu_percent_to_rate() {
        let p = trace_to_load_pattern(&[0.0, 50.0, 100.0], 10.0, 8.0);
        match &p {
            LoadPattern::Trace {
                samples,
                interval_secs,
            } => {
                assert_eq!(samples, &vec![0.0, 4.0, 8.0]);
                assert_eq!(*interval_secs, 10.0);
            }
            other => panic!("unexpected pattern {other:?}"),
        }
    }
}
