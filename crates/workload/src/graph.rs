//! Service dependency graphs: multi-tier request fan-out.
//!
//! HyScale's experiments drive independent microservices, but real
//! traffic traverses *call graphs*: a user request lands on an
//! entry-point service, and each completed hop spawns downstream RPCs on
//! its child services. A [`ServiceGraph`] declares that topology as a DAG
//! over the scenario's service indices, with per-edge fan-out (how many
//! child requests each parent request spawns) and per-edge demand
//! multipliers (how much heavier or lighter the child's work is relative
//! to its base profile).
//!
//! The graph is *pure topology*: it owns no runtime state. The driver in
//! `hyscale-core` walks it at completion time — admitting child work when
//! a parent hop finishes, which is exactly the inter-tier queueing the
//! paper's single-service experiments cannot express. Entry points are
//! the services with no parents; client load (arrival processes) is
//! attached only to them, while downstream tiers see purely derived
//! traffic.

/// One parent → child dependency: each completed parent request spawns
/// `fan_out` child requests whose per-request demands are the child
/// service's base demands scaled by the edge multipliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphEdge {
    /// Index of the upstream service (into the scenario's service list).
    pub parent: usize,
    /// Index of the downstream service.
    pub child: usize,
    /// Child requests spawned per completed parent request.
    pub fan_out: u64,
    /// Multiplier on the child's CPU core-seconds per request.
    pub cpu_mult: f64,
    /// Multiplier on the child's in-flight memory per request.
    pub mem_mult: f64,
    /// Multiplier on the child's egress megabits per request.
    pub net_mult: f64,
    /// Multiplier on the child's disk megabits per request.
    pub disk_mult: f64,
    /// Per-edge retry override; `None` inherits the scenario's default
    /// policy (see `ResilienceConfig` in `hyscale-core`).
    pub retry: Option<crate::RetryPolicy>,
}

impl GraphEdge {
    /// An edge with unit cost multipliers.
    pub fn new(parent: usize, child: usize, fan_out: u64) -> Self {
        GraphEdge {
            parent,
            child,
            fan_out,
            cpu_mult: 1.0,
            mem_mult: 1.0,
            net_mult: 1.0,
            disk_mult: 1.0,
            retry: None,
        }
    }

    /// Builder-style override of the CPU and network multipliers (the
    /// two cost dimensions the tentpole calls out); memory and disk keep
    /// their current values.
    pub fn with_costs(mut self, cpu_mult: f64, net_mult: f64) -> Self {
        self.cpu_mult = cpu_mult;
        self.net_mult = net_mult;
        self
    }

    /// Builder-style override of the memory and disk multipliers.
    pub fn with_mem_disk(mut self, mem_mult: f64, disk_mult: f64) -> Self {
        self.mem_mult = mem_mult;
        self.disk_mult = disk_mult;
        self
    }

    /// Builder-style per-edge retry policy, overriding the scenario
    /// default for this dependency only.
    pub fn with_retry(mut self, policy: crate::RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

/// A DAG of services describing multi-tier request flow.
///
/// Nodes are service *indices* (positions in the scenario's service
/// list), edges are [`GraphEdge`]s. A graph with no edges — in
/// particular the single-node graph — degenerates to the classic
/// independent-services model: every service is an entry point and no
/// derived traffic exists.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceGraph {
    nodes: usize,
    edges: Vec<GraphEdge>,
}

impl ServiceGraph {
    /// A graph over `nodes` services with no edges yet.
    pub fn new(nodes: usize) -> Self {
        ServiceGraph {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Builder-style edge with unit cost multipliers.
    pub fn with_edge(self, parent: usize, child: usize, fan_out: u64) -> Self {
        self.with_edge_spec(GraphEdge::new(parent, child, fan_out))
    }

    /// Builder-style fully-specified edge.
    pub fn with_edge_spec(mut self, edge: GraphEdge) -> Self {
        self.edges.push(edge);
        self
    }

    /// Number of services the graph spans.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// All edges, in insertion order (the driver spawns child work in
    /// this order, which keeps runs deterministic).
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Whether the graph carries no dependencies at all (every service
    /// independent — the legacy model).
    pub fn is_trivial(&self) -> bool {
        self.edges.is_empty()
    }

    /// Edges whose parent is `service`, in insertion order.
    pub fn children(&self, service: usize) -> impl Iterator<Item = &GraphEdge> {
        self.edges.iter().filter(move |e| e.parent == service)
    }

    /// Whether `service` has no incoming edges (client load attaches
    /// only to entry points).
    pub fn is_entry(&self, service: usize) -> bool {
        self.edges.iter().all(|e| e.child != service)
    }

    /// The entry-point services (no parents), ascending.
    pub fn entry_points(&self) -> Vec<usize> {
        (0..self.nodes).filter(|&s| self.is_entry(s)).collect()
    }

    /// Validates the graph: every edge endpoint in range, no self-loops,
    /// positive fan-out, finite positive multipliers, no duplicate
    /// parent→child edge, and no cycles (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("service graph must span at least one service".into());
        }
        let mut seen: Vec<(usize, usize)> = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            if e.parent >= self.nodes || e.child >= self.nodes {
                return Err(format!(
                    "edge {} -> {} references a service outside 0..{}",
                    e.parent, e.child, self.nodes
                ));
            }
            if e.parent == e.child {
                return Err(format!("self-loop on service {}", e.parent));
            }
            if e.fan_out == 0 {
                return Err(format!(
                    "edge {} -> {} must have fan_out >= 1",
                    e.parent, e.child
                ));
            }
            for (name, m) in [
                ("cpu_mult", e.cpu_mult),
                ("mem_mult", e.mem_mult),
                ("net_mult", e.net_mult),
                ("disk_mult", e.disk_mult),
            ] {
                if !(m.is_finite() && m > 0.0) {
                    return Err(format!(
                        "edge {} -> {}: {name} must be finite and positive, got {m}",
                        e.parent, e.child
                    ));
                }
            }
            if let Some(policy) = &e.retry {
                policy.validate().map_err(|reason| {
                    format!("edge {} -> {}: retry: {reason}", e.parent, e.child)
                })?;
            }
            if seen.contains(&(e.parent, e.child)) {
                return Err(format!("duplicate edge {} -> {}", e.parent, e.child));
            }
            seen.push((e.parent, e.child));
        }
        // Kahn's algorithm: repeatedly strip nodes with no remaining
        // parents; leftovers mean a cycle.
        let mut indegree = vec![0usize; self.nodes];
        for e in &self.edges {
            indegree[e.child] += 1;
        }
        let mut queue: Vec<usize> = (0..self.nodes).filter(|&s| indegree[s] == 0).collect();
        let mut stripped = 0usize;
        while let Some(s) = queue.pop() {
            stripped += 1;
            for e in self.children(s) {
                indegree[e.child] -= 1;
                if indegree[e.child] == 0 {
                    queue.push(e.child);
                }
            }
        }
        if stripped != self.nodes {
            return Err("service graph contains a cycle".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_graph_is_trivial_and_valid() {
        let g = ServiceGraph::new(1);
        assert!(g.validate().is_ok());
        assert!(g.is_trivial());
        assert_eq!(g.entry_points(), vec![0]);
        assert!(g.is_entry(0));
    }

    #[test]
    fn three_tier_fan_out_topology() {
        let g = ServiceGraph::new(4)
            .with_edge(0, 1, 2)
            .with_edge(0, 2, 1)
            .with_edge(1, 3, 3)
            .with_edge(2, 3, 1);
        assert!(g.validate().is_ok());
        assert_eq!(g.entry_points(), vec![0]);
        assert!(!g.is_entry(3));
        let kids: Vec<usize> = g.children(0).map(|e| e.child).collect();
        assert_eq!(kids, vec![1, 2]);
        assert_eq!(g.children(3).count(), 0);
    }

    #[test]
    fn validation_rejects_cycles() {
        let g = ServiceGraph::new(3)
            .with_edge(0, 1, 1)
            .with_edge(1, 2, 1)
            .with_edge(2, 0, 1);
        let err = g.validate().unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn validation_rejects_bad_edges() {
        assert!(ServiceGraph::new(0).validate().is_err());
        assert!(ServiceGraph::new(2)
            .with_edge(0, 5, 1)
            .validate()
            .unwrap_err()
            .contains("outside"));
        assert!(ServiceGraph::new(2)
            .with_edge(1, 1, 1)
            .validate()
            .unwrap_err()
            .contains("self-loop"));
        assert!(ServiceGraph::new(2)
            .with_edge(0, 1, 0)
            .validate()
            .unwrap_err()
            .contains("fan_out"));
        assert!(ServiceGraph::new(2)
            .with_edge_spec(GraphEdge::new(0, 1, 1).with_costs(f64::NAN, 1.0))
            .validate()
            .unwrap_err()
            .contains("cpu_mult"));
        assert!(ServiceGraph::new(2)
            .with_edge(0, 1, 1)
            .with_edge(0, 1, 2)
            .validate()
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn edge_builders_set_multipliers() {
        let e = GraphEdge::new(0, 1, 4)
            .with_costs(2.0, 0.5)
            .with_mem_disk(3.0, 4.0);
        assert_eq!(e.fan_out, 4);
        assert_eq!(e.cpu_mult, 2.0);
        assert_eq!(e.net_mult, 0.5);
        assert_eq!(e.mem_mult, 3.0);
        assert_eq!(e.disk_mult, 4.0);
    }

    #[test]
    fn edge_retry_override_validates() {
        let good = crate::RetryPolicy::standard();
        let g = ServiceGraph::new(2).with_edge_spec(GraphEdge::new(0, 1, 1).with_retry(good));
        assert!(g.validate().is_ok());
        assert_eq!(g.edges()[0].retry, Some(good));

        let bad = crate::RetryPolicy::standard().with_max_attempts(0);
        let err = ServiceGraph::new(2)
            .with_edge_spec(GraphEdge::new(0, 1, 1).with_retry(bad))
            .validate()
            .unwrap_err();
        assert!(err.contains("retry"), "{err}");
        assert!(err.contains("max_attempts"), "{err}");
    }

    #[test]
    fn diamond_is_acyclic() {
        let g = ServiceGraph::new(4)
            .with_edge(0, 1, 1)
            .with_edge(0, 2, 1)
            .with_edge(1, 3, 1)
            .with_edge(2, 3, 1);
        assert!(g.validate().is_ok());
        // Node 3 has two parents but the graph is still a DAG.
        assert_eq!(g.entry_points(), vec![0]);
    }
}
