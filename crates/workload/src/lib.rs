//! Microservice workloads for the HyScale experiments.
//!
//! The paper drives its platform with a custom Java microservice whose
//! per-request resource consumption is configurable, under two client-load
//! shapes — a stable *low-burst* wave and an unstable *high-burst* spiking
//! wave — plus a replay of the GWA-T-12 Bitbrains `Rnd` data-centre trace.
//! This crate reproduces all three:
//!
//! * [`ServiceSpec`] / [`ServiceProfile`] — the emulated microservice and
//!   its per-request CPU / memory / network demands,
//! * [`LoadPattern`] / [`ArrivalProcess`] — non-homogeneous Poisson client
//!   load with the paper's wave shapes,
//! * [`bitbrains`] — a parser for the real GWA-T-12 CSV format and a
//!   synthetic generator matched to the trace's qualitative behaviour
//!   (the real dataset is not redistributable; see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use hyscale_sim::{SimRng, SimTime};
//! use hyscale_workload::{ArrivalProcess, LoadPattern, ServiceProfile, ServiceSpec};
//!
//! let spec = ServiceSpec::synthetic(0, ServiceProfile::CpuBound, LoadPattern::low_burst());
//! let mut rng = SimRng::seed_from(1);
//! let mut arrivals = ArrivalProcess::new(spec.load.clone());
//! let first = arrivals.next_arrival(SimTime::ZERO, &mut rng);
//! assert!(first > SimTime::ZERO);
//! let request = spec.make_request(first, &mut rng);
//! assert!(request.cpu_secs > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitbrains;
mod graph;
mod pattern;
mod profile;
mod retry;

pub use graph::{GraphEdge, ServiceGraph};
pub use pattern::{ArrivalProcess, LoadPattern};
pub use profile::{ServiceProfile, ServiceSpec};
pub use retry::RetryPolicy;
