//! Emulated microservices and their per-request resource demands.
//!
//! The paper presents the system with four microservice types —
//! CPU-bound, memory-bound, network-bound, and mixed CPU+memory — realized
//! by a configurable Java service that consumes a specified amount of
//! resources per incoming request. [`ServiceSpec`] is that service:
//! construct one per microservice, then call
//! [`ServiceSpec::make_request`] for each client arrival.

use hyscale_cluster::{Cohort, ContainerSpec, Cores, Mbps, MemMb, Request, ServiceId};
use hyscale_sim::{SimDuration, SimRng, SimTime};

use crate::pattern::LoadPattern;

/// The resource flavour of a microservice (Sec. VI experimental types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceProfile {
    /// Consumes CPU time per request.
    CpuBound,
    /// Holds a large in-flight memory footprint per request.
    MemBound,
    /// Pushes a bulk egress payload per request.
    NetBound,
    /// Reads/writes bulk data on disk per request (the paper's named
    /// future-work resource type).
    DiskBound,
    /// Consumes both CPU and memory per request (the paper's "mixed").
    Mixed,
}

impl std::fmt::Display for ServiceProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceProfile::CpuBound => write!(f, "cpu-bound"),
            ServiceProfile::MemBound => write!(f, "mem-bound"),
            ServiceProfile::NetBound => write!(f, "net-bound"),
            ServiceProfile::DiskBound => write!(f, "disk-bound"),
            ServiceProfile::Mixed => write!(f, "mixed"),
        }
    }
}

impl std::str::FromStr for ServiceProfile {
    type Err = String;

    /// Parses the [`std::fmt::Display`] labels back (as used by
    /// experiment config files): `cpu-bound`, `mem-bound`, `net-bound`,
    /// `disk-bound`, `mixed`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cpu-bound" => Ok(ServiceProfile::CpuBound),
            "mem-bound" => Ok(ServiceProfile::MemBound),
            "net-bound" => Ok(ServiceProfile::NetBound),
            "disk-bound" => Ok(ServiceProfile::DiskBound),
            "mixed" => Ok(ServiceProfile::Mixed),
            other => Err(format!(
                "unknown service profile '{other}' \
                 (expected cpu-bound, mem-bound, net-bound, disk-bound, or mixed)"
            )),
        }
    }
}

/// One emulated microservice: identity, per-request demands, client load,
/// and the container template its replicas are launched from.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// The service's identifier.
    pub id: ServiceId,
    /// Human-readable name.
    pub name: String,
    /// The resource flavour.
    pub profile: ServiceProfile,
    /// Mean CPU work per request, core-seconds.
    pub cpu_secs_per_req: f64,
    /// Mean in-flight memory per request.
    pub mem_per_req: MemMb,
    /// Mean egress payload per request, megabits.
    pub megabits_per_req: f64,
    /// Mean disk traffic per request, megabits.
    pub disk_megabits_per_req: f64,
    /// Multiplicative jitter on each demand, as a relative standard
    /// deviation (0.0 disables jitter).
    pub jitter: f64,
    /// Client request timeout.
    pub timeout: SimDuration,
    /// Client load shape driving this service.
    pub load: LoadPattern,
    /// Template for this service's replicas.
    pub container: ContainerSpec,
}

impl ServiceSpec {
    /// Creates a service of the given profile with calibrated default
    /// demands, suitable for the paper-scale experiments.
    ///
    /// Defaults per profile (mean per request):
    ///
    /// | profile    | CPU (core-s) | memory (MB) | egress (Mb) |
    /// |-----------|--------------|-------------|-------------|
    /// | CpuBound  | 0.20         | 4           | 0.1         |
    /// | MemBound  | 0.02         | 48          | 0.1         |
    /// | NetBound  | 0.01         | 4           | 8.0         |
    /// | DiskBound | 0.02         | 8           | 0.2         |
    /// | Mixed     | 0.12         | 32          | 0.2         |
    ///
    /// DiskBound services additionally read/write 12 Mb of disk traffic
    /// per request.
    pub fn synthetic(index: u32, profile: ServiceProfile, load: LoadPattern) -> Self {
        let id = ServiceId::new(index);
        let (cpu, mem, net, disk) = match profile {
            ServiceProfile::CpuBound => (0.20, 4.0, 0.1, 0.0),
            ServiceProfile::MemBound => (0.02, 48.0, 0.1, 0.0),
            ServiceProfile::NetBound => (0.01, 4.0, 8.0, 0.0),
            ServiceProfile::DiskBound => (0.02, 8.0, 0.2, 12.0),
            ServiceProfile::Mixed => (0.12, 32.0, 0.2, 0.0),
        };
        let container = ContainerSpec::new(id)
            .with_cpu_request(Cores(0.5))
            .with_mem_limit(MemMb(256.0))
            .with_net_request(Mbps(50.0))
            .with_startup_secs(1.0);
        ServiceSpec {
            id,
            name: format!("{profile}-{index}"),
            profile,
            cpu_secs_per_req: cpu,
            mem_per_req: MemMb(mem),
            megabits_per_req: net,
            disk_megabits_per_req: disk,
            jitter: 0.15,
            timeout: SimDuration::from_secs(30.0),
            load,
            container,
        }
    }

    /// Builder-style override of the per-request demands.
    pub fn with_demands(mut self, cpu_secs: f64, mem: MemMb, megabits: f64) -> Self {
        self.cpu_secs_per_req = cpu_secs;
        self.mem_per_req = mem;
        self.megabits_per_req = megabits;
        self
    }

    /// Builder-style override of the per-request disk traffic.
    pub fn with_disk_per_req(mut self, disk_megabits: f64) -> Self {
        self.disk_megabits_per_req = disk_megabits;
        self
    }

    /// Builder-style override of the demand jitter.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Builder-style override of the request timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Builder-style override of the container template.
    pub fn with_container(mut self, container: ContainerSpec) -> Self {
        self.container = container;
        self
    }

    /// Builder-style override of the load pattern.
    pub fn with_load(mut self, load: LoadPattern) -> Self {
        self.load = load;
        self
    }

    /// Materializes one client request arriving at `arrival`, with jitter
    /// applied to each demand dimension.
    pub fn make_request(&self, arrival: SimTime, rng: &mut SimRng) -> Request {
        let jitter = |rng: &mut SimRng, mean: f64| -> f64 {
            if self.jitter <= 0.0 || mean <= 0.0 {
                mean
            } else {
                // Lognormal-ish: clamp a normal multiplier away from zero.
                (mean * rng.normal(1.0, self.jitter)).max(mean * 0.1)
            }
        };
        Request::new(
            self.id,
            arrival,
            jitter(rng, self.cpu_secs_per_req),
            MemMb(jitter(rng, self.mem_per_req.get())),
            jitter(rng, self.megabits_per_req),
        )
        .with_disk(jitter(rng, self.disk_megabits_per_req))
        .with_timeout(self.timeout)
    }

    /// Materializes a cohort of `count` identical requests arriving at
    /// `arrival`. One jitter draw per demand dimension is shared by all
    /// members — the cohort is a fluid batch of one flow, not `count`
    /// independent samples — so building it consumes exactly as much of
    /// the RNG stream as a single [`ServiceSpec::make_request`].
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn make_cohort(&self, arrival: SimTime, count: u64, rng: &mut SimRng) -> Cohort {
        Cohort::from_request(&self.make_request(arrival, rng), count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(profile: ServiceProfile) -> ServiceSpec {
        ServiceSpec::synthetic(3, profile, LoadPattern::low_burst())
    }

    #[test]
    fn profiles_shape_demands() {
        let cpu = spec(ServiceProfile::CpuBound);
        let mem = spec(ServiceProfile::MemBound);
        let net = spec(ServiceProfile::NetBound);
        let mixed = spec(ServiceProfile::Mixed);
        assert!(cpu.cpu_secs_per_req > mem.cpu_secs_per_req);
        assert!(mem.mem_per_req.get() > cpu.mem_per_req.get());
        assert!(net.megabits_per_req > cpu.megabits_per_req * 10.0);
        assert!(mixed.cpu_secs_per_req > mem.cpu_secs_per_req);
        assert!(mixed.mem_per_req.get() > cpu.mem_per_req.get());
    }

    #[test]
    fn name_embeds_profile_and_index() {
        assert_eq!(spec(ServiceProfile::CpuBound).name, "cpu-bound-3");
        assert_eq!(spec(ServiceProfile::Mixed).name, "mixed-3");
    }

    #[test]
    fn make_request_applies_jitter_around_mean() {
        let s = spec(ServiceProfile::CpuBound);
        let mut rng = SimRng::seed_from(1);
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|i| {
                s.make_request(SimTime::from_secs(i as f64), &mut rng)
                    .cpu_secs
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.20).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let s = spec(ServiceProfile::NetBound).with_jitter(0.0);
        let mut rng = SimRng::seed_from(1);
        let a = s.make_request(SimTime::ZERO, &mut rng);
        let b = s.make_request(SimTime::ZERO, &mut rng);
        assert_eq!(a.cpu_secs, b.cpu_secs);
        assert_eq!(a.megabits_out, b.megabits_out);
        assert_eq!(a.megabits_out, 8.0);
    }

    #[test]
    fn jittered_demands_stay_positive() {
        let s = spec(ServiceProfile::MemBound).with_jitter(1.0); // extreme jitter
        let mut rng = SimRng::seed_from(2);
        for i in 0..2_000 {
            let r = s.make_request(SimTime::from_secs(i as f64), &mut rng);
            assert!(r.cpu_secs > 0.0);
            assert!(r.mem.get() > 0.0);
            assert!(r.megabits_out > 0.0);
        }
    }

    #[test]
    fn builders_override_fields() {
        let s = spec(ServiceProfile::CpuBound)
            .with_demands(1.0, MemMb(10.0), 2.0)
            .with_timeout(SimDuration::from_secs(5.0));
        assert_eq!(s.cpu_secs_per_req, 1.0);
        assert_eq!(s.mem_per_req, MemMb(10.0));
        assert_eq!(s.timeout, SimDuration::from_secs(5.0));
        let mut rng = SimRng::seed_from(3);
        let r = s.make_request(SimTime::ZERO, &mut rng);
        assert_eq!(r.timeout, SimDuration::from_secs(5.0));
        assert_eq!(r.service, ServiceId::new(3));
    }

    #[test]
    fn make_cohort_matches_one_request_draw() {
        let s = spec(ServiceProfile::Mixed);
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let r = s.make_request(SimTime::from_secs(2.0), &mut a);
        let c = s.make_cohort(SimTime::from_secs(2.0), 1_000, &mut b);
        assert_eq!(c.count, 1_000);
        assert_eq!(c.cpu_secs, r.cpu_secs);
        assert_eq!(c.mem, r.mem);
        assert_eq!(c.megabits_out, r.megabits_out);
        assert_eq!(c.disk_megabits, r.disk_megabits);
        assert_eq!(c.timeout, r.timeout);
        // RNG streams stay in lockstep afterwards.
        assert_eq!(a.uniform_f64(), b.uniform_f64());
    }

    #[test]
    fn from_str_round_trips_display_labels() {
        for p in [
            ServiceProfile::CpuBound,
            ServiceProfile::MemBound,
            ServiceProfile::NetBound,
            ServiceProfile::DiskBound,
            ServiceProfile::Mixed,
        ] {
            assert_eq!(p.to_string().parse::<ServiceProfile>(), Ok(p));
        }
    }

    #[test]
    fn from_str_rejects_unknown_names() {
        let err = "gpu-bound".parse::<ServiceProfile>().unwrap_err();
        assert!(err.contains("unknown service profile 'gpu-bound'"), "{err}");
        assert!(
            err.contains("cpu-bound"),
            "error should list options: {err}"
        );
        // Case matters: the display labels are lowercase.
        assert!("CPU-BOUND".parse::<ServiceProfile>().is_err());
        // Surrounding whitespace is not trimmed.
        assert!(" cpu-bound".parse::<ServiceProfile>().is_err());
    }

    #[test]
    fn from_str_rejects_empty_string() {
        let err = "".parse::<ServiceProfile>().unwrap_err();
        assert!(err.contains("unknown service profile ''"), "{err}");
    }

    #[test]
    fn display_of_profiles() {
        assert_eq!(ServiceProfile::CpuBound.to_string(), "cpu-bound");
        assert_eq!(ServiceProfile::MemBound.to_string(), "mem-bound");
        assert_eq!(ServiceProfile::NetBound.to_string(), "net-bound");
        assert_eq!(ServiceProfile::DiskBound.to_string(), "disk-bound");
        assert_eq!(ServiceProfile::Mixed.to_string(), "mixed");
    }

    #[test]
    fn disk_bound_services_emit_disk_traffic() {
        let s = spec(ServiceProfile::DiskBound).with_jitter(0.0);
        let mut rng = SimRng::seed_from(1);
        let r = s.make_request(SimTime::ZERO, &mut rng);
        assert_eq!(r.disk_megabits, 12.0);
        let c = spec(ServiceProfile::CpuBound).with_jitter(0.0);
        assert_eq!(c.make_request(SimTime::ZERO, &mut rng).disk_megabits, 0.0);
        let custom = spec(ServiceProfile::CpuBound)
            .with_disk_per_req(5.0)
            .with_jitter(0.0);
        assert_eq!(
            custom.make_request(SimTime::ZERO, &mut rng).disk_megabits,
            5.0
        );
    }
}
