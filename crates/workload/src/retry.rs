//! Per-hop retry policies: how many times a lost hop may be re-issued,
//! how long it backs off, and which failure kinds are worth retrying.
//!
//! A [`RetryPolicy`] is pure configuration — the driver's graph tracker
//! owns the runtime state (attempt counters, backoff deadlines, budget
//! tokens). Policies attach per scenario (a default for every edge) and
//! per [`GraphEdge`](crate::GraphEdge) (an override for one dependency),
//! mirroring how real service meshes configure retries per route.
//!
//! The failure taxonomy decides retryability: queue aborts and
//! infrastructure deaths are transient (another replica may accept the
//! work), client-deadline timeouts usually are not (the work already
//! burned its latency budget), and scale-in removals are a *policy*
//! decision, never retried — charging them back as load would hide the
//! cost of aggressive scale-in the paper measures.

use hyscale_cluster::FailureKind;

/// Retry configuration for one service dependency hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total delivery attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in seconds; doubles per attempt.
    pub base_backoff_secs: f64,
    /// Ceiling on the exponential backoff, in seconds.
    pub max_backoff_secs: f64,
    /// Jitter amplitude as a fraction of the backoff: the drawn backoff
    /// is `backoff * (1 + jitter_frac * u)` with `u` uniform in
    /// `[-1, 1)`. Must be in `[0, 1)`.
    pub jitter_frac: f64,
    /// Whether deadline timeouts are retried.
    pub retry_timeout: bool,
    /// Whether admission rejections (queue aborts) are retried.
    pub retry_queue_abort: bool,
    /// Whether infrastructure deaths (node crash, OOM kill) are retried.
    pub retry_infra_death: bool,
}

impl RetryPolicy {
    /// No retries at all: one attempt, every failure is final. A
    /// scenario whose every policy is `off()` behaves bit-identically to
    /// a build without the resilience layer.
    pub fn off() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_secs: 0.0,
            max_backoff_secs: 0.0,
            jitter_frac: 0.0,
            retry_timeout: false,
            retry_queue_abort: false,
            retry_infra_death: false,
        }
    }

    /// A sensible mesh-style default: 3 total attempts, 0.5 s base
    /// backoff capped at 8 s with 10% jitter, retrying queue aborts and
    /// infrastructure deaths but not client-deadline timeouts.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_secs: 0.5,
            max_backoff_secs: 8.0,
            jitter_frac: 0.1,
            retry_timeout: false,
            retry_queue_abort: true,
            retry_infra_death: true,
        }
    }

    /// Builder-style override of the attempt count.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Builder-style override of the backoff curve.
    pub fn with_backoff(mut self, base_secs: f64, max_secs: f64, jitter_frac: f64) -> Self {
        self.base_backoff_secs = base_secs;
        self.max_backoff_secs = max_secs;
        self.jitter_frac = jitter_frac;
        self
    }

    /// Builder-style override of which failure kinds are retried.
    pub fn with_retryable(mut self, timeout: bool, queue_abort: bool, infra_death: bool) -> Self {
        self.retry_timeout = timeout;
        self.retry_queue_abort = queue_abort;
        self.retry_infra_death = infra_death;
        self
    }

    /// Whether this policy can ever retry anything.
    pub fn is_off(&self) -> bool {
        self.max_attempts <= 1
            || !(self.retry_timeout || self.retry_queue_abort || self.retry_infra_death)
    }

    /// Whether a failure of `kind` is retryable under this policy.
    /// Scale-in removals never are: retrying them would charge the
    /// scaler's own decisions back as client load.
    pub fn retries(&self, kind: FailureKind) -> bool {
        match kind {
            FailureKind::Removal => false,
            FailureKind::Timeout => self.retry_timeout,
            FailureKind::QueueAbort => self.retry_queue_abort,
            FailureKind::InfraDeath => self.retry_infra_death,
        }
    }

    /// The un-jittered backoff before retry number `attempt + 1`, where
    /// `attempt` counts delivery attempts already made minus one (the
    /// first retry, after attempt 0, waits the base backoff).
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let doubling = 2f64.powi(attempt.min(62) as i32);
        (self.base_backoff_secs * doubling).min(self.max_backoff_secs)
    }

    /// Validates the policy's numeric fields.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        if !(self.base_backoff_secs.is_finite() && self.base_backoff_secs >= 0.0) {
            return Err(format!(
                "base_backoff_secs must be finite and non-negative, got {}",
                self.base_backoff_secs
            ));
        }
        if !(self.max_backoff_secs.is_finite() && self.max_backoff_secs >= self.base_backoff_secs) {
            return Err(format!(
                "max_backoff_secs must be finite and >= base_backoff_secs, got {}",
                self.max_backoff_secs
            ));
        }
        if !(self.jitter_frac.is_finite() && (0.0..1.0).contains(&self.jitter_frac)) {
            return Err(format!(
                "jitter_frac must be in [0, 1), got {}",
                self.jitter_frac
            ));
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_policy_retries_nothing() {
        let p = RetryPolicy::off();
        assert!(p.is_off());
        assert!(p.validate().is_ok());
        for kind in [
            FailureKind::Removal,
            FailureKind::Timeout,
            FailureKind::QueueAbort,
            FailureKind::InfraDeath,
        ] {
            assert!(!p.retries(kind));
        }
    }

    #[test]
    fn standard_policy_retries_transient_kinds_only() {
        let p = RetryPolicy::standard();
        assert!(!p.is_off());
        assert!(p.validate().is_ok());
        assert!(p.retries(FailureKind::QueueAbort));
        assert!(p.retries(FailureKind::InfraDeath));
        assert!(!p.retries(FailureKind::Timeout));
        assert!(!p.retries(FailureKind::Removal));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::standard().with_backoff(1.0, 5.0, 0.0);
        assert_eq!(p.backoff_secs(0), 1.0);
        assert_eq!(p.backoff_secs(1), 2.0);
        assert_eq!(p.backoff_secs(2), 4.0);
        assert_eq!(p.backoff_secs(3), 5.0);
        assert_eq!(p.backoff_secs(200), 5.0);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(RetryPolicy::standard()
            .with_max_attempts(0)
            .validate()
            .unwrap_err()
            .contains("max_attempts"));
        assert!(RetryPolicy::standard()
            .with_backoff(-1.0, 8.0, 0.1)
            .validate()
            .unwrap_err()
            .contains("base_backoff_secs"));
        assert!(RetryPolicy::standard()
            .with_backoff(2.0, 1.0, 0.1)
            .validate()
            .unwrap_err()
            .contains("max_backoff_secs"));
        assert!(RetryPolicy::standard()
            .with_backoff(0.5, 8.0, 1.5)
            .validate()
            .unwrap_err()
            .contains("jitter_frac"));
    }

    #[test]
    fn removals_are_never_retryable() {
        let p = RetryPolicy::standard().with_retryable(true, true, true);
        assert!(!p.retries(FailureKind::Removal));
        assert!(p.retries(FailureKind::Timeout));
    }
}
