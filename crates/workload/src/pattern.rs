//! Client load shapes and the non-homogeneous Poisson arrival process.
//!
//! The paper's microbenchmarks use two wave-like client loads emulating
//! peak/off-peak hours: a stable **low-burst** pattern ("low amplitude
//! bursty traffic") and an unstable **high-burst** pattern ("a spiking
//! pattern ... repeated peaks and troughs in client activity"). We model
//! client arrivals as a Poisson process whose rate follows the configured
//! shape, sampled by thinning.

use hyscale_sim::{SimRng, SimTime};

/// A time-varying request arrival rate, in requests per second.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadPattern {
    /// Constant rate.
    Constant {
        /// Requests per second.
        rate: f64,
    },
    /// A smooth sinusoidal wave: `base + amplitude·(1 + sin(2πt/period))/2`.
    ///
    /// The paper's *low-burst* stable load.
    Wave {
        /// Trough rate, requests per second.
        base: f64,
        /// Peak-to-trough swing, requests per second.
        amplitude: f64,
        /// Wave period in seconds.
        period_secs: f64,
    },
    /// A square-ish spiking wave: `base` rate with periodic bursts to
    /// `peak` lasting `duty` of each period.
    ///
    /// The paper's *high-burst* unstable load.
    Burst {
        /// Off-peak rate, requests per second.
        base: f64,
        /// Burst rate, requests per second.
        peak: f64,
        /// Burst period in seconds.
        period_secs: f64,
        /// Fraction of each period spent at `peak`, in `(0, 1)`.
        duty: f64,
    },
    /// Piecewise-constant rates replayed from a trace: sample `i` applies
    /// during `[i·interval, (i+1)·interval)`; the last sample persists.
    Trace {
        /// Requests-per-second samples.
        samples: Vec<f64>,
        /// Seconds each sample covers.
        interval_secs: f64,
    },
}

impl LoadPattern {
    /// The paper-flavoured stable load: gentle wave between 4 and 10 req/s
    /// with a 10-minute period (emulated peak/off-peak "hours").
    pub fn low_burst() -> Self {
        LoadPattern::Wave {
            base: 4.0,
            amplitude: 6.0,
            period_secs: 600.0,
        }
    }

    /// The paper-flavoured unstable load: 2 req/s background with spikes
    /// to 20 req/s for 25% of each 10-minute period.
    pub fn high_burst() -> Self {
        LoadPattern::Burst {
            base: 2.0,
            peak: 20.0,
            period_secs: 600.0,
            duty: 0.25,
        }
    }

    /// Scales every rate in the pattern by `factor` (for sizing workloads
    /// to clusters of different capacity).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> LoadPattern {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        match self {
            LoadPattern::Constant { rate } => LoadPattern::Constant {
                rate: rate * factor,
            },
            LoadPattern::Wave {
                base,
                amplitude,
                period_secs,
            } => LoadPattern::Wave {
                base: base * factor,
                amplitude: amplitude * factor,
                period_secs: *period_secs,
            },
            LoadPattern::Burst {
                base,
                peak,
                period_secs,
                duty,
            } => LoadPattern::Burst {
                base: base * factor,
                peak: peak * factor,
                period_secs: *period_secs,
                duty: *duty,
            },
            LoadPattern::Trace {
                samples,
                interval_secs,
            } => LoadPattern::Trace {
                samples: samples.iter().map(|s| s * factor).collect(),
                interval_secs: *interval_secs,
            },
        }
    }

    /// The arrival rate at time `t`, in requests per second.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let secs = t.as_secs();
        match self {
            LoadPattern::Constant { rate } => rate.max(0.0),
            LoadPattern::Wave {
                base,
                amplitude,
                period_secs,
            } => {
                let phase = 2.0 * std::f64::consts::PI * secs / period_secs.max(1e-9);
                (base + amplitude * (1.0 + phase.sin()) / 2.0).max(0.0)
            }
            LoadPattern::Burst {
                base,
                peak,
                period_secs,
                duty,
            } => {
                let pos = (secs / period_secs.max(1e-9)).fract();
                if pos < duty.clamp(0.0, 1.0) {
                    peak.max(0.0)
                } else {
                    base.max(0.0)
                }
            }
            LoadPattern::Trace {
                samples,
                interval_secs,
            } => {
                if samples.is_empty() {
                    return 0.0;
                }
                let idx = ((secs / interval_secs.max(1e-9)) as usize).min(samples.len() - 1);
                samples[idx].max(0.0)
            }
        }
    }

    /// A conservative upper bound on the rate anywhere in the half-open
    /// window `[from, to)` — never less than `rate_at(t)` for any `t` in
    /// the window, but possibly larger. The time-warp fast path uses this
    /// to prove a window silent (`max_rate_in == 0`) before skipping it in
    /// closed form. Returns `0.0` for an empty or inverted window.
    pub fn max_rate_in(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let (a, b) = (from.as_secs(), to.as_secs());
        match self {
            LoadPattern::Constant { rate } => rate.max(0.0),
            LoadPattern::Wave {
                base,
                amplitude,
                period_secs,
            } => {
                let p = period_secs.max(1e-9);
                // The wave crests (sin = 1) at p/4 + k·p. If a crest falls
                // inside the window the bound is the peak; otherwise the
                // sinusoid has no interior maximum there, so the supremum
                // is approached at an endpoint.
                let k = ((a - 0.25 * p) / p).ceil();
                let crest = 0.25 * p + k * p;
                if b - a >= p || (crest >= a && crest < b) {
                    (base + amplitude).max(0.0)
                } else {
                    self.rate_at(from).max(self.rate_at(to))
                }
            }
            LoadPattern::Burst {
                base,
                peak,
                period_secs,
                duty,
            } => {
                let p = period_secs.max(1e-9);
                let duty = duty.clamp(0.0, 1.0);
                // Burst k occupies [k·p, k·p + duty·p). A window shorter
                // than one period overlaps at most two of them.
                let k0 = (a / p).floor();
                let hits_burst = duty > 0.0
                    && (0..=((b - a) / p).ceil() as u64 + 1).any(|i| {
                        let start = (k0 + i as f64) * p;
                        start < b && a < start + duty * p
                    });
                if hits_burst {
                    base.max(*peak).max(0.0)
                } else {
                    base.max(0.0)
                }
            }
            LoadPattern::Trace {
                samples,
                interval_secs,
            } => {
                if samples.is_empty() {
                    return 0.0;
                }
                let interval = interval_secs.max(1e-9);
                let last = samples.len() - 1;
                let lo = ((a / interval) as usize).min(last);
                // Half-open window: the sample slot containing `b` itself
                // only matters if the window extends into it, which the
                // ceil-minus-one below over-approximates safely.
                let hi = ((b / interval).ceil() as usize)
                    .saturating_sub(1)
                    .clamp(lo, last);
                samples[lo..=hi].iter().copied().fold(0.0_f64, f64::max)
            }
        }
    }

    /// An upper bound on the rate over all time (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        match self {
            LoadPattern::Constant { rate } => rate.max(0.0),
            LoadPattern::Wave {
                base, amplitude, ..
            } => (base + amplitude).max(0.0),
            LoadPattern::Burst { base, peak, .. } => base.max(*peak).max(0.0),
            LoadPattern::Trace { samples, .. } => {
                samples.iter().copied().fold(0.0_f64, f64::max).max(0.0)
            }
        }
    }
}

/// Generates request arrival instants from a [`LoadPattern`] by thinning
/// (Lewis & Shedler): candidate arrivals are drawn from a homogeneous
/// Poisson process at the envelope rate and accepted with probability
/// `rate(t)/peak_rate`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    pattern: LoadPattern,
}

impl ArrivalProcess {
    /// Creates an arrival process for the given pattern.
    pub fn new(pattern: LoadPattern) -> Self {
        ArrivalProcess { pattern }
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &LoadPattern {
        &self.pattern
    }

    /// Draws the first arrival strictly after `after`.
    ///
    /// Returns [`SimTime::MAX`] if the pattern's rate is zero everywhere
    /// (no arrival will ever occur).
    pub fn next_arrival(&mut self, after: SimTime, rng: &mut SimRng) -> SimTime {
        let envelope = self.pattern.peak_rate();
        if envelope <= 0.0 {
            return SimTime::MAX;
        }
        let mut t = after.as_secs();
        // Thinning loop; bound iterations defensively for patterns whose
        // instantaneous rate is far below the envelope for long stretches.
        for _ in 0..100_000 {
            t += rng.exponential(envelope);
            let candidate = SimTime::from_secs(t);
            let accept_p = self.pattern.rate_at(candidate) / envelope;
            if rng.chance(accept_p) {
                return candidate;
            }
        }
        SimTime::MAX
    }

    /// Draws all arrivals in the half-open window `[start, end)`.
    pub fn arrivals_in(&mut self, start: SimTime, end: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = start;
        loop {
            t = self.next_arrival(t, rng);
            if t >= end {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_in_window(pattern: LoadPattern, start: f64, end: f64, seed: u64) -> usize {
        let mut proc = ArrivalProcess::new(pattern);
        let mut rng = SimRng::seed_from(seed);
        proc.arrivals_in(SimTime::from_secs(start), SimTime::from_secs(end), &mut rng)
            .len()
    }

    #[test]
    fn constant_rate_matches_expectation() {
        // 10 req/s over 100 s -> ~1000 arrivals.
        let n = count_in_window(LoadPattern::Constant { rate: 10.0 }, 0.0, 100.0, 1);
        assert!((900..=1100).contains(&n), "got {n}");
    }

    #[test]
    fn zero_rate_never_arrives() {
        let mut proc = ArrivalProcess::new(LoadPattern::Constant { rate: 0.0 });
        let mut rng = SimRng::seed_from(2);
        assert_eq!(proc.next_arrival(SimTime::ZERO, &mut rng), SimTime::MAX);
    }

    #[test]
    fn wave_oscillates_between_base_and_base_plus_amplitude() {
        let p = LoadPattern::Wave {
            base: 4.0,
            amplitude: 6.0,
            period_secs: 100.0,
        };
        let rates: Vec<f64> = (0..100)
            .map(|i| p.rate_at(SimTime::from_secs(i as f64)))
            .collect();
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rates.iter().copied().fold(0.0, f64::max);
        assert!((4.0 - 1e-9..4.5).contains(&min), "min {min}");
        assert!(max <= 10.0 + 1e-9 && max > 9.5, "max {max}");
        assert_eq!(p.peak_rate(), 10.0);
    }

    #[test]
    fn burst_rate_switches_at_duty_boundary() {
        let p = LoadPattern::Burst {
            base: 2.0,
            peak: 20.0,
            period_secs: 100.0,
            duty: 0.25,
        };
        assert_eq!(p.rate_at(SimTime::from_secs(10.0)), 20.0);
        assert_eq!(p.rate_at(SimTime::from_secs(30.0)), 2.0);
        // Periodicity.
        assert_eq!(p.rate_at(SimTime::from_secs(110.0)), 20.0);
        assert_eq!(p.peak_rate(), 20.0);
    }

    #[test]
    fn burst_produces_more_arrivals_during_bursts() {
        let p = LoadPattern::Burst {
            base: 2.0,
            peak: 40.0,
            period_secs: 100.0,
            duty: 0.25,
        };
        let burst_n = count_in_window(p.clone(), 0.0, 25.0, 3);
        let quiet_n = count_in_window(p, 25.0, 50.0, 3);
        assert!(burst_n > quiet_n * 5, "burst {burst_n} vs quiet {quiet_n}");
    }

    #[test]
    fn trace_pattern_steps_through_samples() {
        let p = LoadPattern::Trace {
            samples: vec![1.0, 5.0, 0.0],
            interval_secs: 10.0,
        };
        assert_eq!(p.rate_at(SimTime::from_secs(5.0)), 1.0);
        assert_eq!(p.rate_at(SimTime::from_secs(15.0)), 5.0);
        assert_eq!(p.rate_at(SimTime::from_secs(25.0)), 0.0);
        // Last sample persists past the end.
        assert_eq!(p.rate_at(SimTime::from_secs(1000.0)), 0.0);
        assert_eq!(p.peak_rate(), 5.0);
    }

    #[test]
    fn empty_trace_is_silent() {
        let p = LoadPattern::Trace {
            samples: vec![],
            interval_secs: 10.0,
        };
        assert_eq!(p.rate_at(SimTime::from_secs(5.0)), 0.0);
        assert_eq!(p.peak_rate(), 0.0);
    }

    #[test]
    fn scaled_multiplies_rates() {
        let p = LoadPattern::low_burst().scaled(2.0);
        assert_eq!(p.peak_rate(), 20.0);
        let t = LoadPattern::Trace {
            samples: vec![1.0, 2.0],
            interval_secs: 1.0,
        }
        .scaled(3.0);
        assert_eq!(t.peak_rate(), 6.0);
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut proc = ArrivalProcess::new(LoadPattern::low_burst());
        let mut rng = SimRng::seed_from(5);
        let times = proc.arrivals_in(SimTime::ZERO, SimTime::from_secs(60.0), &mut rng);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(!times.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_arrivals() {
        let run = |seed| {
            let mut proc = ArrivalProcess::new(LoadPattern::high_burst());
            let mut rng = SimRng::seed_from(seed);
            proc.arrivals_in(SimTime::ZERO, SimTime::from_secs(30.0), &mut rng)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn max_rate_in_dominates_rate_at() {
        let patterns = [
            LoadPattern::Constant { rate: 3.0 },
            LoadPattern::low_burst(),
            LoadPattern::high_burst(),
            LoadPattern::Trace {
                samples: vec![1.0, 0.0, 7.0, 2.0],
                interval_secs: 15.0,
            },
        ];
        for p in &patterns {
            for w in 0..200 {
                let from = SimTime::from_secs(w as f64 * 3.7);
                let to = SimTime::from_secs(w as f64 * 3.7 + 42.0);
                let bound = p.max_rate_in(from, to);
                for i in 0..100 {
                    let t = SimTime::from_secs(from.as_secs() + 42.0 * i as f64 / 100.0);
                    assert!(
                        p.rate_at(t) <= bound + 1e-12,
                        "{p:?}: rate_at({t:?}) exceeds bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_rate_in_is_tight_for_quiet_windows() {
        let p = LoadPattern::Burst {
            base: 0.0,
            peak: 50.0,
            period_secs: 100.0,
            duty: 0.25,
        };
        // Entirely inside the quiet part of the period.
        assert_eq!(
            p.max_rate_in(SimTime::from_secs(30.0), SimTime::from_secs(90.0)),
            0.0
        );
        // Touching the next burst.
        assert_eq!(
            p.max_rate_in(SimTime::from_secs(30.0), SimTime::from_secs(101.0)),
            50.0
        );
        let t = LoadPattern::Trace {
            samples: vec![5.0, 0.0, 0.0],
            interval_secs: 10.0,
        };
        assert_eq!(
            t.max_rate_in(SimTime::from_secs(10.0), SimTime::from_secs(30.0)),
            0.0
        );
        // The last (zero) sample persists forever.
        assert_eq!(
            t.max_rate_in(SimTime::from_secs(500.0), SimTime::from_secs(900.0)),
            0.0
        );
        // Inverted/empty windows are silent.
        assert_eq!(
            LoadPattern::low_burst().max_rate_in(SimTime::from_secs(5.0), SimTime::from_secs(5.0)),
            0.0
        );
    }

    #[test]
    fn wave_long_run_average_matches_mean_rate() {
        // Mean of the wave is base + amplitude/2 = 7 req/s.
        let n = count_in_window(LoadPattern::low_burst(), 0.0, 600.0, 11);
        let avg = n as f64 / 600.0;
        assert!((avg - 7.0).abs() < 0.5, "avg rate {avg}");
    }
}
