//! The ring-buffered event sink.

use hyscale_sim::SimTime;

use crate::event::{EventKind, TraceEvent};

/// Collects [`TraceEvent`]s into a preallocated ring buffer.
///
/// Two states exist:
///
/// * **Disabled** ([`TraceSink::disabled`]): `const`-constructible, owns
///   no memory, and [`emit`](TraceSink::emit) is a single branch. The
///   untraced control-loop entry points run against this, so tracing
///   costs nothing when off.
/// * **Enabled** ([`TraceSink::with_capacity`]): the buffer is allocated
///   once; when full, the oldest events are overwritten in place and
///   [`dropped`](TraceSink::dropped) counts the overwrites. No further
///   allocation ever happens — the same zero-allocation steady-state
///   discipline as the tick engine.
#[derive(Debug, Clone)]
pub struct TraceSink {
    enabled: bool,
    /// Ring storage; grows (push) until `capacity`, then wraps.
    buf: Vec<TraceEvent>,
    /// Index of the slot the next event lands in once the ring is full.
    next: usize,
    capacity: usize,
    /// Events emitted in total (also the next sequence number).
    seq: u64,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl TraceSink {
    /// A sink that records nothing and owns no memory. `Vec::new` does
    /// not allocate, so this is free to construct anywhere.
    pub const fn disabled() -> Self {
        TraceSink {
            enabled: false,
            buf: Vec::new(),
            next: 0,
            capacity: 0,
            seq: 0,
            dropped: 0,
        }
    }

    /// An enabled sink retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceSink {
            enabled: true,
            buf: Vec::with_capacity(capacity),
            next: 0,
            capacity,
            seq: 0,
            dropped: 0,
        }
    }

    /// True if this sink records events.
    ///
    /// Emission sites that must do extra work to *assemble* an event
    /// (e.g. walk the node list) check this first; plain emissions rely
    /// on the branch inside [`emit`](TraceSink::emit).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at simulated time `now`. A no-op when disabled.
    #[inline]
    pub fn emit(&mut self, now: SimTime, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let event = TraceEvent {
            seq: self.seq,
            time_us: now.as_micros(),
            kind,
        };
        self.seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.buf.split_at(self.next);
        older.iter().chain(newer.iter())
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events emitted, including any the ring has overwritten.
    pub fn total_emitted(&self) -> u64 {
        self.seq
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forgets retained events but keeps the allocation, the enabled
    /// flag, and the sequence counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }

    /// Re-establishes the emission cursor after a snapshot resume: the
    /// next event emitted gets sequence number `seq`, so the resumed
    /// run's journal continues exactly where the interrupted run's
    /// exported journal left off.
    pub fn resume_at(&mut self, seq: u64) {
        self.seq = seq;
    }
}

impl Default for TraceSink {
    /// The disabled sink.
    fn default() -> Self {
        TraceSink::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(value: u64) -> EventKind {
        EventKind::Counter {
            name: "test",
            value,
        }
    }

    fn values(sink: &TraceSink) -> Vec<u64> {
        sink.events()
            .map(|e| match e.kind {
                EventKind::Counter { value, .. } => value,
                _ => panic!("unexpected event"),
            })
            .collect()
    }

    #[test]
    fn disabled_sink_records_nothing_and_owns_nothing() {
        let mut sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert_eq!(sink.buf.capacity(), 0, "no allocation");
        sink.emit(SimTime::ZERO, counter(1));
        assert!(sink.is_empty());
        assert_eq!(sink.total_emitted(), 0);
    }

    #[test]
    fn events_come_back_in_emission_order() {
        let mut sink = TraceSink::with_capacity(8);
        for v in 0..5 {
            sink.emit(SimTime::from_secs(v as f64), counter(v));
        }
        assert_eq!(sink.len(), 5);
        assert_eq!(values(&sink), vec![0, 1, 2, 3, 4]);
        let seqs: Vec<u64> = sink.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let mut sink = TraceSink::with_capacity(3);
        for v in 0..7 {
            sink.emit(SimTime::ZERO, counter(v));
        }
        assert_eq!(sink.len(), 3);
        // The three newest survive, oldest first.
        assert_eq!(values(&sink), vec![4, 5, 6]);
        assert_eq!(sink.dropped(), 4);
        assert_eq!(sink.total_emitted(), 7);
        // Sequence numbers keep counting across the wrap.
        let seqs: Vec<u64> = sink.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
    }

    #[test]
    fn ring_never_reallocates_past_capacity() {
        let mut sink = TraceSink::with_capacity(4);
        let ptr = sink.buf.as_ptr();
        for v in 0..100 {
            sink.emit(SimTime::ZERO, counter(v));
        }
        assert_eq!(sink.buf.capacity(), 4);
        assert_eq!(sink.buf.as_ptr(), ptr, "storage must not move");
    }

    #[test]
    fn wraparound_exactly_at_capacity_boundary() {
        let mut sink = TraceSink::with_capacity(3);
        for v in 0..3 {
            sink.emit(SimTime::ZERO, counter(v));
        }
        assert_eq!(values(&sink), vec![0, 1, 2]);
        assert_eq!(sink.dropped(), 0);
        sink.emit(SimTime::ZERO, counter(3));
        assert_eq!(values(&sink), vec![1, 2, 3]);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn clear_keeps_allocation_and_sequence() {
        let mut sink = TraceSink::with_capacity(4);
        for v in 0..6 {
            sink.emit(SimTime::ZERO, counter(v));
        }
        let ptr = sink.buf.as_ptr();
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.total_emitted(), 6, "sequence survives clear");
        sink.emit(SimTime::ZERO, counter(99));
        assert_eq!(sink.events().next().unwrap().seq, 6);
        assert_eq!(sink.buf.as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = TraceSink::with_capacity(0);
    }

    #[test]
    fn time_is_recorded_in_micros() {
        let mut sink = TraceSink::with_capacity(1);
        sink.emit(SimTime::from_secs(1.5), counter(0));
        assert_eq!(sink.events().next().unwrap().time_us, 1_500_000);
    }
}
