//! Deterministic decision-trace observability for the HyScale control
//! loop.
//!
//! The paper's Monitor is, at heart, an observability component: it turns
//! per-container `docker stats` streams into scaling decisions. This
//! crate makes those decisions *auditable after the fact*: every scaling
//! evaluation (metric value, target, tolerance verdict), every applied
//! action, every fault injection, recovery respawn/backoff, per-node
//! allocator pressure sample, and balancer routing tally is recorded as a
//! typed [`TraceEvent`] in a ring-buffered [`TraceSink`].
//!
//! # Determinism contract
//!
//! Events are only ever emitted from the driver's *serial* phases (event
//! delivery, Monitor periods, fault injection) — never from the parallel
//! per-node tick workers — and carry nothing that depends on the worker
//! count. A seeded scenario therefore produces a **byte-identical** JSONL
//! journal at any `parallelism` setting, which the test battery and the
//! `trace` bench binary enforce.
//!
//! # Cost contract
//!
//! Tracing is opt-in and free when disabled: [`TraceSink::disabled`] is a
//! `const fn` that allocates nothing, and [`TraceSink::emit`] is a single
//! branch in that state. An enabled sink allocates its ring buffer once
//! up front and never again (events are `Copy`, old entries are
//! overwritten in place).
//!
//! # Example
//!
//! ```
//! use hyscale_sim::SimTime;
//! use hyscale_trace::{EventKind, TraceSink};
//!
//! let mut sink = TraceSink::with_capacity(1024);
//! sink.emit(
//!     SimTime::ZERO,
//!     EventKind::RunStart { seed: 7, algorithm: "hybrid" },
//! );
//! assert_eq!(sink.len(), 1);
//! let journal = hyscale_trace::export::jsonl(&sink, &Default::default());
//! assert!(journal.contains("run_start"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod export;
mod sink;

pub use event::{
    ActionTag, ActuationTag, BreakerTag, EventKind, FaultTag, LinkTag, Metric, TraceEvent, Verdict,
};
pub use export::RunMeta;
pub use sink::TraceSink;
