//! The typed event taxonomy.
//!
//! Events are plain-old-data: `Copy`, no heap, labels as `&'static str`.
//! That keeps [`TraceSink::emit`](crate::TraceSink::emit) allocation-free
//! and lets the ring buffer overwrite entries in place.

/// Which utilization signal an evaluation looked at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// CPU usage relative to the request.
    Cpu,
    /// Resident memory (plus swap) relative to the limit.
    Mem,
    /// Network throughput relative to the request.
    Net,
}

impl Metric {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Cpu => "cpu",
            Metric::Mem => "mem",
            Metric::Net => "net",
        }
    }
}

/// What an algorithm concluded from one metric evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the tolerance band (or no deficit): leave the service alone.
    Hold,
    /// The metric demands more resources this period.
    ScaleUp,
    /// The metric allows reclamation this period.
    ScaleDown,
    /// A rescale was wanted but the anti-thrashing gate blocked it.
    Gated,
}

impl Verdict {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Hold => "hold",
            Verdict::ScaleUp => "scale_up",
            Verdict::ScaleDown => "scale_down",
            Verdict::Gated => "gated",
        }
    }
}

/// The class of an applied scaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionTag {
    /// `docker update` of a replica's CPU/memory allocation.
    Update,
    /// A new replica spawned on a node.
    Spawn,
    /// A replica removed by a scale-in decision.
    Remove,
    /// `tc`-style network cap change.
    NetCap,
}

impl ActionTag {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            ActionTag::Update => "update",
            ActionTag::Spawn => "spawn",
            ActionTag::Remove => "remove",
            ActionTag::NetCap => "net_cap",
        }
    }
}

/// The class of an injected fault or its recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTag {
    /// A machine dropped off the network with all its replicas.
    NodeCrash,
    /// The kernel OOM killer took a service's fattest replica.
    OomKill,
    /// A node's NIC capacity dropped to a fraction.
    NicDegrade,
    /// A NodeManager's stat reports went stale.
    StatOutage,
    /// A crashed machine came back (empty).
    Reboot,
    /// A degraded NIC was restored to full capacity.
    NicRestore,
}

impl FaultTag {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultTag::NodeCrash => "node_crash",
            FaultTag::OomKill => "oom_kill",
            FaultTag::NicDegrade => "nic_degrade",
            FaultTag::StatOutage => "stat_outage",
            FaultTag::Reboot => "reboot",
            FaultTag::NicRestore => "nic_restore",
        }
    }
}

/// What happened to one NodeManager report in transit through the
/// (possibly degraded) control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTag {
    /// The report was dropped on the wire and never arrived.
    Lost,
    /// The report arrived late; the Monitor sees data measured
    /// `delay_periods` periods ago.
    Late,
    /// The report was delivered twice; the duplicate was idempotently
    /// re-applied.
    Duplicate,
}

impl LinkTag {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            LinkTag::Lost => "lost",
            LinkTag::Late => "late",
            LinkTag::Duplicate => "duplicate",
        }
    }
}

/// What happened to one scaling-action attempt through the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationTag {
    /// The attempt failed; a retry was scheduled with backoff.
    Failed,
    /// A scheduled retry attempt executed successfully.
    Retried,
    /// A retry was suppressed: the idempotency key shows the action
    /// already executed (its ack was lost), so re-running it would
    /// double-place.
    Deduped,
    /// Retries were exhausted; the action was dropped for good.
    Abandoned,
}

impl ActuationTag {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            ActuationTag::Failed => "failed",
            ActuationTag::Retried => "retried",
            ActuationTag::Deduped => "deduped",
            ActuationTag::Abandoned => "abandoned",
        }
    }
}

/// A circuit-breaker transition on one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTag {
    /// Consecutive failures tripped the breaker (or a half-open probe
    /// failed and it re-opened with a doubled cooldown).
    Open,
    /// A half-open probe succeeded; the breaker closed and reset.
    Close,
}

impl BreakerTag {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            BreakerTag::Open => "open",
            BreakerTag::Close => "close",
        }
    }
}

/// One traced occurrence in the control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The run began (emitted once, at time zero).
    RunStart {
        /// The scenario's master seed.
        seed: u64,
        /// The algorithm under test (paper label).
        algorithm: &'static str,
    },
    /// An algorithm weighed one metric for one service: the provenance of
    /// the decision that follows (or of the decision not to act).
    Evaluation {
        /// The deciding algorithm's report name.
        algorithm: &'static str,
        /// Numeric service id.
        service: u32,
        /// Which signal was measured.
        metric: Metric,
        /// The measured value (average utilization for the HPAs, missing
        /// resources in native units for the hybrid algorithms).
        value: f64,
        /// The configured target the value was compared against.
        target: f64,
        /// What the algorithm concluded.
        verdict: Verdict,
    },
    /// A scaling action the Monitor applied successfully.
    Decision {
        /// The deciding algorithm's report name.
        algorithm: &'static str,
        /// Numeric service id (`u32::MAX` if the container was already
        /// gone when the event was recorded).
        service: u32,
        /// The action class.
        action: ActionTag,
        /// The affected container, when the action targets one.
        container: Option<u32>,
        /// The node involved (spawn target / host of the container).
        node: Option<u32>,
        /// New CPU allocation in cores, when the action carries one.
        cpu: Option<f64>,
        /// New memory limit in MB, when the action carries one.
        mem: Option<f64>,
    },
    /// One node's free resources, sampled each Monitor period.
    AllocatorPressure {
        /// Numeric node id.
        node: u32,
        /// Unallocated CPU, cores.
        free_cpu: f64,
        /// Unallocated memory, MB.
        free_mem: f64,
        /// Live (non-removed) containers hosted.
        containers: u32,
    },
    /// An infrastructure fault struck (or its recovery landed).
    Fault {
        /// The fault class.
        fault: FaultTag,
        /// The targeted node, when the fault addresses one.
        node: Option<u32>,
        /// The targeted service (OOM-kills).
        service: Option<u32>,
        /// Class-specific magnitude: downtime/duration seconds for
        /// crashes and outages, the remaining capacity fraction for NIC
        /// degradation, 0 otherwise.
        magnitude: f64,
    },
    /// The Monitor's roll call noticed a replica that died without a
    /// scale-in decision.
    ReplicaDeath {
        /// Numeric service id.
        service: u32,
        /// The vanished replica.
        container: u32,
    },
    /// The recovery path respawned a replacement replica.
    RecoveryRespawn {
        /// Numeric service id.
        service: u32,
        /// Node the replacement was placed on.
        node: u32,
    },
    /// A recovery attempt found no feasible node and backed off.
    RecoveryBackoff {
        /// Numeric service id.
        service: u32,
        /// Attempts are suppressed until this simulated time (µs).
        retry_at_us: u64,
    },
    /// Requests routed/rejected for one service since the previous
    /// Monitor period.
    BalancerStats {
        /// Numeric service id.
        service: u32,
        /// Arrivals the balancer placed on a replica.
        routed: u64,
        /// Arrivals with no live replica or a full queue.
        rejected: u64,
    },
    /// A final counter value from the metrics registry (emitted once per
    /// counter at the end of the run).
    Counter {
        /// Registry name of the counter.
        name: &'static str,
        /// Final value.
        value: u64,
    },
    /// A NodeManager report was perturbed on its way to the Monitor.
    ReportLink {
        /// What the degraded link did to the report.
        link: LinkTag,
        /// The reporting node.
        node: u32,
        /// How many Monitor periods late the data arrived (0 for losses
        /// and duplicates).
        delay_periods: u32,
    },
    /// A scaling action's delivery to the data plane failed, retried,
    /// was deduplicated, or was abandoned.
    Actuation {
        /// What happened to the attempt.
        outcome: ActuationTag,
        /// The action's idempotency key (monotonic per run).
        key: u64,
        /// Which attempt this was (1 = the original submission).
        attempt: u32,
        /// When the next retry fires, µs (0 when no retry is pending).
        retry_at_us: u64,
    },
    /// A replica's circuit breaker changed state.
    Breaker {
        /// Opened or closed.
        state: BreakerTag,
        /// The replica the breaker guards.
        container: u32,
        /// For opens: the cooldown deadline (µs) after which a half-open
        /// probe is allowed. 0 for closes.
        until_us: u64,
    },
    /// The Monitor entered or left cluster-wide safe mode (scaling
    /// frozen because too few nodes have fresh reports).
    SafeMode {
        /// `true` on entry, `false` on exit.
        entered: bool,
        /// Nodes whose data was within the staleness budget.
        fresh_nodes: u32,
        /// Nodes the Monitor polls.
        total_nodes: u32,
    },
    /// A batch of identical arrivals flowed through the balancer as one
    /// cohort (cohort-arrival driver mode).
    CohortFlow {
        /// Numeric service id.
        service: u32,
        /// Members in the arrival batch.
        count: u64,
        /// Members the balancer placed on replicas.
        routed: u64,
        /// Members rejected: no live replica, open breakers, or full
        /// queues.
        rejected: u64,
    },
    /// The closed-form time warp skipped a run of idle ticks in one jump.
    TimeWarp {
        /// Whole ticks skipped.
        ticks: u64,
        /// Simulated microseconds the warp covered.
        span_us: u64,
    },
    /// A full simulation snapshot was written at a tick boundary.
    Snapshot {
        /// Ticks executed when the snapshot was taken.
        tick: u64,
        /// The simulated clock at the boundary, microseconds.
        now_us: u64,
    },
    /// One hop of a multi-tier request finished on a service: the
    /// per-hop span record from which a user request's end-to-end path
    /// is reconstructed (stitch journal lines sharing one `root`).
    Span {
        /// The entry-point request (root) id this hop belongs to —
        /// unique per user arrival, monotonic per run.
        root: u64,
        /// Numeric id of the entry-point service the root arrived at.
        entry: u32,
        /// Numeric id of the service that executed this hop.
        service: u32,
        /// Hop depth below the entry point (0 = the entry hop itself).
        depth: u32,
        /// Member requests carried by this hop record (cohorts > 1).
        count: u64,
        /// Time spent between arrival and admission, microseconds
        /// (inter-tier queueing for derived hops).
        queue_us: u64,
        /// Time spent in service after admission, microseconds.
        service_us: u64,
    },
    /// A lost hop was re-queued as a retry attempt instead of failing
    /// its root (per-hop retry policy).
    Retry {
        /// The root whose hop is being retried.
        root: u64,
        /// Numeric id of the service the hop targets.
        service: u32,
        /// The delivery attempt number the retry will make (2 = first
        /// retry).
        attempt: u32,
        /// Members re-issued by this retry.
        count: u64,
        /// When the backoff expires and the retry becomes admissible,
        /// microseconds.
        retry_at_us: u64,
    },
    /// A new client root was shed at admission by the overload
    /// watermark (dropped unissued — counted as shed, not failed).
    Shed {
        /// Numeric id of the entry-point service.
        service: u32,
        /// Members the shed root would have carried.
        count: u64,
        /// The service's in-flight member count that tripped the
        /// watermark.
        in_flight: u64,
    },
    /// A retryable hop failure found its service's retry-budget bucket
    /// empty; the root failed instead of retrying.
    BudgetExhausted {
        /// The root that failed.
        root: u64,
        /// Numeric id of the service whose bucket was empty.
        service: u32,
        /// Members the suppressed retry would have re-issued.
        count: u64,
    },
    /// A retry's backoff landed past the root's end-to-end deadline;
    /// the root failed instead of retrying.
    DeadlineExceeded {
        /// The root that failed.
        root: u64,
        /// Numeric id of the service the hop targeted.
        service: u32,
        /// The root's deadline, microseconds.
        deadline_us: u64,
    },
    /// A capacity-reducing action was vetoed because the service's view
    /// was older than the staleness budget.
    StaleVeto {
        /// The deciding algorithm's report name.
        algorithm: &'static str,
        /// Numeric service id.
        service: u32,
        /// Age of the oldest replica sample backing the decision, in
        /// Monitor periods.
        age_ticks: u32,
        /// The configured staleness budget, in Monitor periods.
        budget_ticks: u32,
    },
}

impl EventKind {
    /// Stable lowercase label identifying the variant in exports.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::RunStart { .. } => "run_start",
            EventKind::Evaluation { .. } => "evaluation",
            EventKind::Decision { .. } => "decision",
            EventKind::AllocatorPressure { .. } => "pressure",
            EventKind::Fault { .. } => "fault",
            EventKind::ReplicaDeath { .. } => "replica_death",
            EventKind::RecoveryRespawn { .. } => "recovery_respawn",
            EventKind::RecoveryBackoff { .. } => "recovery_backoff",
            EventKind::BalancerStats { .. } => "balancer",
            EventKind::Counter { .. } => "counter",
            EventKind::ReportLink { .. } => "report_link",
            EventKind::Actuation { .. } => "actuation",
            EventKind::Breaker { .. } => "breaker",
            EventKind::SafeMode { .. } => "safe_mode",
            EventKind::CohortFlow { .. } => "cohort_flow",
            EventKind::TimeWarp { .. } => "time_warp",
            EventKind::Snapshot { .. } => "snapshot",
            EventKind::Span { .. } => "span",
            EventKind::Retry { .. } => "retry",
            EventKind::Shed { .. } => "shed",
            EventKind::BudgetExhausted { .. } => "budget_exhausted",
            EventKind::DeadlineExceeded { .. } => "deadline_exceeded",
            EventKind::StaleVeto { .. } => "stale_veto",
        }
    }
}

/// One event stamped with its emission order and simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Global emission sequence number (monotonic, starts at 0; keeps
    /// counting even when the ring overwrites old entries).
    pub seq: u64,
    /// Simulated time of the emission, microseconds.
    pub time_us: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Metric::Cpu.label(), "cpu");
        assert_eq!(Metric::Mem.label(), "mem");
        assert_eq!(Metric::Net.label(), "net");
        assert_eq!(Verdict::Hold.label(), "hold");
        assert_eq!(Verdict::ScaleUp.label(), "scale_up");
        assert_eq!(Verdict::ScaleDown.label(), "scale_down");
        assert_eq!(Verdict::Gated.label(), "gated");
        assert_eq!(ActionTag::Update.label(), "update");
        assert_eq!(ActionTag::NetCap.label(), "net_cap");
        assert_eq!(FaultTag::NodeCrash.label(), "node_crash");
        assert_eq!(FaultTag::NicRestore.label(), "nic_restore");
        assert_eq!(LinkTag::Lost.label(), "lost");
        assert_eq!(LinkTag::Late.label(), "late");
        assert_eq!(LinkTag::Duplicate.label(), "duplicate");
        assert_eq!(ActuationTag::Failed.label(), "failed");
        assert_eq!(ActuationTag::Retried.label(), "retried");
        assert_eq!(ActuationTag::Deduped.label(), "deduped");
        assert_eq!(ActuationTag::Abandoned.label(), "abandoned");
        assert_eq!(BreakerTag::Open.label(), "open");
        assert_eq!(BreakerTag::Close.label(), "close");
    }

    #[test]
    fn kind_labels_cover_all_variants() {
        let kinds = [
            EventKind::RunStart {
                seed: 1,
                algorithm: "hybrid",
            },
            EventKind::Evaluation {
                algorithm: "hybrid",
                service: 0,
                metric: Metric::Cpu,
                value: 0.4,
                target: 0.5,
                verdict: Verdict::Hold,
            },
            EventKind::Decision {
                algorithm: "hybrid",
                service: 0,
                action: ActionTag::Spawn,
                container: None,
                node: Some(1),
                cpu: Some(0.5),
                mem: Some(256.0),
            },
            EventKind::AllocatorPressure {
                node: 0,
                free_cpu: 3.5,
                free_mem: 7168.0,
                containers: 2,
            },
            EventKind::Fault {
                fault: FaultTag::OomKill,
                node: None,
                service: Some(1),
                magnitude: 0.0,
            },
            EventKind::ReplicaDeath {
                service: 0,
                container: 3,
            },
            EventKind::RecoveryRespawn {
                service: 0,
                node: 1,
            },
            EventKind::RecoveryBackoff {
                service: 0,
                retry_at_us: 5_000_000,
            },
            EventKind::BalancerStats {
                service: 0,
                routed: 10,
                rejected: 1,
            },
            EventKind::Counter {
                name: "requests.issued",
                value: 42,
            },
            EventKind::ReportLink {
                link: LinkTag::Late,
                node: 2,
                delay_periods: 1,
            },
            EventKind::Actuation {
                outcome: ActuationTag::Failed,
                key: 7,
                attempt: 1,
                retry_at_us: 10_000_000,
            },
            EventKind::Breaker {
                state: BreakerTag::Open,
                container: 4,
                until_us: 12_000_000,
            },
            EventKind::SafeMode {
                entered: true,
                fresh_nodes: 1,
                total_nodes: 4,
            },
            EventKind::CohortFlow {
                service: 0,
                count: 1_000,
                routed: 990,
                rejected: 10,
            },
            EventKind::TimeWarp {
                ticks: 48,
                span_us: 4_800_000,
            },
            EventKind::Snapshot {
                tick: 120,
                now_us: 12_000_000,
            },
            EventKind::Span {
                root: 17,
                entry: 0,
                service: 2,
                depth: 1,
                count: 32,
                queue_us: 150_000,
                service_us: 820_000,
            },
            EventKind::Retry {
                root: 17,
                service: 2,
                attempt: 2,
                count: 32,
                retry_at_us: 2_500_000,
            },
            EventKind::Shed {
                service: 0,
                count: 64,
                in_flight: 10_000,
            },
            EventKind::BudgetExhausted {
                root: 17,
                service: 2,
                count: 32,
            },
            EventKind::DeadlineExceeded {
                root: 17,
                service: 2,
                deadline_us: 30_000_000,
            },
            EventKind::StaleVeto {
                algorithm: "hybrid",
                service: 0,
                age_ticks: 3,
                budget_ticks: 1,
            },
        ];
        let labels: Vec<&str> = kinds.iter().map(EventKind::label).collect();
        let mut unique = labels.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "labels must be distinct");
    }
}
