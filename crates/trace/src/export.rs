//! JSONL and CSV journal exporters.
//!
//! Exports are pure functions of the sink contents. Numbers are written
//! with Rust's `Display` (shortest round-trip representation for `f64`),
//! so two bit-identical event streams always serialize to byte-identical
//! journals — the property the determinism gate compares.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};
use crate::sink::TraceSink;

/// Run identification written into the journal header line.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMeta<'a> {
    /// Scenario name (free text; escaped on export).
    pub scenario: &'a str,
    /// Master seed of the run.
    pub seed: u64,
    /// Algorithm label of the run.
    pub algorithm: &'a str,
}

/// Escapes a string for inclusion inside a JSON string literal
/// (quotes, backslashes, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quotes a CSV field if it contains a comma, quote, or newline
/// (doubling embedded quotes, per RFC 4180).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn push_opt_u32(out: &mut String, key: &str, v: Option<u32>) {
    match v {
        Some(v) => {
            let _ = write!(out, ",\"{key}\":{v}");
        }
        None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

fn push_opt_f64(out: &mut String, key: &str, v: Option<f64>) {
    match v {
        Some(v) => {
            let _ = write!(out, ",\"{key}\":{v}");
        }
        None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

fn jsonl_event(out: &mut String, event: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"t_us\":{},\"ev\":\"{}\"",
        event.seq,
        event.time_us,
        event.kind.label()
    );
    match event.kind {
        EventKind::RunStart { seed, algorithm } => {
            let _ = write!(
                out,
                ",\"seed\":{seed},\"algorithm\":\"{}\"",
                json_escape(algorithm)
            );
        }
        EventKind::Evaluation {
            algorithm,
            service,
            metric,
            value,
            target,
            verdict,
        } => {
            let _ = write!(
                out,
                ",\"algorithm\":\"{}\",\"service\":{service},\"metric\":\"{}\",\"value\":{value},\"target\":{target},\"verdict\":\"{}\"",
                json_escape(algorithm),
                metric.label(),
                verdict.label()
            );
        }
        EventKind::Decision {
            algorithm,
            service,
            action,
            container,
            node,
            cpu,
            mem,
        } => {
            let _ = write!(
                out,
                ",\"algorithm\":\"{}\",\"service\":{service},\"action\":\"{}\"",
                json_escape(algorithm),
                action.label()
            );
            push_opt_u32(out, "container", container);
            push_opt_u32(out, "node", node);
            push_opt_f64(out, "cpu", cpu);
            push_opt_f64(out, "mem", mem);
        }
        EventKind::AllocatorPressure {
            node,
            free_cpu,
            free_mem,
            containers,
        } => {
            let _ = write!(
                out,
                ",\"node\":{node},\"free_cpu\":{free_cpu},\"free_mem\":{free_mem},\"containers\":{containers}"
            );
        }
        EventKind::Fault {
            fault,
            node,
            service,
            magnitude,
        } => {
            let _ = write!(out, ",\"fault\":\"{}\"", fault.label());
            push_opt_u32(out, "node", node);
            push_opt_u32(out, "service", service);
            let _ = write!(out, ",\"magnitude\":{magnitude}");
        }
        EventKind::ReplicaDeath { service, container } => {
            let _ = write!(out, ",\"service\":{service},\"container\":{container}");
        }
        EventKind::RecoveryRespawn { service, node } => {
            let _ = write!(out, ",\"service\":{service},\"node\":{node}");
        }
        EventKind::RecoveryBackoff {
            service,
            retry_at_us,
        } => {
            let _ = write!(out, ",\"service\":{service},\"retry_at_us\":{retry_at_us}");
        }
        EventKind::BalancerStats {
            service,
            routed,
            rejected,
        } => {
            let _ = write!(
                out,
                ",\"service\":{service},\"routed\":{routed},\"rejected\":{rejected}"
            );
        }
        EventKind::Counter { name, value } => {
            let _ = write!(out, ",\"name\":\"{}\",\"value\":{value}", json_escape(name));
        }
        EventKind::ReportLink {
            link,
            node,
            delay_periods,
        } => {
            let _ = write!(
                out,
                ",\"link\":\"{}\",\"node\":{node},\"delay_periods\":{delay_periods}",
                link.label()
            );
        }
        EventKind::Actuation {
            outcome,
            key,
            attempt,
            retry_at_us,
        } => {
            let _ = write!(
                out,
                ",\"outcome\":\"{}\",\"key\":{key},\"attempt\":{attempt},\"retry_at_us\":{retry_at_us}",
                outcome.label()
            );
        }
        EventKind::Breaker {
            state,
            container,
            until_us,
        } => {
            let _ = write!(
                out,
                ",\"state\":\"{}\",\"container\":{container},\"until_us\":{until_us}",
                state.label()
            );
        }
        EventKind::SafeMode {
            entered,
            fresh_nodes,
            total_nodes,
        } => {
            let _ = write!(
                out,
                ",\"entered\":{entered},\"fresh_nodes\":{fresh_nodes},\"total_nodes\":{total_nodes}"
            );
        }
        EventKind::CohortFlow {
            service,
            count,
            routed,
            rejected,
        } => {
            let _ = write!(
                out,
                ",\"service\":{service},\"count\":{count},\"routed\":{routed},\"rejected\":{rejected}"
            );
        }
        EventKind::TimeWarp { ticks, span_us } => {
            let _ = write!(out, ",\"ticks\":{ticks},\"span_us\":{span_us}");
        }
        EventKind::Snapshot { tick, now_us } => {
            let _ = write!(out, ",\"tick\":{tick},\"now_us\":{now_us}");
        }
        EventKind::Span {
            root,
            entry,
            service,
            depth,
            count,
            queue_us,
            service_us,
        } => {
            let _ = write!(
                out,
                ",\"root\":{root},\"entry\":{entry},\"service\":{service},\"depth\":{depth},\"count\":{count},\"queue_us\":{queue_us},\"service_us\":{service_us}"
            );
        }
        EventKind::Retry {
            root,
            service,
            attempt,
            count,
            retry_at_us,
        } => {
            let _ = write!(
                out,
                ",\"root\":{root},\"service\":{service},\"attempt\":{attempt},\"count\":{count},\"retry_at_us\":{retry_at_us}"
            );
        }
        EventKind::Shed {
            service,
            count,
            in_flight,
        } => {
            let _ = write!(
                out,
                ",\"service\":{service},\"count\":{count},\"in_flight\":{in_flight}"
            );
        }
        EventKind::BudgetExhausted {
            root,
            service,
            count,
        } => {
            let _ = write!(
                out,
                ",\"root\":{root},\"service\":{service},\"count\":{count}"
            );
        }
        EventKind::DeadlineExceeded {
            root,
            service,
            deadline_us,
        } => {
            let _ = write!(
                out,
                ",\"root\":{root},\"service\":{service},\"deadline_us\":{deadline_us}"
            );
        }
        EventKind::StaleVeto {
            algorithm,
            service,
            age_ticks,
            budget_ticks,
        } => {
            let _ = write!(
                out,
                ",\"algorithm\":\"{}\",\"service\":{service},\"age_ticks\":{age_ticks},\"budget_ticks\":{budget_ticks}",
                json_escape(algorithm)
            );
        }
    }
    out.push_str("}\n");
}

/// Serializes the journal as JSON Lines: one meta header line followed by
/// one object per retained event, oldest first.
pub fn jsonl(sink: &TraceSink, meta: &RunMeta<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"record\":\"meta\",\"scenario\":\"{}\",\"seed\":{},\"algorithm\":\"{}\",\"events\":{},\"total\":{},\"dropped\":{}}}",
        json_escape(meta.scenario),
        meta.seed,
        json_escape(meta.algorithm),
        sink.len(),
        sink.total_emitted(),
        sink.dropped()
    );
    for event in sink.events() {
        jsonl_event(&mut out, event);
    }
    out
}

const CSV_HEADER: &str =
    "seq,t_us,event,algorithm,detail,service,node,container,value_a,value_b,value_c\n";

fn fmt_u32(v: Option<u32>) -> String {
    v.map(|v| v.to_string()).unwrap_or_default()
}

fn fmt_f64(v: Option<f64>) -> String {
    v.map(|v| v.to_string()).unwrap_or_default()
}

/// Serializes the journal as a flat CSV timeseries, one row per retained
/// event, with variant-specific payloads flattened into the generic
/// `detail` / `value_*` columns.
pub fn csv(sink: &TraceSink) -> String {
    let mut out = String::from(CSV_HEADER);
    for event in sink.events() {
        // (algorithm, detail, service, node, container, value_a, value_b, value_c)
        let row: (
            String,
            String,
            String,
            String,
            String,
            String,
            String,
            String,
        ) = match event.kind {
            EventKind::RunStart { seed, algorithm } => (
                algorithm.into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                seed.to_string(),
                String::new(),
                String::new(),
            ),
            EventKind::Evaluation {
                algorithm,
                service,
                metric,
                value,
                target,
                verdict,
            } => (
                algorithm.into(),
                format!("{}:{}", metric.label(), verdict.label()),
                service.to_string(),
                String::new(),
                String::new(),
                value.to_string(),
                target.to_string(),
                String::new(),
            ),
            EventKind::Decision {
                algorithm,
                service,
                action,
                container,
                node,
                cpu,
                mem,
            } => (
                algorithm.into(),
                action.label().into(),
                service.to_string(),
                fmt_u32(node),
                fmt_u32(container),
                fmt_f64(cpu),
                fmt_f64(mem),
                String::new(),
            ),
            EventKind::AllocatorPressure {
                node,
                free_cpu,
                free_mem,
                containers,
            } => (
                String::new(),
                String::new(),
                String::new(),
                node.to_string(),
                String::new(),
                free_cpu.to_string(),
                free_mem.to_string(),
                containers.to_string(),
            ),
            EventKind::Fault {
                fault,
                node,
                service,
                magnitude,
            } => (
                String::new(),
                fault.label().into(),
                fmt_u32(service),
                fmt_u32(node),
                String::new(),
                magnitude.to_string(),
                String::new(),
                String::new(),
            ),
            EventKind::ReplicaDeath { service, container } => (
                String::new(),
                String::new(),
                service.to_string(),
                String::new(),
                container.to_string(),
                String::new(),
                String::new(),
                String::new(),
            ),
            EventKind::RecoveryRespawn { service, node } => (
                String::new(),
                String::new(),
                service.to_string(),
                node.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            EventKind::RecoveryBackoff {
                service,
                retry_at_us,
            } => (
                String::new(),
                String::new(),
                service.to_string(),
                String::new(),
                String::new(),
                retry_at_us.to_string(),
                String::new(),
                String::new(),
            ),
            EventKind::BalancerStats {
                service,
                routed,
                rejected,
            } => (
                String::new(),
                String::new(),
                service.to_string(),
                String::new(),
                String::new(),
                routed.to_string(),
                rejected.to_string(),
                String::new(),
            ),
            EventKind::Counter { name, value } => (
                String::new(),
                csv_field(name),
                String::new(),
                String::new(),
                String::new(),
                value.to_string(),
                String::new(),
                String::new(),
            ),
            EventKind::ReportLink {
                link,
                node,
                delay_periods,
            } => (
                String::new(),
                link.label().into(),
                String::new(),
                node.to_string(),
                String::new(),
                delay_periods.to_string(),
                String::new(),
                String::new(),
            ),
            EventKind::Actuation {
                outcome,
                key,
                attempt,
                retry_at_us,
            } => (
                String::new(),
                outcome.label().into(),
                String::new(),
                String::new(),
                String::new(),
                key.to_string(),
                attempt.to_string(),
                retry_at_us.to_string(),
            ),
            EventKind::Breaker {
                state,
                container,
                until_us,
            } => (
                String::new(),
                state.label().into(),
                String::new(),
                String::new(),
                container.to_string(),
                until_us.to_string(),
                String::new(),
                String::new(),
            ),
            EventKind::SafeMode {
                entered,
                fresh_nodes,
                total_nodes,
            } => (
                String::new(),
                if entered {
                    "enter".into()
                } else {
                    "exit".into()
                },
                String::new(),
                String::new(),
                String::new(),
                fresh_nodes.to_string(),
                total_nodes.to_string(),
                String::new(),
            ),
            EventKind::CohortFlow {
                service,
                count,
                routed,
                rejected,
            } => (
                String::new(),
                String::new(),
                service.to_string(),
                String::new(),
                String::new(),
                count.to_string(),
                routed.to_string(),
                rejected.to_string(),
            ),
            EventKind::TimeWarp { ticks, span_us } => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                ticks.to_string(),
                span_us.to_string(),
                String::new(),
            ),
            EventKind::Snapshot { tick, now_us } => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                tick.to_string(),
                now_us.to_string(),
                String::new(),
            ),
            EventKind::Span {
                root,
                entry,
                service,
                depth,
                count,
                queue_us,
                service_us,
            } => (
                String::new(),
                format!("root{root}.entry{entry}.d{depth}"),
                service.to_string(),
                String::new(),
                String::new(),
                count.to_string(),
                queue_us.to_string(),
                service_us.to_string(),
            ),
            EventKind::Retry {
                root,
                service,
                attempt,
                count,
                retry_at_us,
            } => (
                String::new(),
                format!("root{root}.a{attempt}"),
                service.to_string(),
                String::new(),
                String::new(),
                count.to_string(),
                retry_at_us.to_string(),
                String::new(),
            ),
            EventKind::Shed {
                service,
                count,
                in_flight,
            } => (
                String::new(),
                String::new(),
                service.to_string(),
                String::new(),
                String::new(),
                count.to_string(),
                in_flight.to_string(),
                String::new(),
            ),
            EventKind::BudgetExhausted {
                root,
                service,
                count,
            } => (
                String::new(),
                format!("root{root}"),
                service.to_string(),
                String::new(),
                String::new(),
                count.to_string(),
                String::new(),
                String::new(),
            ),
            EventKind::DeadlineExceeded {
                root,
                service,
                deadline_us,
            } => (
                String::new(),
                format!("root{root}"),
                service.to_string(),
                String::new(),
                String::new(),
                deadline_us.to_string(),
                String::new(),
                String::new(),
            ),
            EventKind::StaleVeto {
                algorithm,
                service,
                age_ticks,
                budget_ticks,
            } => (
                algorithm.into(),
                String::new(),
                service.to_string(),
                String::new(),
                String::new(),
                age_ticks.to_string(),
                budget_ticks.to_string(),
                String::new(),
            ),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            event.seq,
            event.time_us,
            event.kind.label(),
            row.0,
            row.1,
            row.2,
            row.3,
            row.4,
            row.5,
            row.6,
            row.7,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ActionTag, FaultTag, Metric, Verdict};
    use hyscale_sim::SimTime;

    fn sample_sink() -> TraceSink {
        let mut sink = TraceSink::with_capacity(64);
        sink.emit(
            SimTime::ZERO,
            EventKind::RunStart {
                seed: 7,
                algorithm: "hybrid",
            },
        );
        sink.emit(
            SimTime::from_secs(5.0),
            EventKind::Evaluation {
                algorithm: "hybrid",
                service: 0,
                metric: Metric::Cpu,
                value: 0.35,
                target: 0.5,
                verdict: Verdict::ScaleUp,
            },
        );
        sink.emit(
            SimTime::from_secs(5.0),
            EventKind::Decision {
                algorithm: "hybrid",
                service: 0,
                action: ActionTag::Spawn,
                container: None,
                node: Some(2),
                cpu: Some(0.5),
                mem: Some(256.0),
            },
        );
        sink.emit(
            SimTime::from_secs(30.0),
            EventKind::Fault {
                fault: FaultTag::NodeCrash,
                node: Some(0),
                service: None,
                magnitude: 20.0,
            },
        );
        sink
    }

    #[test]
    fn jsonl_has_meta_then_one_line_per_event() {
        let sink = sample_sink();
        let meta = RunMeta {
            scenario: "chaos",
            seed: 7,
            algorithm: "hybrid",
        };
        let journal = jsonl(&sink, &meta);
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("{\"record\":\"meta\",\"scenario\":\"chaos\""));
        assert!(lines[1].contains("\"ev\":\"run_start\""));
        assert!(lines[2].contains("\"verdict\":\"scale_up\""));
        assert!(lines[3].contains("\"container\":null"));
        assert!(lines[3].contains("\"node\":2"));
        assert!(lines[4].contains("\"fault\":\"node_crash\""));
        assert!(lines[4].contains("\"magnitude\":20"));
    }

    #[test]
    fn csv_is_one_row_per_event_with_header() {
        let sink = sample_sink();
        let out = csv(&sink);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("seq,t_us,event"));
        assert!(lines[1].contains("run_start"));
        assert!(lines[2].contains("cpu:scale_up"));
        assert!(lines[3].contains("spawn"));
        assert!(lines[4].contains("node_crash"));
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("back\\slash"), "back\\\\slash");
        assert_eq!(json_escape("line\nbreak"), "line\\nbreak");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("bell\u{07}"), "bell\\u0007");
    }

    #[test]
    fn scenario_name_is_escaped_in_meta() {
        let sink = sample_sink();
        let meta = RunMeta {
            scenario: "evil \"name\"\nwith newline",
            seed: 1,
            algorithm: "hybrid",
        };
        let journal = jsonl(&sink, &meta);
        let first = journal.lines().next().unwrap();
        assert!(first.contains("evil \\\"name\\\"\\nwith newline"));
        // Still exactly one physical line for the meta record.
        assert!(!first.is_empty());
    }

    #[test]
    fn csv_field_quotes_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn identical_sinks_serialize_identically() {
        let a = jsonl(&sample_sink(), &RunMeta::default());
        let b = jsonl(&sample_sink(), &RunMeta::default());
        assert_eq!(a, b);
        assert_eq!(csv(&sample_sink()), csv(&sample_sink()));
    }

    #[test]
    fn every_event_kind_serializes() {
        let mut sink = TraceSink::with_capacity(32);
        let kinds = [
            EventKind::AllocatorPressure {
                node: 1,
                free_cpu: 3.25,
                free_mem: 7168.0,
                containers: 4,
            },
            EventKind::ReplicaDeath {
                service: 2,
                container: 9,
            },
            EventKind::RecoveryRespawn {
                service: 2,
                node: 3,
            },
            EventKind::RecoveryBackoff {
                service: 2,
                retry_at_us: 45_000_000,
            },
            EventKind::BalancerStats {
                service: 0,
                routed: 120,
                rejected: 3,
            },
            EventKind::Counter {
                name: "requests.issued",
                value: 500,
            },
            EventKind::ReportLink {
                link: crate::event::LinkTag::Lost,
                node: 3,
                delay_periods: 0,
            },
            EventKind::Actuation {
                outcome: crate::event::ActuationTag::Deduped,
                key: 11,
                attempt: 2,
                retry_at_us: 0,
            },
            EventKind::Breaker {
                state: crate::event::BreakerTag::Open,
                container: 6,
                until_us: 15_000_000,
            },
            EventKind::SafeMode {
                entered: true,
                fresh_nodes: 1,
                total_nodes: 4,
            },
            EventKind::StaleVeto {
                algorithm: "hybrid",
                service: 1,
                age_ticks: 2,
                budget_ticks: 1,
            },
            EventKind::CohortFlow {
                service: 4,
                count: 2_048,
                routed: 2_000,
                rejected: 48,
            },
            EventKind::TimeWarp {
                ticks: 37,
                span_us: 3_700_000,
            },
            EventKind::Snapshot {
                tick: 450,
                now_us: 45_000_000,
            },
            EventKind::Span {
                root: 9,
                entry: 0,
                service: 2,
                depth: 1,
                count: 16,
                queue_us: 250_000,
                service_us: 1_750_000,
            },
            EventKind::Retry {
                root: 9,
                service: 2,
                attempt: 2,
                count: 16,
                retry_at_us: 2_500_000,
            },
            EventKind::Shed {
                service: 0,
                count: 64,
                in_flight: 9_000,
            },
            EventKind::BudgetExhausted {
                root: 9,
                service: 2,
                count: 16,
            },
            EventKind::DeadlineExceeded {
                root: 9,
                service: 2,
                deadline_us: 30_000_000,
            },
        ];
        for kind in kinds {
            sink.emit(SimTime::from_secs(1.0), kind);
        }
        let journal = jsonl(&sink, &RunMeta::default());
        for needle in [
            "\"free_cpu\":3.25",
            "\"ev\":\"replica_death\"",
            "\"ev\":\"recovery_respawn\"",
            "\"retry_at_us\":45000000",
            "\"routed\":120",
            "\"name\":\"requests.issued\"",
            "\"link\":\"lost\"",
            "\"outcome\":\"deduped\"",
            "\"state\":\"open\",\"container\":6,\"until_us\":15000000",
            "\"entered\":true,\"fresh_nodes\":1,\"total_nodes\":4",
            "\"age_ticks\":2,\"budget_ticks\":1",
            "\"ev\":\"cohort_flow\"",
            "\"count\":2048,\"routed\":2000,\"rejected\":48",
            "\"ev\":\"time_warp\"",
            "\"ticks\":37,\"span_us\":3700000",
            "\"ev\":\"snapshot\"",
            "\"tick\":450,\"now_us\":45000000",
            "\"ev\":\"span\"",
            "\"root\":9,\"entry\":0,\"service\":2,\"depth\":1,\"count\":16,\"queue_us\":250000,\"service_us\":1750000",
            "\"ev\":\"retry\"",
            "\"root\":9,\"service\":2,\"attempt\":2,\"count\":16,\"retry_at_us\":2500000",
            "\"ev\":\"shed\"",
            "\"service\":0,\"count\":64,\"in_flight\":9000",
            "\"ev\":\"budget_exhausted\"",
            "\"ev\":\"deadline_exceeded\"",
            "\"root\":9,\"service\":2,\"deadline_us\":30000000",
        ] {
            assert!(journal.contains(needle), "missing {needle} in {journal}");
        }
        let table = csv(&sink);
        assert_eq!(table.lines().count(), 20);
        assert!(table.contains("root9.entry0.d1"));
        assert!(table.contains("root9.a2"));
    }
}
