//! Resource-cost accounting (the paper's future-work "cost-based aspect").
//!
//! The paper motivates hybrid scaling with data-centre economics — power,
//! SLA penalties, machine count — and lists a cost model as future work.
//! [`CostMeter`] integrates the three quantities those costs derive from:
//! allocated core-hours, container-hours (replica overhead), and
//! busy-node-hours (machines that could not be powered down).

/// Integrates resource usage over a run.
///
/// # Example
///
/// ```
/// use hyscale_metrics::CostMeter;
///
/// let mut meter = CostMeter::new();
/// // 10 allocated cores across 3 containers on 2 busy nodes, for 1 hour:
/// meter.record_interval(3600.0, 10.0, 3, 2);
/// assert_eq!(meter.core_hours(), 10.0);
/// assert_eq!(meter.container_hours(), 3.0);
/// assert_eq!(meter.busy_node_hours(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostMeter {
    core_secs: f64,
    container_secs: f64,
    busy_node_secs: f64,
    elapsed_secs: f64,
}

impl CostMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Records an interval of `dt_secs` during which `allocated_cores`
    /// were promised to `containers` containers running on `busy_nodes`
    /// distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if `dt_secs` or `allocated_cores` is negative.
    pub fn record_interval(
        &mut self,
        dt_secs: f64,
        allocated_cores: f64,
        containers: usize,
        busy_nodes: usize,
    ) {
        assert!(dt_secs >= 0.0, "dt must be non-negative");
        assert!(allocated_cores >= 0.0, "cores must be non-negative");
        self.elapsed_secs += dt_secs;
        self.core_secs += allocated_cores * dt_secs;
        self.container_secs += containers as f64 * dt_secs;
        self.busy_node_secs += busy_nodes as f64 * dt_secs;
    }

    /// Raw accumulators `(core_secs, container_secs, busy_node_secs,
    /// elapsed_secs)` (snapshot support).
    pub fn raw_parts(&self) -> (f64, f64, f64, f64) {
        (
            self.core_secs,
            self.container_secs,
            self.busy_node_secs,
            self.elapsed_secs,
        )
    }

    /// Rebuilds a meter from accumulators captured by
    /// [`CostMeter::raw_parts`].
    pub fn from_raw_parts(parts: (f64, f64, f64, f64)) -> Self {
        CostMeter {
            core_secs: parts.0,
            container_secs: parts.1,
            busy_node_secs: parts.2,
            elapsed_secs: parts.3,
        }
    }

    /// Allocated core-hours.
    pub fn core_hours(&self) -> f64 {
        self.core_secs / 3600.0
    }

    /// Container-hours (each replica costs its base overhead).
    pub fn container_hours(&self) -> f64 {
        self.container_secs / 3600.0
    }

    /// Hours of nodes kept busy (un-powered-down).
    pub fn busy_node_hours(&self) -> f64 {
        self.busy_node_secs / 3600.0
    }

    /// Mean allocated cores over the metered period; 0.0 if nothing was
    /// recorded.
    pub fn mean_cores(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.core_secs / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Mean busy nodes over the metered period.
    pub fn mean_busy_nodes(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.busy_node_secs / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// A simple composite cost: `core_hours + container_weight ·
    /// container_hours + node_weight · busy_node_hours`. Weights express
    /// the relative price of replica overhead and of keeping a machine on.
    pub fn composite(&self, container_weight: f64, node_weight: f64) -> f64 {
        self.core_hours()
            + container_weight * self.container_hours()
            + node_weight * self.busy_node_hours()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_over_intervals() {
        let mut m = CostMeter::new();
        m.record_interval(1800.0, 4.0, 2, 1);
        m.record_interval(1800.0, 8.0, 4, 2);
        assert_eq!(m.core_hours(), 6.0); // 4*0.5h + 8*0.5h
        assert_eq!(m.container_hours(), 3.0); // 2*0.5h + 4*0.5h
        assert_eq!(m.busy_node_hours(), 1.5);
        assert_eq!(m.mean_cores(), 6.0);
        assert_eq!(m.mean_busy_nodes(), 1.5);
    }

    #[test]
    fn empty_meter_is_zero() {
        let m = CostMeter::new();
        assert_eq!(m.core_hours(), 0.0);
        assert_eq!(m.mean_cores(), 0.0);
        assert_eq!(m.composite(1.0, 1.0), 0.0);
    }

    #[test]
    fn composite_weights() {
        let mut m = CostMeter::new();
        m.record_interval(3600.0, 1.0, 1, 1);
        assert_eq!(m.composite(0.0, 0.0), 1.0);
        assert_eq!(m.composite(2.0, 3.0), 6.0);
    }

    #[test]
    #[should_panic(expected = "dt must be non-negative")]
    fn negative_dt_panics() {
        CostMeter::new().record_interval(-1.0, 0.0, 0, 0);
    }
}
