//! Time-series recording for utilization plots (Fig. 9 and the ablation
//! benches' oscillation analysis).

/// A named series of `(seconds, value)` points.
///
/// # Example
///
/// ```
/// use hyscale_metrics::TimeSeries;
///
/// let mut cpu = TimeSeries::new("cpu-pct");
/// cpu.push(0.0, 10.0);
/// cpu.push(30.0, 40.0);
/// cpu.push(60.0, 20.0);
/// assert_eq!(cpu.len(), 3);
/// assert!((cpu.mean() - 23.333).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series' name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point. Times should be non-decreasing; out-of-order
    /// points are accepted but downsampling assumes order.
    pub fn push(&mut self, secs: f64, value: f64) {
        self.points.push((secs, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Largest value; 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Buckets the series into windows of `window_secs` and returns the
    /// mean of each non-empty window as `(window start, mean)`.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not strictly positive.
    pub fn downsample(&self, window_secs: f64) -> Vec<(f64, f64)> {
        assert!(window_secs > 0.0, "window must be positive");
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut bucket: Option<(usize, f64, usize)> = None; // (index, sum, count)
        for &(t, v) in &self.points {
            let idx = (t / window_secs).floor() as usize;
            match bucket {
                Some((b, sum, n)) if b == idx => bucket = Some((b, sum + v, n + 1)),
                Some((b, sum, n)) => {
                    out.push((b as f64 * window_secs, sum / n as f64));
                    let _ = (sum, n);
                    bucket = Some((idx, v, 1));
                }
                None => bucket = Some((idx, v, 1)),
            }
        }
        if let Some((b, sum, n)) = bucket {
            out.push((b as f64 * window_secs, sum / n as f64));
        }
        out
    }

    /// Counts direction reversals in the series — a cheap oscillation
    /// (thrashing) metric for the rescale-interval ablation: a value
    /// sequence `1, 3, 2, 4` has two reversals.
    pub fn reversals(&self) -> usize {
        let values: Vec<f64> = self.points.iter().map(|&(_, v)| v).collect();
        let mut reversals = 0;
        let mut last_dir = 0i8;
        for w in values.windows(2) {
            let dir = if w[1] > w[0] {
                1
            } else if w[1] < w[0] {
                -1
            } else {
                0
            };
            if dir != 0 {
                if last_dir != 0 && dir != last_dir {
                    reversals += 1;
                }
                last_dir = dir;
            }
        }
        reversals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new("test");
        for (i, &v) in values.iter().enumerate() {
            ts.push(i as f64, v);
        }
        ts
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new("empty");
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.max(), 0.0);
        assert_eq!(ts.reversals(), 0);
        assert!(ts.downsample(10.0).is_empty());
    }

    #[test]
    fn mean_and_max() {
        let ts = series(&[1.0, 2.0, 3.0]);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.max(), 3.0);
        assert_eq!(ts.name(), "test");
    }

    #[test]
    fn downsample_buckets_means() {
        let mut ts = TimeSeries::new("t");
        ts.push(0.0, 10.0);
        ts.push(5.0, 20.0);
        ts.push(12.0, 30.0);
        ts.push(25.0, 50.0);
        let ds = ts.downsample(10.0);
        assert_eq!(ds, vec![(0.0, 15.0), (10.0, 30.0), (20.0, 50.0)]);
    }

    #[test]
    fn reversals_count_direction_changes() {
        assert_eq!(series(&[1.0, 2.0, 3.0, 4.0]).reversals(), 0);
        assert_eq!(series(&[1.0, 3.0, 2.0, 4.0]).reversals(), 2);
        assert_eq!(series(&[4.0, 3.0, 2.0, 1.0]).reversals(), 0);
        // Plateaus do not create reversals.
        assert_eq!(series(&[1.0, 2.0, 2.0, 3.0]).reversals(), 0);
        assert_eq!(series(&[1.0, 2.0, 2.0, 1.0]).reversals(), 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        series(&[1.0]).downsample(0.0);
    }
}
