//! A small counters/histograms registry with deterministic ordering.
//!
//! The simulation driver registers its counters once at setup and bumps
//! them by index handle during the run — no hashing, no string lookups in
//! the hot path. Snapshots iterate in registration order, so dumping the
//! registry into a trace journal is deterministic by construction.

use crate::summary::Summary;

/// Index handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Index handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Named monotonic counters and sample histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Summary)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) the counter named `name` and returns its
    /// handle. Registering the same name twice returns the same handle.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(idx) = self.counters.iter().position(|&(n, _)| n == name) {
            return CounterId(idx);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) the histogram named `name`.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(idx) = self.histograms.iter().position(|(n, _)| *n == name) {
            return HistogramId(idx);
        }
        self.histograms.push((name, Summary::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Current value of a counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Records one sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.record(value);
    }

    /// The accumulated samples of a histogram.
    pub fn summary(&self, id: HistogramId) -> &Summary {
        &self.histograms[id.0].1
    }

    /// All counters as `(name, value)`, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// All histograms as `(name, summary)`, in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Summary)> {
        self.histograms.iter().map(|(n, s)| (*n, s))
    }

    /// Number of registered counters.
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_bump_and_snapshot_in_order() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("alpha");
        let b = reg.counter("beta");
        reg.inc(a);
        reg.add(b, 5);
        reg.inc(a);
        assert_eq!(reg.get(a), 2);
        assert_eq!(reg.get(b), 5);
        let snap: Vec<_> = reg.counters().collect();
        assert_eq!(snap, vec![("alpha", 2), ("beta", 5)]);
        assert_eq!(reg.counter_count(), 2);
    }

    #[test]
    fn duplicate_registration_returns_the_same_handle() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        reg.inc(a);
        reg.inc(b);
        assert_eq!(reg.get(a), 2);
        assert_eq!(reg.counter_count(), 1);
    }

    #[test]
    fn histograms_accumulate_samples() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("latency");
        assert_eq!(reg.histogram("latency"), h);
        for v in [1.0, 2.0, 3.0] {
            reg.observe(h, v);
        }
        assert_eq!(reg.summary(h).count(), 3);
        assert_eq!(reg.summary(h).mean(), 2.0);
        let names: Vec<&str> = reg.histograms().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["latency"]);
    }
}
