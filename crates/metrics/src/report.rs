//! ASCII report tables for the figure-regeneration binaries.
//!
//! Every `figN` binary prints a table whose rows mirror the series of the
//! corresponding paper figure, so EXPERIMENTS.md can record
//! paper-vs-measured side by side.

/// A simple left-padded ASCII table.
///
/// # Example
///
/// ```
/// use hyscale_metrics::Table;
///
/// let mut t = Table::new(vec!["algorithm", "mean rt (ms)"]);
/// t.row(vec!["kubernetes".into(), "231.0".into()]);
/// t.row(vec!["hybrid".into(), "155.1".into()]);
/// let text = t.render();
/// assert!(text.contains("kubernetes"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of `f64` values after a label, formatted
    /// with 3 decimals.
    pub fn row_f64(&mut self, label: impl Into<String>, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a speedup of `baseline` over `candidate` the way the paper
/// reports them ("1.49x speedups in response times"): how many times
/// faster the candidate is than the baseline.
///
/// Returns `"n/a"` if either input is non-positive.
pub fn format_speedup(baseline: f64, candidate: f64) -> String {
    if baseline <= 0.0 || candidate <= 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", baseline / candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(!text.contains('3'));
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(vec!["label", "v1", "v2"]);
        t.row_f64("x", &[1.0, 2.5]);
        assert!(t.render().contains("1.000"));
        assert!(t.render().contains("2.500"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(format_speedup(1.49, 1.0), "1.49x");
        assert_eq!(format_speedup(1.0, 2.0), "0.50x");
        assert_eq!(format_speedup(0.0, 1.0), "n/a");
        assert_eq!(format_speedup(1.0, 0.0), "n/a");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(vec!["h"]);
        t.row(vec!["v".into()]);
        assert_eq!(t.to_string(), t.render());
    }
}
