//! Per-service availability accounting: downtime, MTTR, uptime %.
//!
//! The paper's robustness claim is an availability number — the platform
//! keeps services at ≥ 99.8% uptime while nodes and replicas fail
//! underneath them. This module turns the driver's per-tick liveness
//! observations into that number: a service is **up** in a tick when at
//! least one ready (non-starting, non-removed) replica exists, **down**
//! otherwise; contiguous down ticks form an *outage*; an outage ends when
//! a ready replica appears again (a *repair*). MTTR is mean repair time
//! over completed outages.
//!
//! The tracker stores only raw sums, so per-seed results merge exactly
//! (the paper averages each experiment over five seeded runs).

/// Streaming accumulator for one service's availability over a run.
///
/// Feed it once per tick via [`AvailabilityTracker::record_tick`]; the
/// driver also reports recovery activity (respawns, respawn failures,
/// replica deaths) so the final [`ServiceAvailability`] carries the
/// paper's recovery-failure counts alongside uptime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AvailabilityTracker {
    observed_secs: f64,
    down_secs: f64,
    outages: u64,
    repairs: u64,
    repair_secs: f64,
    /// Seconds of downtime in the outage currently in progress, if any.
    current_outage_secs: Option<f64>,
    respawns: u64,
    recovery_failures: u64,
    deaths: u64,
}

impl AvailabilityTracker {
    /// A fresh tracker with nothing observed.
    pub fn new() -> Self {
        AvailabilityTracker::default()
    }

    /// Raw internal counters in declaration order: `(observed_secs,
    /// down_secs, outages, repairs, repair_secs, current_outage_secs,
    /// respawns, recovery_failures, deaths)` (snapshot support).
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> (f64, f64, u64, u64, f64, Option<f64>, u64, u64, u64) {
        (
            self.observed_secs,
            self.down_secs,
            self.outages,
            self.repairs,
            self.repair_secs,
            self.current_outage_secs,
            self.respawns,
            self.recovery_failures,
            self.deaths,
        )
    }

    /// Rebuilds a tracker from counters captured by
    /// [`AvailabilityTracker::raw_parts`].
    #[allow(clippy::type_complexity)]
    pub fn from_raw_parts(parts: (f64, f64, u64, u64, f64, Option<f64>, u64, u64, u64)) -> Self {
        AvailabilityTracker {
            observed_secs: parts.0,
            down_secs: parts.1,
            outages: parts.2,
            repairs: parts.3,
            repair_secs: parts.4,
            current_outage_secs: parts.5,
            respawns: parts.6,
            recovery_failures: parts.7,
            deaths: parts.8,
        }
    }

    /// Records one tick of length `dt_secs` during which the service was
    /// `up` (had at least one ready replica) or not.
    pub fn record_tick(&mut self, dt_secs: f64, up: bool) {
        self.observed_secs += dt_secs;
        if up {
            if let Some(outage_secs) = self.current_outage_secs.take() {
                self.repairs += 1;
                self.repair_secs += outage_secs;
            }
        } else {
            self.down_secs += dt_secs;
            match &mut self.current_outage_secs {
                Some(outage_secs) => *outage_secs += dt_secs,
                None => {
                    self.outages += 1;
                    self.current_outage_secs = Some(dt_secs);
                }
            }
        }
    }

    /// Records a replica death the platform must recover from (node
    /// crash, OOM-kill, or a replica that vanished without a scale-in
    /// decision).
    pub fn record_death(&mut self) {
        self.deaths += 1;
    }

    /// Records a successful recovery respawn.
    pub fn record_respawn(&mut self) {
        self.respawns += 1;
    }

    /// Records a failed recovery attempt (no node could host the
    /// replacement replica).
    pub fn record_recovery_failure(&mut self) {
        self.recovery_failures += 1;
    }

    /// Closes the books and returns the run's availability figures. An
    /// outage still in progress counts toward downtime but not MTTR
    /// (there is no repair to measure).
    pub fn finalize(self) -> ServiceAvailability {
        ServiceAvailability {
            observed_secs: self.observed_secs,
            down_secs: self.down_secs,
            outages: self.outages,
            repairs: self.repairs,
            repair_secs: self.repair_secs,
            respawns: self.respawns,
            recovery_failures: self.recovery_failures,
            deaths: self.deaths,
        }
    }
}

/// Final availability figures for one service over one or more runs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceAvailability {
    /// Total simulated time observed.
    pub observed_secs: f64,
    /// Time with no ready replica.
    pub down_secs: f64,
    /// Number of distinct outages (contiguous down intervals).
    pub outages: u64,
    /// Outages that ended within the run.
    pub repairs: u64,
    /// Total downtime across *repaired* outages (the MTTR numerator).
    pub repair_secs: f64,
    /// Successful recovery respawns.
    pub respawns: u64,
    /// Failed recovery attempts.
    pub recovery_failures: u64,
    /// Replica deaths the platform had to recover from.
    pub deaths: u64,
}

impl ServiceAvailability {
    /// Uptime percentage over the observed window (100.0 when nothing
    /// was observed — a service that never existed was never down).
    pub fn uptime_pct(&self) -> f64 {
        if self.observed_secs <= 0.0 {
            100.0
        } else {
            100.0 * (self.observed_secs - self.down_secs) / self.observed_secs
        }
    }

    /// Mean time to repair over completed outages, seconds (0.0 if no
    /// outage was ever repaired).
    pub fn mttr_secs(&self) -> f64 {
        if self.repairs == 0 {
            0.0
        } else {
            self.repair_secs / self.repairs as f64
        }
    }

    /// Merges another run's figures into this one (raw sums add, so
    /// uptime % becomes the time-weighted average across runs).
    pub fn merge(&mut self, other: &ServiceAvailability) {
        self.observed_secs += other.observed_secs;
        self.down_secs += other.down_secs;
        self.outages += other.outages;
        self.repairs += other.repairs;
        self.repair_secs += other.repair_secs;
        self.respawns += other.respawns;
        self.recovery_failures += other.recovery_failures;
        self.deaths += other.deaths;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_up_service_has_full_uptime() {
        let mut t = AvailabilityTracker::new();
        for _ in 0..100 {
            t.record_tick(0.1, true);
        }
        let a = t.finalize();
        assert_eq!(a.uptime_pct(), 100.0);
        assert_eq!(a.outages, 0);
        assert_eq!(a.mttr_secs(), 0.0);
    }

    #[test]
    fn outage_and_repair_produce_mttr() {
        let mut t = AvailabilityTracker::new();
        // 5 s up, 2 s down, 3 s up: one outage repaired after 2 s.
        for _ in 0..50 {
            t.record_tick(0.1, true);
        }
        for _ in 0..20 {
            t.record_tick(0.1, false);
        }
        for _ in 0..30 {
            t.record_tick(0.1, true);
        }
        let a = t.finalize();
        assert_eq!(a.outages, 1);
        assert_eq!(a.repairs, 1);
        assert!((a.mttr_secs() - 2.0).abs() < 1e-9, "mttr {}", a.mttr_secs());
        assert!((a.uptime_pct() - 80.0).abs() < 1e-9, "{}", a.uptime_pct());
    }

    #[test]
    fn unrepaired_outage_counts_as_downtime_but_not_mttr() {
        let mut t = AvailabilityTracker::new();
        t.record_tick(1.0, true);
        t.record_tick(1.0, false);
        t.record_tick(1.0, false);
        let a = t.finalize();
        assert_eq!(a.outages, 1);
        assert_eq!(a.repairs, 0);
        assert_eq!(a.mttr_secs(), 0.0);
        assert!((a.uptime_pct() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn deaths_without_recovery_leave_mttr_at_zero() {
        // Replica deaths that never translate into a repaired outage must
        // not divide by zero or invent a repair time: MTTR stays 0.0 while
        // downtime and the death count are still reported.
        let mut t = AvailabilityTracker::new();
        t.record_death();
        t.record_death();
        t.record_recovery_failure();
        t.record_tick(1.0, true);
        t.record_tick(1.0, false); // outage runs to end of window
        let a = t.finalize();
        assert_eq!(a.deaths, 2);
        assert_eq!(a.recovery_failures, 1);
        assert_eq!(a.repairs, 0);
        assert_eq!(a.mttr_secs(), 0.0);
        assert!(a.mttr_secs().is_finite());
        assert!((a.uptime_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_with_zero_repairs_keeps_mttr_finite() {
        let mut t = AvailabilityTracker::new();
        t.record_tick(1.0, false);
        let mut merged = t.finalize();
        merged.merge(&AvailabilityTracker::new().finalize());
        assert_eq!(merged.repairs, 0);
        assert_eq!(merged.mttr_secs(), 0.0);
        assert_eq!(merged.uptime_pct(), 0.0);
    }

    #[test]
    fn separate_outages_are_counted_separately() {
        let mut t = AvailabilityTracker::new();
        for up in [true, false, true, false, false, true] {
            t.record_tick(1.0, up);
        }
        let a = t.finalize();
        assert_eq!(a.outages, 2);
        assert_eq!(a.repairs, 2);
        assert!((a.mttr_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn merge_is_time_weighted() {
        let mut a = AvailabilityTracker::new();
        for _ in 0..10 {
            a.record_tick(1.0, true);
        }
        let mut b = AvailabilityTracker::new();
        for i in 0..10 {
            b.record_tick(1.0, i >= 5);
        }
        b.record_death();
        b.record_respawn();
        b.record_recovery_failure();
        let mut merged = a.finalize();
        merged.merge(&b.finalize());
        assert!((merged.uptime_pct() - 75.0).abs() < 1e-9);
        assert_eq!(merged.deaths, 1);
        assert_eq!(merged.respawns, 1);
        assert_eq!(merged.recovery_failures, 1);
        assert_eq!(merged.outages, 1);
    }

    #[test]
    fn empty_tracker_defaults_to_up() {
        let a = AvailabilityTracker::new().finalize();
        assert_eq!(a.uptime_pct(), 100.0);
        assert_eq!(a.mttr_secs(), 0.0);
    }
}
