//! Service-level agreement accounting.
//!
//! The paper's economics: tenants "negotiate a price for a specified
//! level of quality of service, usually defined in terms of availability
//! and response times ... The SLA stipulates the monetary penalty for
//! each violation". This module turns a run's request outcomes into SLA
//! violations and penalties, closing the loop between the autoscalers'
//! behaviour and the cost savings the paper argues for.

use crate::failures::RequestOutcomes;

/// An SLA: a response-time bound, an availability floor, and the
/// per-violation penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaPolicy {
    /// Requests slower than this violate the SLA, seconds.
    pub response_time_secs: f64,
    /// Minimum availability (completed/issued), percent.
    pub availability_pct: f64,
    /// Monetary penalty per violating request, arbitrary currency units.
    pub penalty_per_violation: f64,
}

impl SlaPolicy {
    /// A typical interactive-service SLA: 1 s responses, 99.8%
    /// availability (the paper's reported floor), 0.01 per violation.
    pub fn interactive() -> Self {
        SlaPolicy {
            response_time_secs: 1.0,
            availability_pct: 99.8,
            penalty_per_violation: 0.01,
        }
    }

    /// Evaluates the policy against a run's outcomes.
    ///
    /// Failed requests always count as violations; completed requests
    /// violate when they exceed the response-time bound.
    pub fn evaluate(&self, outcomes: &RequestOutcomes) -> SlaReport {
        let slow = outcomes.response_times.count_above(self.response_time_secs);
        let failed = outcomes.failures.total();
        let violations = slow as u64 + failed;
        SlaReport {
            policy: *self,
            slow_requests: slow as u64,
            failed_requests: failed,
            violations,
            penalty: violations as f64 * self.penalty_per_violation,
            availability_met: outcomes.availability_pct() >= self.availability_pct,
            violation_pct: if outcomes.issued == 0 {
                0.0
            } else {
                violations as f64 / outcomes.issued as f64 * 100.0
            },
        }
    }
}

impl Default for SlaPolicy {
    fn default() -> Self {
        SlaPolicy::interactive()
    }
}

/// Result of evaluating an [`SlaPolicy`] against a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaReport {
    /// The policy evaluated.
    pub policy: SlaPolicy,
    /// Completed requests slower than the bound.
    pub slow_requests: u64,
    /// Requests that failed outright.
    pub failed_requests: u64,
    /// Total violating requests.
    pub violations: u64,
    /// Total monetary penalty.
    pub penalty: f64,
    /// Whether the availability floor held.
    pub availability_met: bool,
    /// Violations as a percentage of issued requests.
    pub violation_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes(rts: &[f64], failures: u64) -> RequestOutcomes {
        let mut o = RequestOutcomes::new();
        for &rt in rts {
            o.record_issued();
            o.record_completed(rt);
        }
        for _ in 0..failures {
            o.record_issued();
            o.record_timeout_failure();
        }
        o
    }

    #[test]
    fn counts_slow_and_failed_as_violations() {
        let o = outcomes(&[0.2, 0.5, 1.5, 3.0], 2);
        let report = SlaPolicy::interactive().evaluate(&o);
        assert_eq!(report.slow_requests, 2);
        assert_eq!(report.failed_requests, 2);
        assert_eq!(report.violations, 4);
        assert!((report.penalty - 0.04).abs() < 1e-12);
        assert!((report.violation_pct - 4.0 / 6.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn availability_floor() {
        // 2 of 4 failed: 50% availability < 99.8%.
        let bad = outcomes(&[0.1, 0.1], 2);
        assert!(!SlaPolicy::interactive().evaluate(&bad).availability_met);
        let good = outcomes(&[0.1; 1000], 1);
        assert!(SlaPolicy::interactive().evaluate(&good).availability_met);
    }

    #[test]
    fn empty_run_is_clean() {
        let o = RequestOutcomes::new();
        let report = SlaPolicy::default().evaluate(&o);
        assert_eq!(report.violations, 0);
        assert_eq!(report.penalty, 0.0);
        assert!(report.availability_met);
        assert_eq!(report.violation_pct, 0.0);
    }

    #[test]
    fn boundary_is_exclusive() {
        // Exactly at the bound is NOT a violation.
        let o = outcomes(&[1.0], 0);
        let report = SlaPolicy::interactive().evaluate(&o);
        assert_eq!(report.slow_requests, 0);
    }
}
