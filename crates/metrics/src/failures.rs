//! Request-outcome accounting: completions, removal failures, connection
//! failures, and the derived availability metrics of Figures 6–8 and 10.

use crate::summary::Summary;

/// Counts of failed requests by class (the stacked bars of Fig. 6a/7a/8a).
///
/// The paper's charts stack two classes — removal vs connection — but
/// the tally keeps the connection bucket split into its three causes
/// (timeout, queue abort, infrastructure death) so retry policies and
/// reports can tell retryable failures from fatal ones;
/// [`FailureTally::connection`] recovers the paper's rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureTally {
    /// Requests aborted because their replica was removed by scale-in.
    pub removal: u64,
    /// Requests not done by their deadline (client SLA expired).
    pub timeout: u64,
    /// Requests rejected at admission: queue overflow or no accepting
    /// replica.
    pub queue_abort: u64,
    /// Requests whose replica died underneath them (node crash, OOM
    /// kill).
    pub infra_death: u64,
}

impl FailureTally {
    /// Total failed requests.
    pub fn total(&self) -> u64 {
        self.removal + self.connection()
    }

    /// The paper's "connection failures" rollup: everything the client
    /// experiences as a reset or an expired call rather than a scaling
    /// decision.
    pub fn connection(&self) -> u64 {
        self.timeout + self.queue_abort + self.infra_death
    }
}

impl std::ops::Add for FailureTally {
    type Output = FailureTally;
    fn add(self, rhs: FailureTally) -> FailureTally {
        FailureTally {
            removal: self.removal + rhs.removal,
            timeout: self.timeout + rhs.timeout,
            queue_abort: self.queue_abort + rhs.queue_abort,
            infra_death: self.infra_death + rhs.infra_death,
        }
    }
}

impl std::ops::AddAssign for FailureTally {
    fn add_assign(&mut self, rhs: FailureTally) {
        *self = *self + rhs;
    }
}

/// Full request-outcome record of one experiment run: how many requests
/// were issued, completed, and failed, and the response-time distribution
/// of the completed ones.
#[derive(Debug, Clone, Default)]
pub struct RequestOutcomes {
    /// Requests issued by clients.
    pub issued: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Failure counts by class.
    pub failures: FailureTally,
    /// Response times of completed requests, in seconds.
    pub response_times: Summary,
}

impl RequestOutcomes {
    /// Creates an empty record.
    pub fn new() -> Self {
        RequestOutcomes::default()
    }

    /// Records a request being issued by a client.
    pub fn record_issued(&mut self) {
        self.issued += 1;
    }

    /// Records a completion with its response time in seconds.
    pub fn record_completed(&mut self, response_secs: f64) {
        self.completed += 1;
        self.response_times.record(response_secs);
    }

    /// Records a removal failure.
    pub fn record_removal_failure(&mut self) {
        self.failures.removal += 1;
    }

    /// Records a timeout failure.
    pub fn record_timeout_failure(&mut self) {
        self.failures.timeout += 1;
    }

    /// Records a queue-abort failure (admission rejection).
    pub fn record_queue_abort_failure(&mut self) {
        self.failures.queue_abort += 1;
    }

    /// Records an infrastructure-death failure (node crash, OOM kill).
    pub fn record_infra_death_failure(&mut self) {
        self.failures.infra_death += 1;
    }

    /// Records `n` requests issued at once (a cohort arrival batch).
    pub fn record_issued_n(&mut self, n: u64) {
        self.issued += n;
    }

    /// Records `n` completions sharing one response time — a cohort whose
    /// members finished together. O(n): the summary retains every sample
    /// so the distribution stays exact; cohort counts at the driver level
    /// are per-tick batches, not the million-member bench cohorts.
    pub fn record_completed_n(&mut self, response_secs: f64, n: u64) {
        self.completed += n;
        for _ in 0..n {
            self.response_times.record(response_secs);
        }
    }

    /// Records `n` removal failures at once.
    pub fn record_removal_failures(&mut self, n: u64) {
        self.failures.removal += n;
    }

    /// Records `n` timeout failures at once.
    pub fn record_timeout_failures(&mut self, n: u64) {
        self.failures.timeout += n;
    }

    /// Records `n` queue-abort failures at once.
    pub fn record_queue_abort_failures(&mut self, n: u64) {
        self.failures.queue_abort += n;
    }

    /// Records `n` infrastructure-death failures at once.
    pub fn record_infra_death_failures(&mut self, n: u64) {
        self.failures.infra_death += n;
    }

    /// Fraction of issued requests that failed, in percent (Fig. 6–8's
    /// "% requests failed"); 0.0 when nothing was issued.
    pub fn failed_pct(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.failures.total() as f64 / self.issued as f64 * 100.0
        }
    }

    /// Removal-failure percentage of issued requests.
    pub fn removal_failed_pct(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.failures.removal as f64 / self.issued as f64 * 100.0
        }
    }

    /// Connection-failure percentage of issued requests (the rollup of
    /// timeouts, queue aborts, and infrastructure deaths).
    pub fn connection_failed_pct(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.failures.connection() as f64 / self.issued as f64 * 100.0
        }
    }

    /// Service availability in percent (the paper reports "at least 99.8%
    /// up-time"): completed over issued.
    pub fn availability_pct(&self) -> f64 {
        if self.issued == 0 {
            100.0
        } else {
            self.completed as f64 / self.issued as f64 * 100.0
        }
    }

    /// Mean response time in seconds.
    pub fn mean_response_secs(&self) -> f64 {
        self.response_times.mean()
    }

    /// Requests still unresolved (issued but neither completed nor failed;
    /// in-flight at the end of a run).
    pub fn outstanding(&self) -> u64 {
        self.issued
            .saturating_sub(self.completed)
            .saturating_sub(self.failures.total())
    }

    /// Merges another run's outcomes into this one (multi-seed averaging).
    pub fn merge(&mut self, other: &RequestOutcomes) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.failures += other.failures;
        self.response_times.merge(&other.response_times);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RequestOutcomes {
        let mut o = RequestOutcomes::new();
        for _ in 0..100 {
            o.record_issued();
        }
        for i in 0..90 {
            o.record_completed(0.1 + i as f64 * 0.01);
        }
        for _ in 0..3 {
            o.record_timeout_failure();
        }
        for _ in 0..2 {
            o.record_queue_abort_failure();
        }
        o.record_infra_death_failure();
        for _ in 0..4 {
            o.record_removal_failure();
        }
        o
    }

    #[test]
    fn percentages() {
        let o = sample();
        assert_eq!(o.failed_pct(), 10.0);
        assert_eq!(o.removal_failed_pct(), 4.0);
        assert_eq!(o.connection_failed_pct(), 6.0);
        assert_eq!(o.availability_pct(), 90.0);
        assert_eq!(o.outstanding(), 0);
    }

    #[test]
    fn empty_outcomes_are_benign() {
        let o = RequestOutcomes::new();
        assert_eq!(o.failed_pct(), 0.0);
        assert_eq!(o.availability_pct(), 100.0);
        assert_eq!(o.mean_response_secs(), 0.0);
        assert_eq!(o.outstanding(), 0);
    }

    #[test]
    fn outstanding_counts_in_flight() {
        let mut o = RequestOutcomes::new();
        o.record_issued();
        o.record_issued();
        o.record_completed(0.5);
        assert_eq!(o.outstanding(), 1);
    }

    #[test]
    fn batch_records_match_singles() {
        let mut batched = RequestOutcomes::new();
        batched.record_issued_n(10);
        batched.record_completed_n(0.25, 6);
        batched.record_timeout_failures(1);
        batched.record_queue_abort_failures(1);
        batched.record_infra_death_failures(1);
        batched.record_removal_failures(1);

        let mut single = RequestOutcomes::new();
        for _ in 0..10 {
            single.record_issued();
        }
        for _ in 0..6 {
            single.record_completed(0.25);
        }
        single.record_timeout_failure();
        single.record_queue_abort_failure();
        single.record_infra_death_failure();
        single.record_removal_failure();

        assert_eq!(batched.issued, single.issued);
        assert_eq!(batched.completed, single.completed);
        assert_eq!(batched.failures, single.failures);
        assert_eq!(batched.outstanding(), 0);
        assert_eq!(
            batched.response_times.count(),
            single.response_times.count()
        );
        assert_eq!(batched.mean_response_secs(), single.mean_response_secs());
    }

    #[test]
    fn tally_arithmetic() {
        let a = FailureTally {
            removal: 1,
            timeout: 2,
            queue_abort: 3,
            infra_death: 4,
        };
        let b = FailureTally {
            removal: 10,
            timeout: 20,
            queue_abort: 30,
            infra_death: 40,
        };
        let c = a + b;
        assert_eq!(c.removal, 11);
        assert_eq!(c.timeout, 22);
        assert_eq!(c.queue_abort, 33);
        assert_eq!(c.infra_death, 44);
        assert_eq!(c.connection(), 99);
        assert_eq!(c.total(), 110);
    }

    #[test]
    fn merge_accumulates_runs() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.issued, 200);
        assert_eq!(a.completed, 180);
        assert_eq!(a.failures.total(), 20);
        assert_eq!(a.failed_pct(), 10.0);
        assert_eq!(a.response_times.count(), 180);
    }

    #[test]
    fn mean_response_time_reflects_samples() {
        let mut o = RequestOutcomes::new();
        o.record_issued();
        o.record_issued();
        o.record_completed(1.0);
        o.record_completed(3.0);
        assert_eq!(o.mean_response_secs(), 2.0);
    }
}
