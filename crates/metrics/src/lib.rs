//! Experiment metrics for HyScale: streaming statistics, failure
//! accounting, utilization time series, and report tables.
//!
//! The paper evaluates its algorithms on *user-perceived performance*:
//! average response times and the percentage of failed requests, with
//! failures split into **removal failures** (requests aborted by a
//! scale-in decision) and **connection failures** (queue overflow, no live
//! replica, or timeout). This crate provides the accumulators the
//! simulation driver feeds and the tables the benches print.
//!
//! # Example
//!
//! ```
//! use hyscale_metrics::Summary;
//!
//! let mut response_times = Summary::new();
//! for ms in [120.0, 80.0, 95.0, 220.0] {
//!     response_times.record(ms);
//! }
//! assert_eq!(response_times.count(), 4);
//! assert!(response_times.mean() > 100.0);
//! assert_eq!(response_times.max(), 220.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod availability;
mod cost;
mod failures;
mod registry;
mod report;
mod sla;
mod summary;
mod timeseries;

pub use availability::{AvailabilityTracker, ServiceAvailability};
pub use cost::CostMeter;
pub use failures::{FailureTally, RequestOutcomes};
pub use registry::{CounterId, HistogramId, MetricsRegistry};
pub use report::{format_speedup, Table};
pub use sla::{SlaPolicy, SlaReport};
pub use summary::Summary;
pub use timeseries::TimeSeries;
