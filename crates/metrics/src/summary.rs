//! Streaming summary statistics with exact percentiles.

/// Accumulates samples and answers count/mean/min/max/std-dev/percentile
/// queries.
///
/// The mean and variance are maintained streamingly (Welford's algorithm);
/// percentiles are exact, computed from a retained copy of the samples
/// (simulation runs produce at most a few hundred thousand samples, so the
/// memory cost is modest and exactness beats sketching for
/// paper-reproduction purposes).
///
/// # Example
///
/// ```
/// use hyscale_metrics::Summary;
///
/// let s: Summary = (1..=100).map(f64::from).collect();
/// assert_eq!(s.count(), 100);
/// assert_eq!(s.mean(), 50.5);
/// assert_eq!(s.percentile(50.0), 50.5);
/// assert_eq!(s.percentile(100.0), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct Summary {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Whether `samples` is known to be sorted (lazily maintained).
    sorted: std::cell::Cell<bool>,
    /// NaN samples rejected at record time (see [`Summary::record`]).
    nan_dropped: u64,
    /// Sorted copy of `samples`, built lazily for percentile queries on
    /// unsorted data and reused (no reallocation) until invalidated by
    /// the next `record`.
    cache: std::cell::RefCell<Vec<f64>>,
    cache_valid: std::cell::Cell<bool>,
}

impl Default for Summary {
    /// Identical to [`Summary::new`] (an empty summary with proper
    /// `min`/`max` sentinels, not zeroed fields).
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            samples: Vec::new(),
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sorted: std::cell::Cell::new(true),
            nan_dropped: 0,
            cache: std::cell::RefCell::new(Vec::new()),
            cache_valid: std::cell::Cell::new(false),
        }
    }

    /// Records one sample.
    ///
    /// NaN values are **dropped**, not recorded: a NaN sample would
    /// poison the mean and every percentile sort. Drops are counted in
    /// [`Summary::nan_dropped`] so callers can notice a polluted input
    /// stream instead of failing deep inside a later report query.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            self.nan_dropped += 1;
            return;
        }
        self.cache_valid.set(false);
        let n = self.samples.len() as f64 + 1.0;
        let delta = value - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.sorted.get() {
            if let Some(&last) = self.samples.last() {
                if value < last {
                    self.sorted.set(false);
                }
            }
        }
        self.samples.push(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The recorded samples in insertion order (snapshot support).
    ///
    /// Replaying these through [`Summary::record`] in order — plus
    /// [`Summary::nan_dropped`] NaN records — rebuilds a bit-identical
    /// summary, because Welford's updates are order-deterministic.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Population standard deviation; 0.0 when fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            (self.m2 / self.samples.len() as f64).sqrt()
        }
    }

    /// Exact percentile (nearest-rank with linear interpolation).
    ///
    /// The rank `p` is defined for every `f64`:
    ///
    /// * out-of-range `p` is clamped into `[0, 100]`, so `p < 0` returns
    ///   the minimum and `p > 100` the maximum — never an interpolation
    ///   with a negative or past-the-end rank;
    /// * a NaN `p` is treated as 0 (the minimum), keeping the return
    ///   value a real sample instead of poisoning downstream arithmetic;
    /// * an empty summary returns 0.0 for every `p`, matching
    ///   [`Summary::mean`]/[`Summary::min`]/[`Summary::max`].
    pub fn percentile(&self, p: f64) -> f64 {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        if self.samples.is_empty() {
            return 0.0;
        }
        if self.sorted.get() {
            return Self::percentile_of(&self.samples, p);
        }
        // Unsorted: consult the cached sorted copy, (re)building it at
        // most once per batch of records. `clone_from` reuses the cache's
        // existing allocation, so repeated report queries after the first
        // allocate nothing.
        if !self.cache_valid.get() {
            let mut cache = self.cache.borrow_mut();
            cache.clone_from(&self.samples);
            cache.sort_unstable_by(f64::total_cmp);
            self.cache_valid.set(true);
        }
        Self::percentile_of(&self.cache.borrow(), p)
    }

    /// Nearest-rank with linear interpolation over a sorted slice.
    fn percentile_of(sorted: &[f64], p: f64) -> f64 {
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// NaN samples dropped at record time.
    pub fn nan_dropped(&self) -> u64 {
        self.nan_dropped
    }

    /// Median (the 50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Number of samples strictly greater than `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.samples.iter().filter(|&&v| v > threshold).count()
    }

    /// Merges another summary's samples into this one (including its
    /// count of dropped NaN inputs).
    pub fn merge(&mut self, other: &Summary) {
        for &v in &other.samples {
            self.record(v);
        }
        self.nan_dropped += other.nan_dropped;
    }

    /// Sorts the retained samples in place so subsequent percentile
    /// queries avoid copying.
    pub fn sort_in_place(&mut self) {
        if !self.sorted.get() {
            self.samples.sort_unstable_by(f64::total_cmp);
            self.sorted.set(true);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn moments_match_closed_form() {
        let s: Summary = (1..=10).map(f64::from).collect();
        assert_eq!(s.count(), 10);
        assert_eq!(s.mean(), 5.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
        // population std dev of 1..=10 = sqrt(8.25)
        assert!((s.std_dev() - 8.25_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let s: Summary = vec![10.0, 20.0, 30.0, 40.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.median(), 25.0);
        assert!((s.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_on_unsorted_input() {
        let s: Summary = vec![5.0, 1.0, 4.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a: Summary = vec![1.0, 2.0].into_iter().collect();
        let b: Summary = vec![3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
    }

    #[test]
    fn nan_is_dropped_and_counted() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        assert_eq!(s.count(), 0);
        assert_eq!(s.nan_dropped(), 1);
        s.record(2.0);
        s.record(f64::NAN);
        s.record(4.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.nan_dropped(), 2);
        // Queries stay finite and ignore the dropped samples entirely.
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 4.0);
        assert!(s.median().is_finite());
    }

    #[test]
    fn merge_propagates_nan_dropped() {
        let mut a = Summary::new();
        a.record(f64::NAN);
        let mut b = Summary::new();
        b.record(f64::NAN);
        b.record(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.nan_dropped(), 2);
    }

    #[test]
    fn default_matches_new() {
        // A derived Default would zero min/max instead of using the
        // ±infinity sentinels; the first sample must win outright.
        let mut s = Summary::default();
        s.record(5.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
        let mut neg = Summary::default();
        neg.record(-3.0);
        assert_eq!(neg.max(), -3.0);
    }

    #[test]
    fn percentile_queries_do_not_reallocate() {
        let mut s = Summary::new();
        // Descending input keeps `samples` unsorted, forcing cache use.
        s.extend((0..1000).rev().map(f64::from));
        let _ = s.percentile(50.0);
        let ptr = s.cache.borrow().as_ptr();
        // Repeated queries reuse the already-sorted cache: same buffer,
        // no clone-and-sort per call (the old behaviour).
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let _ = s.percentile(p);
        }
        assert_eq!(s.cache.borrow().as_ptr(), ptr, "query reallocated cache");
        // Record/query cycles rebuild the cache via clone_from, reusing
        // the buffer once its capacity has settled.
        s.record(-1.0);
        assert_eq!(s.percentile(0.0), -1.0);
        let (settled_ptr, settled_cap) = {
            let c = s.cache.borrow();
            (c.as_ptr(), c.capacity())
        };
        s.record(-2.0);
        assert_eq!(s.percentile(0.0), -2.0);
        let c = s.cache.borrow();
        assert_eq!(c.as_ptr(), settled_ptr, "rebuild reallocated cache");
        assert_eq!(c.capacity(), settled_cap, "rebuild changed capacity");
    }

    #[test]
    fn sort_in_place_survives_duplicates_and_negatives() {
        let mut s: Summary = vec![3.0, -1.0, 3.0, 0.0, -2.5].into_iter().collect();
        s.sort_in_place();
        assert_eq!(s.percentile(0.0), -2.5);
        assert_eq!(s.percentile(100.0), 3.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn out_of_range_percentile_clamps() {
        let s: Summary = vec![1.0, 2.0, 3.0].into_iter().collect();
        // Below 0 clamps to the minimum, above 100 to the maximum.
        assert_eq!(s.percentile(-5.0), 1.0);
        assert_eq!(s.percentile(-0.0), 1.0);
        assert_eq!(s.percentile(101.0), 3.0);
        assert_eq!(s.percentile(f64::INFINITY), 3.0);
        assert_eq!(s.percentile(f64::NEG_INFINITY), 1.0);
        // NaN ranks are treated as 0 — a real sample, never NaN out.
        assert_eq!(s.percentile(f64::NAN), 1.0);
    }

    #[test]
    fn empty_summary_percentile_is_zero_for_every_rank() {
        let s = Summary::new();
        for p in [-10.0, 0.0, 50.0, 100.0, 250.0, f64::NAN] {
            assert_eq!(s.percentile(p), 0.0);
        }
    }

    #[test]
    fn single_sample() {
        let s: Summary = vec![42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn count_above_threshold() {
        let s: Summary = vec![0.5, 1.0, 1.5, 2.0].into_iter().collect();
        assert_eq!(s.count_above(1.0), 2); // strictly greater
        assert_eq!(s.count_above(0.0), 4);
        assert_eq!(s.count_above(5.0), 0);
        assert_eq!(Summary::new().count_above(0.0), 0);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }
}
