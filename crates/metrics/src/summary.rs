//! Streaming summary statistics with exact percentiles.

/// Accumulates samples and answers count/mean/min/max/std-dev/percentile
/// queries.
///
/// The mean and variance are maintained streamingly (Welford's algorithm);
/// percentiles are exact, computed from a retained copy of the samples
/// (simulation runs produce at most a few hundred thousand samples, so the
/// memory cost is modest and exactness beats sketching for
/// paper-reproduction purposes).
///
/// # Example
///
/// ```
/// use hyscale_metrics::Summary;
///
/// let s: Summary = (1..=100).map(f64::from).collect();
/// assert_eq!(s.count(), 100);
/// assert_eq!(s.mean(), 50.5);
/// assert_eq!(s.percentile(50.0), 50.5);
/// assert_eq!(s.percentile(100.0), 100.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Whether `samples` is known to be sorted (lazily maintained).
    sorted: std::cell::Cell<bool>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            samples: Vec::new(),
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sorted: std::cell::Cell::new(true),
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (a NaN sample would poison every query).
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        let n = self.samples.len() as f64 + 1.0;
        let delta = value - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.sorted.get() {
            if let Some(&last) = self.samples.last() {
                if value < last {
                    self.sorted.set(false);
                }
            }
        }
        self.samples.push(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Population standard deviation; 0.0 when fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            (self.m2 / self.samples.len() as f64).sqrt()
        }
    }

    /// Exact percentile (nearest-rank with linear interpolation), `p` in
    /// `[0, 100]`; 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let sorted_storage;
        let sorted_samples: &[f64] = if self.sorted.get() {
            &self.samples
        } else {
            let mut copy = self.samples.clone();
            copy.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            sorted_storage = copy;
            &sorted_storage
        };
        let rank = p / 100.0 * (sorted_samples.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted_samples[lo]
        } else {
            let frac = rank - lo as f64;
            sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac
        }
    }

    /// Median (the 50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Number of samples strictly greater than `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.samples.iter().filter(|&&v| v > threshold).count()
    }

    /// Merges another summary's samples into this one.
    pub fn merge(&mut self, other: &Summary) {
        for &v in &other.samples {
            self.record(v);
        }
    }

    /// Sorts the retained samples in place so subsequent percentile
    /// queries avoid copying.
    pub fn sort_in_place(&mut self) {
        if !self.sorted.get() {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted.set(true);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn moments_match_closed_form() {
        let s: Summary = (1..=10).map(f64::from).collect();
        assert_eq!(s.count(), 10);
        assert_eq!(s.mean(), 5.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
        // population std dev of 1..=10 = sqrt(8.25)
        assert!((s.std_dev() - 8.25_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let s: Summary = vec![10.0, 20.0, 30.0, 40.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.median(), 25.0);
        assert!((s.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_on_unsorted_input() {
        let s: Summary = vec![5.0, 1.0, 4.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a: Summary = vec![1.0, 2.0].into_iter().collect();
        let b: Summary = vec![3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
    }

    #[test]
    #[should_panic(expected = "cannot record NaN")]
    fn nan_is_rejected() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let s: Summary = vec![1.0].into_iter().collect();
        s.percentile(101.0);
    }

    #[test]
    fn single_sample() {
        let s: Summary = vec![42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn count_above_threshold() {
        let s: Summary = vec![0.5, 1.0, 1.5, 2.0].into_iter().collect();
        assert_eq!(s.count_above(1.0), 2); // strictly greater
        assert_eq!(s.count_above(0.0), 4);
        assert_eq!(s.count_above(5.0), 0);
        assert_eq!(Summary::new().count_above(0.0), 0);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }
}
