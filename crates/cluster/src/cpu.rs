//! Proportional-share CPU allocation (Docker CPU shares semantics).
//!
//! Docker CPU shares give each container access time proportional to its
//! share weight, but only when there is contention: the scheduler is
//! work-conserving, so an idle container's entitlement flows to busy ones.
//! This module implements that semantics as progressive filling
//! (water-filling): every round, each unsatisfied container receives
//! capacity proportional to its weight; containers whose demand is met drop
//! out and their surplus is redistributed.
//!
//! The same allocator is reused for network bandwidth in
//! [`crate::network`], with weights equal to the containers' network
//! requests and caps equal to their `tc` limits.

use crate::ids::ContainerId;

/// One container's demand for a divisible resource in a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuDemand {
    /// Which container is asking.
    pub container: ContainerId,
    /// The maximum amount the container can use this tick
    /// (e.g. core-seconds runnable by its in-flight requests).
    pub demand: f64,
    /// Scheduling weight (the container's `cpu_request` in cores; Docker
    /// shares divided by 1024).
    pub weight: f64,
    /// Optional hard cap on the grant (used for `tc` network limits;
    /// `f64::INFINITY` when uncapped).
    pub cap: f64,
}

impl CpuDemand {
    /// Creates an uncapped demand entry.
    pub fn new(container: ContainerId, demand: f64, weight: f64) -> Self {
        CpuDemand {
            container,
            demand,
            weight,
            cap: f64::INFINITY,
        }
    }

    /// Adds a hard cap to the grant.
    pub fn with_cap(mut self, cap: f64) -> Self {
        self.cap = cap;
        self
    }

    fn effective_demand(&self) -> f64 {
        self.demand.min(self.cap).max(0.0)
    }
}

/// The allocator's grant to one container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuGrant {
    /// Which container the grant belongs to.
    pub container: ContainerId,
    /// Amount granted this tick (same unit as the demand).
    pub granted: f64,
}

/// Work-conserving weighted fair allocator.
///
/// # Example
///
/// ```
/// use hyscale_cluster::{ContainerId, CpuAllocator, CpuDemand};
///
/// // Two containers with shares 1024 and 2048 contending for 1 core-tick:
/// let grants = CpuAllocator::allocate(
///     1.0,
///     &[
///         CpuDemand::new(ContainerId::new(0), 10.0, 1.0),
///         CpuDemand::new(ContainerId::new(1), 10.0, 2.0),
///     ],
/// );
/// assert!((grants[0].granted - 1.0 / 3.0).abs() < 1e-9);
/// assert!((grants[1].granted - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuAllocator;

impl CpuAllocator {
    /// Distributes `capacity` among `demands`, weight-proportionally and
    /// work-conservingly. Grants never exceed a container's demand or cap,
    /// and their sum never exceeds `capacity` (up to floating-point
    /// round-off).
    ///
    /// Containers with zero weight receive capacity only after all
    /// positive-weight containers are satisfied (matching Docker, where a
    /// zero-share container is starved under contention but runs on an
    /// otherwise idle machine).
    pub fn allocate(capacity: f64, demands: &[CpuDemand]) -> Vec<CpuGrant> {
        let mut grants = Vec::new();
        let mut outstanding = Vec::new();
        Self::allocate_into(capacity, demands, &mut grants, &mut outstanding);
        grants
    }

    /// Buffer-reusing form of [`CpuAllocator::allocate`]: writes the
    /// grants into `grants` (cleared first) and uses `outstanding` as the
    /// water-filling work list, so a steady-state caller performs no heap
    /// allocation. The results are identical to [`CpuAllocator::allocate`]
    /// bit for bit.
    pub fn allocate_into(
        capacity: f64,
        demands: &[CpuDemand],
        grants: &mut Vec<CpuGrant>,
        outstanding: &mut Vec<(usize, f64)>,
    ) {
        grants.clear();
        grants.extend(demands.iter().map(|d| CpuGrant {
            container: d.container,
            granted: 0.0,
        }));
        if capacity <= 0.0 || demands.is_empty() {
            return;
        }

        let mut remaining_capacity = capacity;
        outstanding.clear();
        outstanding.extend(
            demands
                .iter()
                .enumerate()
                .filter(|(_, d)| d.effective_demand() > 0.0 && d.weight > 0.0)
                .map(|(i, d)| (i, d.effective_demand())),
        );

        // Phase 1: weighted water-filling among positive-weight containers.
        // Each round rewrites the still-unsatisfied entries in place (the
        // write cursor trails the read cursor, preserving order).
        const MAX_ROUNDS: usize = 64;
        let mut rounds = 0;
        while !outstanding.is_empty() && remaining_capacity > 1e-12 && rounds < MAX_ROUNDS {
            rounds += 1;
            let total_weight: f64 = outstanding.iter().map(|&(i, _)| demands[i].weight).sum();
            if total_weight <= 0.0 {
                break;
            }
            let capacity_this_round = remaining_capacity;
            let count = outstanding.len();
            let mut keep = 0usize;
            for idx in 0..count {
                let (i, need) = outstanding[idx];
                let fair = capacity_this_round * demands[i].weight / total_weight;
                let take = fair.min(need);
                grants[i].granted += take;
                remaining_capacity -= take;
                let left = need - take;
                if left > 1e-12 {
                    outstanding[keep] = (i, left);
                    keep += 1;
                }
            }
            // If nobody was constrained by demand this round, we're done.
            if keep == count {
                break;
            }
            outstanding.truncate(keep);
        }

        // Phase 2: leftover capacity flows to zero-weight containers
        // (idle-machine semantics), split evenly by demand.
        if remaining_capacity > 1e-12 {
            let zero_weight = demands
                .iter()
                .filter(|d| d.weight <= 0.0 && d.effective_demand() > 0.0)
                .count();
            if zero_weight > 0 {
                let share = remaining_capacity / zero_weight as f64;
                for (i, d) in demands.iter().enumerate() {
                    if d.weight <= 0.0 && d.effective_demand() > 0.0 {
                        grants[i].granted += share.min(d.effective_demand());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctr(i: u32) -> ContainerId {
        ContainerId::new(i)
    }

    fn total(grants: &[CpuGrant]) -> f64 {
        grants.iter().map(|g| g.granted).sum()
    }

    #[test]
    fn empty_demands_grant_nothing() {
        assert!(CpuAllocator::allocate(4.0, &[]).is_empty());
    }

    #[test]
    fn single_container_takes_min_of_demand_and_capacity() {
        let g = CpuAllocator::allocate(4.0, &[CpuDemand::new(ctr(0), 2.5, 1.0)]);
        assert!((g[0].granted - 2.5).abs() < 1e-12);
        let g = CpuAllocator::allocate(1.0, &[CpuDemand::new(ctr(0), 2.5, 1.0)]);
        assert!((g[0].granted - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contention_splits_by_weight() {
        // Paper's example: shares 1024 vs 2048 -> 1/3 vs 2/3 of access time.
        let g = CpuAllocator::allocate(
            3.0,
            &[
                CpuDemand::new(ctr(0), 100.0, 1.0),
                CpuDemand::new(ctr(1), 100.0, 2.0),
            ],
        );
        assert!((g[0].granted - 1.0).abs() < 1e-9);
        assert!((g[1].granted - 2.0).abs() < 1e-9);
    }

    #[test]
    fn work_conserving_redistributes_idle_entitlement() {
        // Container 1 wants almost nothing; its entitlement goes to 0.
        let g = CpuAllocator::allocate(
            2.0,
            &[
                CpuDemand::new(ctr(0), 100.0, 1.0),
                CpuDemand::new(ctr(1), 0.1, 3.0),
            ],
        );
        assert!((g[1].granted - 0.1).abs() < 1e-9);
        assert!((g[0].granted - 1.9).abs() < 1e-9);
    }

    #[test]
    fn grants_never_exceed_capacity() {
        let demands: Vec<CpuDemand> = (0..10)
            .map(|i| CpuDemand::new(ctr(i), (i as f64 + 1.0) * 0.3, 1.0 + i as f64))
            .collect();
        let g = CpuAllocator::allocate(2.0, &demands);
        assert!(total(&g) <= 2.0 + 1e-9);
    }

    #[test]
    fn grants_never_exceed_demand() {
        let demands = [
            CpuDemand::new(ctr(0), 0.5, 1.0),
            CpuDemand::new(ctr(1), 0.25, 1.0),
        ];
        let g = CpuAllocator::allocate(10.0, &demands);
        assert!((g[0].granted - 0.5).abs() < 1e-12);
        assert!((g[1].granted - 0.25).abs() < 1e-12);
    }

    #[test]
    fn caps_bound_the_grant() {
        let demands = [
            CpuDemand::new(ctr(0), 100.0, 1.0).with_cap(0.4),
            CpuDemand::new(ctr(1), 100.0, 1.0),
        ];
        let g = CpuAllocator::allocate(2.0, &demands);
        assert!((g[0].granted - 0.4).abs() < 1e-9);
        assert!((g[1].granted - 1.6).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_only_gets_leftovers() {
        // Under contention, zero-weight container is starved.
        let g = CpuAllocator::allocate(
            1.0,
            &[
                CpuDemand::new(ctr(0), 10.0, 1.0),
                CpuDemand::new(ctr(1), 10.0, 0.0),
            ],
        );
        assert!((g[0].granted - 1.0).abs() < 1e-9);
        assert_eq!(g[1].granted, 0.0);

        // On an idle machine it runs.
        let g = CpuAllocator::allocate(
            1.0,
            &[
                CpuDemand::new(ctr(0), 0.2, 1.0),
                CpuDemand::new(ctr(1), 10.0, 0.0),
            ],
        );
        assert!((g[0].granted - 0.2).abs() < 1e-9);
        assert!((g[1].granted - 0.8).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_grants_nothing() {
        let g = CpuAllocator::allocate(0.0, &[CpuDemand::new(ctr(0), 1.0, 1.0)]);
        assert_eq!(g[0].granted, 0.0);
    }

    #[test]
    fn negative_demand_treated_as_zero() {
        let g = CpuAllocator::allocate(1.0, &[CpuDemand::new(ctr(0), -1.0, 1.0)]);
        assert_eq!(g[0].granted, 0.0);
    }

    #[test]
    fn allocate_into_matches_allocate_bit_for_bit() {
        // Every closed-form case above, plus dirty reused buffers: the
        // buffer-reusing entry point must be indistinguishable from the
        // allocating one.
        let cases: Vec<(f64, Vec<CpuDemand>)> = vec![
            (4.0, vec![]),
            (4.0, vec![CpuDemand::new(ctr(0), 2.5, 1.0)]),
            (
                3.0,
                vec![
                    CpuDemand::new(ctr(0), 100.0, 1.0),
                    CpuDemand::new(ctr(1), 100.0, 2.0),
                ],
            ),
            (
                2.0,
                vec![
                    CpuDemand::new(ctr(0), 100.0, 1.0),
                    CpuDemand::new(ctr(1), 0.1, 3.0),
                ],
            ),
            (
                2.0,
                (0..10)
                    .map(|i| CpuDemand::new(ctr(i), (i as f64 + 1.0) * 0.3, 1.0 + i as f64))
                    .collect(),
            ),
            (
                2.0,
                vec![
                    CpuDemand::new(ctr(0), 100.0, 1.0).with_cap(0.4),
                    CpuDemand::new(ctr(1), 100.0, 1.0),
                ],
            ),
            (
                1.0,
                vec![
                    CpuDemand::new(ctr(0), 0.2, 1.0),
                    CpuDemand::new(ctr(1), 10.0, 0.0),
                ],
            ),
            (0.0, vec![CpuDemand::new(ctr(0), 1.0, 1.0)]),
            (1.0, vec![CpuDemand::new(ctr(0), -1.0, 1.0)]),
            (
                6.0,
                vec![
                    CpuDemand::new(ctr(0), 1.0, 1.0),
                    CpuDemand::new(ctr(1), 10.0, 1.0),
                    CpuDemand::new(ctr(2), 10.0, 2.0),
                ],
            ),
        ];
        // Pre-soiled buffers, reused across every case.
        let mut grants = vec![
            CpuGrant {
                container: ctr(99),
                granted: 42.0,
            };
            7
        ];
        let mut outstanding = vec![(5usize, 3.0f64); 9];
        for (capacity, demands) in &cases {
            let reference = CpuAllocator::allocate(*capacity, demands);
            CpuAllocator::allocate_into(*capacity, demands, &mut grants, &mut outstanding);
            assert_eq!(grants.len(), reference.len());
            for (a, b) in grants.iter().zip(&reference) {
                assert_eq!(a.container, b.container);
                assert_eq!(
                    a.granted.to_bits(),
                    b.granted.to_bits(),
                    "grant mismatch at capacity {capacity}"
                );
            }
        }
    }

    #[test]
    fn three_way_weighted_split_with_one_small() {
        let g = CpuAllocator::allocate(
            6.0,
            &[
                CpuDemand::new(ctr(0), 1.0, 1.0),  // wants little
                CpuDemand::new(ctr(1), 10.0, 1.0), // hungry
                CpuDemand::new(ctr(2), 10.0, 2.0), // hungry, double weight
            ],
        );
        // ctr0 satisfied at 1.0; remaining 5.0 split 1:2 -> 5/3, 10/3.
        assert!((g[0].granted - 1.0).abs() < 1e-9);
        assert!((g[1].granted - 5.0 / 3.0).abs() < 1e-9);
        assert!((g[2].granted - 10.0 / 3.0).abs() < 1e-9);
        assert!((total(&g) - 6.0).abs() < 1e-9);
    }
}
