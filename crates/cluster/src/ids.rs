//! Typed identifiers for cluster entities.
//!
//! Newtype IDs keep node, container, service, and request handles from
//! being confused with one another at compile time. IDs are dense small
//! integers allocated by the [`Cluster`](crate::Cluster); they are never
//! reused within a run.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its raw index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Returns the raw index as `usize`, for vector indexing.
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a physical node (machine) in the cluster.
    NodeId,
    "node-"
);
id_type!(
    /// Identifier of a container (one replica of one microservice).
    ContainerId,
    "ctr-"
);
id_type!(
    /// Identifier of a microservice (a scaling group of replicas).
    ServiceId,
    "svc-"
);

/// Identifier of a single client request.
///
/// Requests are numerous, so this is the only 64-bit ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates an identifier from its raw index.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// Returns the raw index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Monotonic ID allocator used by the cluster for each entity class.
#[derive(Debug, Clone, Default)]
pub(crate) struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// The next id this allocator would hand out (snapshot support).
    pub(crate) fn cursor(&self) -> u64 {
        self.next
    }

    /// Restores the allocation cursor from a snapshot. The allocator
    /// resumes exactly where the snapshotted one stopped, so no id is
    /// ever reissued across a restore.
    pub(crate) fn set_cursor(&mut self, next: u64) {
        self.next = next;
    }

    pub(crate) fn next_u32(&mut self) -> u32 {
        let id = self.next;
        self.next += 1;
        u32::try_from(id).expect("more than u32::MAX entities allocated")
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Reserves `n` consecutive ids, returning the first. Cohort members
    /// keep dense per-request identities without per-member allocation.
    pub(crate) fn next_range(&mut self, n: u64) -> u64 {
        let id = self.next;
        self.next = self
            .next
            .checked_add(n)
            .expect("request id space exhausted");
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "node-3");
        assert_eq!(ContainerId::new(0).to_string(), "ctr-0");
        assert_eq!(ServiceId::new(7).to_string(), "svc-7");
        assert_eq!(RequestId::new(9).to_string(), "req-9");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just check round-trips.
        assert_eq!(NodeId::new(5).index(), 5);
        assert_eq!(NodeId::new(5).as_usize(), 5usize);
        assert_eq!(u32::from(ServiceId::new(2)), 2);
        assert_eq!(RequestId::new(u64::MAX).index(), u64::MAX);
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::default();
        assert_eq!(alloc.next_u32(), 0);
        assert_eq!(alloc.next_u32(), 1);
        assert_eq!(alloc.next_u64(), 2);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ContainerId::new(1));
        set.insert(ContainerId::new(1));
        set.insert(ContainerId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ContainerId::new(1) < ContainerId::new(2));
    }
}
