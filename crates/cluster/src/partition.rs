//! Container-weighted static partitioning of the node list.
//!
//! The parallel tick engine hands each worker one *contiguous* range of
//! nodes, because appending per-worker output buffers in partition order
//! then reproduces the serial (node-order) append exactly. PR 1 cut the
//! ranges by node index alone — `ceil(n / workers)` nodes each — which
//! strands workers on near-empty nodes whenever container placement is
//! skewed. This module cuts by *weight* instead: each node's weight
//! approximates its tick cost (1 for the sweep itself, plus 1 per live
//! container, plus 1 per in-flight request), and partition boundaries
//! land where the cumulative weight crosses each worker's proportional
//! share. The function is a pure function of the weight vector, so the
//! partition is identical across runs, seeds, and worker wake order —
//! determinism of the tick output never depends on it anyway (any
//! contiguous cut merges back to the same report), but a stable cut
//! keeps wall-clock behaviour reproducible too.

use std::ops::Range;

/// Cuts `weights` into at most `parts` contiguous, non-empty ranges of
/// near-equal total weight, appended to `out` in index order (cleared
/// first). The ranges tile `0..weights.len()` exactly; heavily skewed
/// weights produce fewer than `parts` ranges rather than empty ones.
pub(crate) fn weighted_partition(weights: &[u64], parts: usize, out: &mut Vec<Range<usize>>) {
    out.clear();
    let n = weights.len();
    if n == 0 {
        return;
    }
    let parts = parts.clamp(1, n);
    if parts == 1 {
        out.push(0..n);
        return;
    }
    let total: u64 = weights.iter().sum();
    if total == 0 {
        // Degenerate input (the tick engine never produces it: every
        // node weighs at least 1): fall back to even index chunks.
        let chunk = n.div_ceil(parts);
        let mut start = 0;
        while start < n {
            out.push(start..(start + chunk).min(n));
            start += chunk;
        }
        return;
    }
    let mut start = 0usize;
    let mut cum = 0u64;
    for p in 0..parts {
        if start >= n {
            break;
        }
        // Proportional target for the end of partition `p`. Integer
        // arithmetic keeps the cut exact and platform-independent.
        let target = total * (p as u64 + 1) / parts as u64;
        let mut end = start;
        while end < n && cum < target {
            cum += weights[end];
            end += 1;
        }
        // A preceding heavy node can overshoot several targets at once;
        // emit only non-empty ranges so every worker that is woken has
        // real work.
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    // Rounding can leave a tail lighter than the last target; fold it
    // into the final range so the cover is exact.
    if start < n {
        match out.last_mut() {
            Some(last) => last.end = n,
            None => out.push(0..n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        weighted_partition(weights, parts, &mut out);
        out
    }

    /// The ranges must tile `0..n` contiguously in order.
    fn assert_tiles(ranges: &[Range<usize>], n: usize) {
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next, "gap or overlap at {r:?}");
            assert!(r.end > r.start, "empty range {r:?}");
            next = r.end;
        }
        assert_eq!(next, n, "ranges do not cover the node list");
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let w = [1u64; 8];
        let ranges = cut(&w, 4);
        assert_eq!(ranges, vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn heavy_head_gets_its_own_partition() {
        // One node with 10x the containers of the others.
        let mut w = vec![1u64; 12];
        w[0] = 10;
        let ranges = cut(&w, 4);
        assert_tiles(&ranges, 12);
        assert_eq!(ranges[0], 0..1, "the hot node is isolated: {ranges:?}");
        // No remaining partition carries more than half the tail.
        for r in &ranges[1..] {
            let weight: u64 = w[r.start..r.end].iter().sum();
            assert!(weight <= 6, "unbalanced tail partition {r:?} ({weight})");
        }
    }

    #[test]
    fn heavy_tail_is_isolated_too() {
        let mut w = vec![1u64; 12];
        w[11] = 10;
        let ranges = cut(&w, 4);
        assert_tiles(&ranges, 12);
        let last = ranges.last().unwrap().clone();
        let weight: u64 = w[last.start..last.end].iter().sum();
        assert!(weight >= 10, "hot tail node lands in the last range");
    }

    #[test]
    fn more_parts_than_nodes_clamps() {
        let ranges = cut(&[3, 1, 2], 16);
        assert_tiles(&ranges, 3);
        assert!(ranges.len() <= 3);
    }

    #[test]
    fn one_part_is_the_whole_list() {
        assert_eq!(cut(&[5, 5, 5], 1), vec![0..3]);
    }

    #[test]
    fn empty_input_yields_no_ranges() {
        assert!(cut(&[], 4).is_empty());
    }

    #[test]
    fn zero_total_falls_back_to_even_chunks() {
        let ranges = cut(&[0, 0, 0, 0, 0], 2);
        assert_tiles(&ranges, 5);
        assert_eq!(ranges, vec![0..3, 3..5]);
    }

    #[test]
    fn deterministic_across_calls() {
        let w: Vec<u64> = (0..100).map(|i| (i * 37 % 11) + 1).collect();
        let a = cut(&w, 8);
        let b = cut(&w, 8);
        assert_eq!(a, b);
        assert_tiles(&a, 100);
    }

    #[test]
    fn balance_is_near_optimal_on_random_weights() {
        // Each partition's weight stays within (max single weight) of the
        // ideal share — the bound the proportional-target sweep gives.
        let w: Vec<u64> = (0..64).map(|i| (i * 7919 % 23) + 1).collect();
        let total: u64 = w.iter().sum();
        for parts in [2usize, 4, 8] {
            let ranges = cut(&w, parts);
            assert_tiles(&ranges, 64);
            let ideal = total as f64 / parts as f64;
            let max_single = *w.iter().max().unwrap() as f64;
            for r in &ranges {
                let weight: u64 = w[r.start..r.end].iter().sum();
                assert!(
                    (weight as f64) <= ideal + max_single,
                    "partition {r:?} weight {weight} vs ideal {ideal} (parts={parts})"
                );
            }
        }
    }
}
