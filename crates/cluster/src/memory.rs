//! Memory accounting and the swap model.
//!
//! Docker memory limits are hard in one direction: a container that
//! exceeds its limit has the excess pages swapped to disk (Sec. III-B of
//! the paper). The paper observes that raising the limit does not speed a
//! service up, but *swapping drastically degrades it* — enough that the
//! memory-blind algorithms (Kubernetes, HyScaleCPU) produce mass request
//! failures on memory-bound loads. This module computes, per container per
//! tick, how much of its resident set is swapped and the resulting
//! progress slowdown.

use crate::overhead::OverheadModel;
use crate::MemMb;

/// Snapshot of one container's memory pressure in a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPressure {
    /// Resident set the container wants (base + per-request memory).
    pub resident: MemMb,
    /// The container's current memory limit.
    pub limit: MemMb,
    /// Megabytes swapped out (`max(resident - limit, 0)`, bounded by the
    /// node's remaining physical headroom rules).
    pub swapped: MemMb,
    /// Fraction of the resident set that is swapped, in `[0, 1]`.
    pub swapped_fraction: f64,
    /// Divisor applied to the container's CPU progress this tick.
    pub slowdown: f64,
}

impl MemoryPressure {
    /// True if the container is currently swapping.
    pub fn is_swapping(&self) -> bool {
        self.swapped.get() > 0.0
    }
}

/// Computes per-container memory pressure.
///
/// # Example
///
/// ```
/// use hyscale_cluster::{MemMb, MemoryModel, OverheadModel};
///
/// let model = MemoryModel::new(OverheadModel::default());
/// let ok = model.pressure(MemMb(200.0), MemMb(256.0));
/// assert!(!ok.is_swapping());
/// let bad = model.pressure(MemMb(512.0), MemMb(256.0));
/// assert!(bad.is_swapping());
/// assert!(bad.slowdown > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    overheads: OverheadModel,
}

impl MemoryModel {
    /// Creates a memory model with the given overhead coefficients.
    pub fn new(overheads: OverheadModel) -> Self {
        MemoryModel { overheads }
    }

    /// Computes the pressure for a container with the given resident set
    /// and limit.
    pub fn pressure(&self, resident: MemMb, limit: MemMb) -> MemoryPressure {
        let resident = resident.max_zero();
        let limit = limit.max_zero();
        let swapped = (resident - limit).max_zero();
        let swapped_fraction = if resident.get() > 0.0 {
            (swapped.get() / resident.get()).clamp(0.0, 1.0)
        } else {
            0.0
        };
        MemoryPressure {
            resident,
            limit,
            swapped,
            swapped_fraction,
            slowdown: self.overheads.swap_slowdown(swapped_fraction),
        }
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel::new(OverheadModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_limit_no_pressure() {
        let m = MemoryModel::default();
        let p = m.pressure(MemMb(100.0), MemMb(256.0));
        assert!(!p.is_swapping());
        assert_eq!(p.swapped, MemMb::ZERO);
        assert_eq!(p.slowdown, 1.0);
    }

    #[test]
    fn at_limit_no_pressure() {
        let m = MemoryModel::default();
        let p = m.pressure(MemMb(256.0), MemMb(256.0));
        assert!(!p.is_swapping());
    }

    #[test]
    fn over_limit_swaps_the_excess() {
        let m = MemoryModel::default();
        let p = m.pressure(MemMb(320.0), MemMb(256.0));
        assert_eq!(p.swapped, MemMb(64.0));
        assert!((p.swapped_fraction - 0.2).abs() < 1e-12);
        assert!(p.slowdown > 1.0);
    }

    #[test]
    fn slowdown_monotone_in_overflow() {
        let m = MemoryModel::default();
        let mut prev = 0.0;
        for resident in [256.0, 300.0, 400.0, 800.0, 1600.0] {
            let p = m.pressure(MemMb(resident), MemMb(256.0));
            assert!(p.slowdown >= prev);
            prev = p.slowdown;
        }
    }

    #[test]
    fn zero_limit_swaps_everything() {
        let m = MemoryModel::default();
        let p = m.pressure(MemMb(100.0), MemMb::ZERO);
        assert!((p.swapped_fraction - 1.0).abs() < 1e-12);
        assert_eq!(p.swapped, MemMb(100.0));
    }

    #[test]
    fn zero_resident_is_neutral() {
        let m = MemoryModel::default();
        let p = m.pressure(MemMb::ZERO, MemMb::ZERO);
        assert_eq!(p.swapped_fraction, 0.0);
        assert_eq!(p.slowdown, 1.0);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let m = MemoryModel::default();
        let p = m.pressure(MemMb(-5.0), MemMb(-10.0));
        assert_eq!(p.resident, MemMb::ZERO);
        assert_eq!(p.limit, MemMb::ZERO);
        assert!(!p.is_swapping());
    }
}
