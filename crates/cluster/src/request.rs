//! Client requests and their completion/failure records.
//!
//! A request models one call into a microservice: it needs a fixed amount
//! of CPU work (core-seconds), holds memory while in flight, pushes
//! megabits of egress traffic (the response body), and optionally moves
//! disk traffic. A request completes when its CPU work, network bytes,
//! and disk bytes are all done; its response time is completion minus
//! arrival plus the service's replica fan-out latency.

use hyscale_sim::{SimDuration, SimTime, SnapReader, SnapWriter, SnapshotError};

use crate::ids::{ContainerId, RequestId, ServiceId};
use crate::MemMb;

/// Work demanded by one client request.
///
/// Construct with one of the profile constructors ([`Request::cpu_bound`],
/// [`Request::mem_bound`], [`Request::net_bound`], [`Request::mixed`]) or
/// with [`Request::new`] for full control.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The microservice this request targets.
    pub service: ServiceId,
    /// When the client issued the request.
    pub arrival: SimTime,
    /// CPU work, in core-seconds, required to serve the request.
    pub cpu_secs: f64,
    /// Memory held while the request is in flight.
    pub mem: MemMb,
    /// Egress traffic (response payload), in megabits.
    pub megabits_out: f64,
    /// Disk traffic (reads + writes), in megabits — the paper's named
    /// future-work resource type.
    pub disk_megabits: f64,
    /// Give up and count a connection failure if not done by
    /// `arrival + timeout`.
    pub timeout: SimDuration,
}

impl Request {
    /// Default request timeout, matching an aggressive client SLA.
    pub const DEFAULT_TIMEOUT: SimDuration = SimDuration::from_micros(30_000_000);

    /// Creates a request with explicit resource demands.
    ///
    /// # Panics
    ///
    /// Panics if any demand is negative or non-finite.
    pub fn new(
        service: ServiceId,
        arrival: SimTime,
        cpu_secs: f64,
        mem: MemMb,
        megabits_out: f64,
    ) -> Self {
        assert!(
            cpu_secs.is_finite() && cpu_secs >= 0.0,
            "cpu_secs must be finite and non-negative"
        );
        assert!(
            mem.get().is_finite() && mem.get() >= 0.0,
            "mem must be finite and non-negative"
        );
        assert!(
            megabits_out.is_finite() && megabits_out >= 0.0,
            "megabits_out must be finite and non-negative"
        );
        Request {
            service,
            arrival,
            cpu_secs,
            mem,
            megabits_out,
            disk_megabits: 0.0,
            timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// A disk-bound request: bulk disk traffic, modest compute.
    pub fn disk_bound(service: ServiceId, arrival: SimTime, disk_megabits: f64) -> Self {
        Request::new(service, arrival, 0.01, MemMb(4.0), 0.1).with_disk(disk_megabits)
    }

    /// A CPU-bound request: `cpu_secs` of compute, token memory, token I/O.
    pub fn cpu_bound(service: ServiceId, arrival: SimTime, cpu_secs: f64) -> Self {
        Request::new(service, arrival, cpu_secs, MemMb(2.0), 0.1)
    }

    /// A memory-bound request: large in-flight footprint, modest compute.
    pub fn mem_bound(service: ServiceId, arrival: SimTime, mem: MemMb) -> Self {
        Request::new(service, arrival, 0.01, mem, 0.1)
    }

    /// A network-bound request: bulk egress payload, modest compute.
    pub fn net_bound(service: ServiceId, arrival: SimTime, megabits_out: f64) -> Self {
        Request::new(service, arrival, 0.005, MemMb(2.0), megabits_out)
    }

    /// A mixed CPU+memory request (the paper's "mixed" microservice type).
    pub fn mixed(service: ServiceId, arrival: SimTime, cpu_secs: f64, mem: MemMb) -> Self {
        Request::new(service, arrival, cpu_secs, mem, 0.2)
    }

    /// Overrides the timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Adds disk traffic to the request.
    ///
    /// # Panics
    ///
    /// Panics if `disk_megabits` is negative or not finite.
    pub fn with_disk(mut self, disk_megabits: f64) -> Self {
        assert!(
            disk_megabits.is_finite() && disk_megabits >= 0.0,
            "disk_megabits must be finite and non-negative"
        );
        self.disk_megabits = disk_megabits;
        self
    }

    /// The absolute deadline after which the request fails.
    pub fn deadline(&self) -> SimTime {
        self.arrival + self.timeout
    }
}

/// An in-flight request inside a container (internal bookkeeping).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct InFlight {
    pub id: RequestId,
    pub request: Request,
    /// When the replica started working on it (admission time).
    pub admitted: SimTime,
    /// Core-seconds of CPU work still owed.
    pub cpu_remaining: f64,
    /// Megabits of egress still owed.
    pub megabits_remaining: f64,
    /// Megabits of disk traffic still owed.
    pub disk_remaining: f64,
}

impl InFlight {
    pub(crate) fn new(id: RequestId, request: Request, admitted: SimTime) -> Self {
        InFlight {
            cpu_remaining: request.cpu_secs,
            megabits_remaining: request.megabits_out,
            disk_remaining: request.disk_megabits,
            id,
            request,
            admitted,
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.cpu_remaining <= 1e-12
            && self.megabits_remaining <= 1e-9
            && self.disk_remaining <= 1e-9
    }

    /// Serializes this record, including the full request profile
    /// (snapshot support).
    pub(crate) fn snapshot_write(&self, w: &mut SnapWriter) {
        w.put_u64(self.id.index());
        w.put_u32(self.request.service.index());
        w.put_u64(self.request.arrival.as_micros());
        w.put_f64(self.request.cpu_secs);
        w.put_f64(self.request.mem.get());
        w.put_f64(self.request.megabits_out);
        w.put_f64(self.request.disk_megabits);
        w.put_u64(self.request.timeout.as_micros());
        w.put_u64(self.admitted.as_micros());
        w.put_f64(self.cpu_remaining);
        w.put_f64(self.megabits_remaining);
        w.put_f64(self.disk_remaining);
    }

    /// Rebuilds a record from [`InFlight::snapshot_write`] output.
    pub(crate) fn snapshot_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let id = RequestId::new(r.get_u64()?);
        let request = Request {
            service: ServiceId::new(r.get_u32()?),
            arrival: SimTime::from_micros(r.get_u64()?),
            cpu_secs: r.get_f64()?,
            mem: MemMb(r.get_f64()?),
            megabits_out: r.get_f64()?,
            disk_megabits: r.get_f64()?,
            timeout: SimDuration::from_micros(r.get_u64()?),
        };
        Ok(InFlight {
            id,
            request,
            admitted: SimTime::from_micros(r.get_u64()?),
            cpu_remaining: r.get_f64()?,
            megabits_remaining: r.get_f64()?,
            disk_remaining: r.get_f64()?,
        })
    }

    pub(crate) fn wants_cpu(&self) -> bool {
        self.cpu_remaining > 1e-12
    }

    pub(crate) fn wants_net(&self) -> bool {
        self.megabits_remaining > 1e-9
    }

    pub(crate) fn wants_disk(&self) -> bool {
        self.disk_remaining > 1e-9
    }
}

/// Record of successfully served requests.
///
/// Individually-admitted requests complete as one record with
/// `count == 1`; a flow cohort completes as one record whose `count` is
/// the cohort's membership (member ids are `id .. id + count`). All
/// members share the arrival, finish time, and response time.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRequest {
    /// The (first) request's identifier.
    pub id: RequestId,
    /// How many identical requests this record represents (≥ 1).
    pub count: u64,
    /// The microservice that served it.
    pub service: ServiceId,
    /// The replica that served it.
    pub container: ContainerId,
    /// Client-issued time.
    pub arrival: SimTime,
    /// When the replica admitted it (queue delay is
    /// `admitted - arrival`; service time is `finished - admitted`).
    pub admitted: SimTime,
    /// Completion time (including fan-out latency).
    pub finished: SimTime,
    /// End-to-end response time.
    pub response_time: SimDuration,
}

/// Why a request failed.
///
/// The paper reports two stacked bars — removal vs "connection"
/// failures — but retry policies need finer grain than clients do:
/// a timeout is usually worth retrying, a queue rejection signals
/// overload, and an infrastructure death is a reset outside the
/// service's control. [`FailureKind::Removal`] stays its own class
/// (the paper charges scale-in aborts, and only those, to the
/// scaler); the other three roll up into the paper's "connection"
/// bucket for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The request ended prematurely because its replica was removed by a
    /// scaling decision (the paper's "removal failures").
    Removal,
    /// The request was not done by `arrival + timeout` (client SLA
    /// expired while queued or in service).
    Timeout,
    /// The request never got a slot: queue overflow or no accepting
    /// replica at admission time.
    QueueAbort,
    /// The replica died underneath the request — node crash or OOM kill
    /// (clients see a connection reset, not a scaling decision).
    InfraDeath,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Removal => write!(f, "removal"),
            FailureKind::Timeout => write!(f, "timeout"),
            FailureKind::QueueAbort => write!(f, "queue_abort"),
            FailureKind::InfraDeath => write!(f, "infra_death"),
        }
    }
}

/// Record of failed requests. Like [`CompletedRequest`], one record can
/// carry a whole cohort (`count` members failing identically).
#[derive(Debug, Clone, PartialEq)]
pub struct FailedRequest {
    /// The (first) request's identifier.
    pub id: RequestId,
    /// How many identical requests this record represents (≥ 1).
    pub count: u64,
    /// The microservice it targeted.
    pub service: ServiceId,
    /// The replica it was running on, if it was ever admitted.
    pub container: Option<ContainerId>,
    /// Client-issued time.
    pub arrival: SimTime,
    /// When the failure was detected.
    pub failed_at: SimTime,
    /// The failure class (removal vs the connection sub-classes, as in
    /// Fig. 6).
    pub kind: FailureKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> ServiceId {
        ServiceId::new(0)
    }

    #[test]
    fn profile_constructors_shape_demands() {
        let t = SimTime::ZERO;
        let cpu = Request::cpu_bound(svc(), t, 0.2);
        assert_eq!(cpu.cpu_secs, 0.2);
        assert!(cpu.megabits_out < 1.0);

        let mem = Request::mem_bound(svc(), t, MemMb(64.0));
        assert_eq!(mem.mem, MemMb(64.0));
        assert!(mem.cpu_secs < 0.1);

        let net = Request::net_bound(svc(), t, 80.0);
        assert_eq!(net.megabits_out, 80.0);

        let mixed = Request::mixed(svc(), t, 0.1, MemMb(32.0));
        assert_eq!(mixed.cpu_secs, 0.1);
        assert_eq!(mixed.mem, MemMb(32.0));
    }

    #[test]
    fn disk_bound_requests_carry_disk_traffic() {
        let r = Request::disk_bound(svc(), SimTime::ZERO, 40.0);
        assert_eq!(r.disk_megabits, 40.0);
        let r2 = Request::cpu_bound(svc(), SimTime::ZERO, 0.1);
        assert_eq!(r2.disk_megabits, 0.0);
        let mut inf = InFlight::new(RequestId::new(0), r, SimTime::ZERO);
        assert!(inf.wants_disk());
        inf.disk_remaining = 0.0;
        inf.cpu_remaining = 0.0;
        inf.megabits_remaining = 0.0;
        assert!(inf.is_done());
    }

    #[test]
    #[should_panic(expected = "disk_megabits must be finite")]
    fn negative_disk_panics() {
        let _ = Request::cpu_bound(svc(), SimTime::ZERO, 0.1).with_disk(-1.0);
    }

    #[test]
    fn deadline_is_arrival_plus_timeout() {
        let r = Request::cpu_bound(svc(), SimTime::from_secs(5.0), 0.1)
            .with_timeout(SimDuration::from_secs(2.0));
        assert_eq!(r.deadline(), SimTime::from_secs(7.0));
    }

    #[test]
    fn in_flight_progress_flags() {
        let r = Request::new(svc(), SimTime::ZERO, 0.1, MemMb(1.0), 5.0);
        let mut inf = InFlight::new(RequestId::new(0), r, SimTime::ZERO);
        assert!(inf.wants_cpu() && inf.wants_net() && !inf.is_done());
        inf.cpu_remaining = 0.0;
        assert!(!inf.wants_cpu() && inf.wants_net() && !inf.is_done());
        inf.megabits_remaining = 0.0;
        assert!(inf.is_done());
    }

    #[test]
    #[should_panic(expected = "cpu_secs must be finite")]
    fn negative_cpu_panics() {
        let _ = Request::new(svc(), SimTime::ZERO, -1.0, MemMb(1.0), 0.0);
    }

    #[test]
    fn failure_kind_display() {
        assert_eq!(FailureKind::Removal.to_string(), "removal");
        assert_eq!(FailureKind::Timeout.to_string(), "timeout");
        assert_eq!(FailureKind::QueueAbort.to_string(), "queue_abort");
        assert_eq!(FailureKind::InfraDeath.to_string(), "infra_death");
    }
}
