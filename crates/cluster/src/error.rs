//! Error type for cluster operations.

use std::error::Error;
use std::fmt;

use crate::ids::{ContainerId, NodeId};
use crate::{Cores, MemMb};

/// Errors raised by cluster mutation and admission operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// Referenced a node that does not exist.
    UnknownNode(NodeId),
    /// Referenced a container that does not exist or was removed.
    UnknownContainer(ContainerId),
    /// A container could not be placed because the node lacks resources.
    InsufficientResources {
        /// The node that was asked to host the container.
        node: NodeId,
        /// CPU still available on the node.
        cpu_free: Cores,
        /// Memory still available on the node.
        mem_free: MemMb,
    },
    /// A request was rejected because the replica's queue is full.
    QueueFull(ContainerId),
    /// A request was directed at a container that is not accepting work
    /// (still starting or already stopping).
    NotAccepting(ContainerId),
    /// A container specification failed validation.
    InvalidSpec(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ClusterError::UnknownContainer(id) => write!(f, "unknown container {id}"),
            ClusterError::InsufficientResources {
                node,
                cpu_free,
                mem_free,
            } => write!(
                f,
                "insufficient resources on {node}: {cpu_free} cores and {mem_free} MB free"
            ),
            ClusterError::QueueFull(id) => write!(f, "request queue full on {id}"),
            ClusterError::NotAccepting(id) => write!(f, "container {id} is not accepting requests"),
            ClusterError::InvalidSpec(reason) => write!(f, "invalid container spec: {reason}"),
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ClusterError::UnknownNode(NodeId::new(1)).to_string(),
            "unknown node node-1"
        );
        assert_eq!(
            ClusterError::QueueFull(ContainerId::new(2)).to_string(),
            "request queue full on ctr-2"
        );
        let e = ClusterError::InsufficientResources {
            node: NodeId::new(0),
            cpu_free: Cores(0.5),
            mem_free: MemMb(100.0),
        };
        assert!(e.to_string().contains("insufficient resources"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ClusterError>();
    }
}
