//! Egress network bandwidth allocation (`tc` + tx-queue contention).
//!
//! Docker has no native network resizing; the paper shapes egress traffic
//! with `tc` hierarchical token buckets plus iptables. Two properties from
//! Section III-C drive the model:
//!
//! * *vertical* network scaling is ≈ neutral — `tc` distributes a node's
//!   bandwidth fairly and changing one container's cap just moves the
//!   split;
//! * *horizontal* network scaling wins — flows on one node contend for the
//!   NIC's transmit queues, so spreading the same flows across machines
//!   increases aggregate throughput until ~8 replicas, after which the
//!   benefit tapers.
//!
//! The tx-queue contention is the `1/(1 + q·log2(f))` factor from
//! [`OverheadModel::txq_contention_factor`] over the node's total kernel
//! flows; tapering emerges naturally because with `r` replicas each node
//! hosts `f/r` flows and the marginal relief shrinks.

use crate::cpu::{CpuAllocator, CpuDemand, CpuGrant};
use crate::ids::ContainerId;
use crate::overhead::OverheadModel;
use crate::Mbps;

/// One container's egress demand for a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetDemand {
    /// Which container is sending.
    pub container: ContainerId,
    /// Megabits the container could send this tick if unconstrained.
    pub megabits: f64,
    /// Scheduling weight (the container's `net_request`, in Mb/s).
    pub weight: f64,
    /// `tc` cap in megabits for this tick (`f64::INFINITY` if uncapped).
    pub cap_megabits: f64,
    /// Number of kernel-level flows this container contributes to the
    /// node's transmit queues — one per in-flight sending request (the
    /// paper's iperf streams). Contention scales with flows, which is why
    /// spreading the *same* flows over more machines helps (Fig. 3).
    pub flows: usize,
}

impl NetDemand {
    /// Creates an uncapped single-flow demand entry.
    pub fn new(container: ContainerId, megabits: f64, weight: f64) -> Self {
        NetDemand {
            container,
            megabits,
            weight,
            cap_megabits: f64::INFINITY,
            flows: 1,
        }
    }

    /// Applies a `tc` cap expressed in Mb/s over a tick of `dt_secs`.
    pub fn with_tc_cap(mut self, cap: Mbps, dt_secs: f64) -> Self {
        self.cap_megabits = cap.get() * dt_secs;
        self
    }

    /// Sets the number of concurrent flows behind this demand.
    pub fn with_flows(mut self, flows: usize) -> Self {
        self.flows = flows;
        self
    }
}

/// The allocator's egress grant to one container for a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetGrant {
    /// Which container the grant belongs to.
    pub container: ContainerId,
    /// Megabits the container may send this tick.
    pub megabits: f64,
}

/// Reusable buffers for [`NetAllocator::allocate_into`]. Holding one of
/// these per caller keeps the per-tick network allocation heap-free.
#[derive(Debug, Clone, Default)]
pub struct NetScratch {
    cpu_demands: Vec<CpuDemand>,
    cpu_grants: Vec<CpuGrant>,
    outstanding: Vec<(usize, f64)>,
}

/// Allocates a node's egress bandwidth among its sending containers.
///
/// # Example
///
/// ```
/// use hyscale_cluster::{ContainerId, Mbps, NetAllocator, NetDemand, OverheadModel};
///
/// let alloc = NetAllocator::new(OverheadModel::frictionless());
/// let grants = alloc.allocate(
///     Mbps(100.0),
///     0.1, // a 100 ms tick
///     &[NetDemand::new(ContainerId::new(0), 1e9, 50.0)],
/// );
/// // One flow gets the full NIC: 100 Mb/s * 0.1 s = 10 megabits.
/// assert!((grants[0].megabits - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetAllocator {
    overheads: OverheadModel,
}

impl NetAllocator {
    /// Creates an allocator with the given overhead coefficients.
    pub fn new(overheads: OverheadModel) -> Self {
        NetAllocator { overheads }
    }

    /// Distributes the node's egress capacity for a tick of `dt_secs`
    /// among `demands`. Applies tx-queue contention based on the total
    /// number of *flows* (in-flight sending requests) with positive
    /// demand, then weighted max-min fair sharing with `tc` caps (reusing
    /// the CPU water-filling allocator — the same algorithm governs both
    /// resources).
    pub fn allocate(&self, nic: Mbps, dt_secs: f64, demands: &[NetDemand]) -> Vec<NetGrant> {
        let mut grants = Vec::new();
        let mut scratch = NetScratch::default();
        self.allocate_into(nic, dt_secs, demands, &mut grants, &mut scratch);
        grants
    }

    /// Buffer-reusing form of [`NetAllocator::allocate`]: writes the
    /// grants into `grants` (cleared first) and stages the underlying
    /// water-filling in `scratch`, so a steady-state caller performs no
    /// heap allocation. Results are identical to
    /// [`NetAllocator::allocate`] bit for bit.
    pub fn allocate_into(
        &self,
        nic: Mbps,
        dt_secs: f64,
        demands: &[NetDemand],
        grants: &mut Vec<NetGrant>,
        scratch: &mut NetScratch,
    ) {
        let flows: usize = demands
            .iter()
            .filter(|d| d.megabits > 0.0)
            .map(|d| d.flows.max(1))
            .sum();
        let factor = self.overheads.txq_contention_factor(flows);
        let capacity_megabits = nic.get().max(0.0) * dt_secs.max(0.0) * factor;

        scratch.cpu_demands.clear();
        scratch
            .cpu_demands
            .extend(demands.iter().map(|d| CpuDemand {
                container: d.container,
                demand: d.megabits,
                weight: d.weight,
                cap: d.cap_megabits,
            }));
        CpuAllocator::allocate_into(
            capacity_megabits,
            &scratch.cpu_demands,
            &mut scratch.cpu_grants,
            &mut scratch.outstanding,
        );
        grants.clear();
        grants.extend(
            scratch
                .cpu_grants
                .iter()
                .map(|&CpuGrant { container, granted }| NetGrant {
                    container,
                    megabits: granted,
                }),
        );
    }
}

impl Default for NetAllocator {
    fn default() -> Self {
        NetAllocator::new(OverheadModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctr(i: u32) -> ContainerId {
        ContainerId::new(i)
    }

    #[test]
    fn single_flow_gets_full_nic() {
        let a = NetAllocator::new(OverheadModel::default());
        let g = a.allocate(Mbps(100.0), 1.0, &[NetDemand::new(ctr(0), 1e9, 1.0)]);
        assert!((g[0].megabits - 100.0).abs() < 1e-9);
    }

    #[test]
    fn contention_reduces_aggregate_throughput() {
        let a = NetAllocator::new(OverheadModel::default());
        let demands: Vec<NetDemand> = (0..4).map(|i| NetDemand::new(ctr(i), 1e9, 1.0)).collect();
        let g = a.allocate(Mbps(100.0), 1.0, &demands);
        let total: f64 = g.iter().map(|x| x.megabits).sum();
        // 4 flows: total = 100 / (1 + 0.1 * log2(4)) = 100 / 1.2.
        assert!(total < 100.0);
        let expected = 100.0 / (1.0 + 0.1 * 2.0);
        assert!((total - expected).abs() < 1e-6);
    }

    #[test]
    fn fair_split_among_equal_flows() {
        let a = NetAllocator::new(OverheadModel::frictionless());
        let demands: Vec<NetDemand> = (0..5).map(|i| NetDemand::new(ctr(i), 1e9, 10.0)).collect();
        let g = a.allocate(Mbps(100.0), 1.0, &demands);
        for grant in &g {
            assert!((grant.megabits - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tc_cap_limits_a_flow() {
        let a = NetAllocator::new(OverheadModel::frictionless());
        let demands = [
            NetDemand::new(ctr(0), 1e9, 1.0).with_tc_cap(Mbps(10.0), 1.0),
            NetDemand::new(ctr(1), 1e9, 1.0),
        ];
        let g = a.allocate(Mbps(100.0), 1.0, &demands);
        assert!((g[0].megabits - 10.0).abs() < 1e-9);
        assert!((g[1].megabits - 90.0).abs() < 1e-9);
    }

    #[test]
    fn idle_flows_do_not_create_contention() {
        let a = NetAllocator::new(OverheadModel::default());
        let demands = [
            NetDemand::new(ctr(0), 1e9, 1.0),
            NetDemand::new(ctr(1), 0.0, 1.0), // idle
        ];
        let g = a.allocate(Mbps(100.0), 1.0, &demands);
        assert!((g[0].megabits - 100.0).abs() < 1e-9);
        assert_eq!(g[1].megabits, 0.0);
    }

    #[test]
    fn horizontal_spreading_beats_colocation() {
        // The Fig. 3 mechanism: 8 flows on one node vs 1 flow on each of 8
        // nodes with 1/8 the NIC each. Spreading wins.
        let a = NetAllocator::new(OverheadModel::default());
        let colocated: Vec<NetDemand> = (0..8).map(|i| NetDemand::new(ctr(i), 1e9, 1.0)).collect();
        let colocated_total: f64 = a
            .allocate(Mbps(800.0), 1.0, &colocated)
            .iter()
            .map(|g| g.megabits)
            .sum();

        let spread_total: f64 = (0..8)
            .map(|i| a.allocate(Mbps(100.0), 1.0, &[NetDemand::new(ctr(i), 1e9, 1.0)])[0].megabits)
            .sum();
        assert!(
            spread_total > colocated_total * 1.2,
            "spread {spread_total} vs colocated {colocated_total}"
        );
    }

    #[test]
    fn many_flows_in_one_container_contend_like_many_containers() {
        let a = NetAllocator::new(OverheadModel::default());
        // 8 flows bundled in one container...
        let bundled = a.allocate(
            Mbps(100.0),
            1.0,
            &[NetDemand::new(ctr(0), 1e9, 1.0).with_flows(8)],
        );
        // ...suffer the same tx-queue contention as 8 separate containers.
        let spread: Vec<NetDemand> = (0..8).map(|i| NetDemand::new(ctr(i), 1e9, 1.0)).collect();
        let spread_total: f64 = a
            .allocate(Mbps(100.0), 1.0, &spread)
            .iter()
            .map(|g| g.megabits)
            .sum();
        assert!((bundled[0].megabits - spread_total).abs() < 1e-9);
        // And spreading those 8 flows over 8 machines relieves it: each
        // machine sees one flow at full factor.
        let relieved: f64 = (0..8)
            .map(|i| a.allocate(Mbps(100.0), 1.0, &[NetDemand::new(ctr(i), 1e9, 1.0)])[0].megabits)
            .sum();
        assert!(relieved > bundled[0].megabits * 1.2);
    }

    #[test]
    fn allocate_into_matches_allocate_bit_for_bit() {
        let a = NetAllocator::new(OverheadModel::default());
        let cases: Vec<Vec<NetDemand>> = vec![
            vec![],
            vec![NetDemand::new(ctr(0), 1e9, 1.0)],
            (0..4).map(|i| NetDemand::new(ctr(i), 1e9, 1.0)).collect(),
            vec![
                NetDemand::new(ctr(0), 1e9, 1.0).with_tc_cap(Mbps(10.0), 1.0),
                NetDemand::new(ctr(1), 1e9, 1.0),
            ],
            vec![NetDemand::new(ctr(0), 1e9, 1.0).with_flows(8)],
        ];
        let mut grants = vec![
            NetGrant {
                container: ctr(42),
                megabits: 7.0,
            };
            3
        ];
        let mut scratch = NetScratch::default();
        for demands in &cases {
            let reference = a.allocate(Mbps(100.0), 1.0, demands);
            a.allocate_into(Mbps(100.0), 1.0, demands, &mut grants, &mut scratch);
            assert_eq!(grants.len(), reference.len());
            for (x, y) in grants.iter().zip(&reference) {
                assert_eq!(x.container, y.container);
                assert_eq!(x.megabits.to_bits(), y.megabits.to_bits());
            }
        }
    }

    #[test]
    fn zero_dt_grants_nothing() {
        let a = NetAllocator::default();
        let g = a.allocate(Mbps(100.0), 0.0, &[NetDemand::new(ctr(0), 1.0, 1.0)]);
        assert_eq!(g[0].megabits, 0.0);
    }
}
