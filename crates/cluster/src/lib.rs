//! Docker-like cluster resource model for HyScale.
//!
//! This crate is the substrate that stands in for the paper's 24-node
//! physical testbed: heterogeneous nodes, Docker-style containers with CPU
//! shares (`docker update`-able), memory limits with swap-to-disk
//! penalties, and `tc`-style egress network shaping with transmit-queue
//! contention. The model is a fluid-flow approximation advanced in fixed
//! ticks by [`Cluster::advance`]; the autoscaling algorithms in
//! `hyscale-core` only ever observe the per-container usage statistics it
//! produces and apply vertical/horizontal scaling actions to it — exactly
//! the interface the paper's Monitor has to a real Docker cluster.
//!
//! The empirical effects of the paper's Section III are first-class
//! parameters of [`OverheadModel`]:
//!
//! * co-location CPU contention (~17% with one noisy neighbour, Fig. 2),
//! * per-replica application overhead (JVM-like base CPU and memory),
//! * fan-out latency growing logarithmically with replica count (Fig. 2),
//! * network tx-queue contention relieved by horizontal scaling (Fig. 3).
//!
//! # Example
//!
//! ```
//! use hyscale_cluster::{Cluster, ClusterConfig, ContainerSpec, Cores, MemMb,
//!     NodeSpec, Request, ServiceId};
//! use hyscale_sim::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! let node = cluster.add_node(NodeSpec::uniform_worker());
//! let svc = ServiceId::new(0);
//! let ctr = cluster.start_container(
//!     node,
//!     ContainerSpec::new(svc)
//!         .with_cpu_request(Cores(1.0))
//!         .with_mem_limit(MemMb(512.0))
//!         .with_startup_secs(0.0),
//!     SimTime::ZERO,
//! )?;
//! cluster.admit_request(ctr, Request::cpu_bound(svc, SimTime::ZERO, 0.05), SimTime::ZERO)?;
//! let report = cluster.advance(SimTime::ZERO, SimDuration::from_millis(100));
//! assert!(report.completed.len() <= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod cohort;
mod container;
mod cpu;
mod error;
mod faults;
mod ids;
mod memory;
mod network;
mod node;
mod overhead;
mod partition;
mod request;
mod stats;

pub use crate::cluster::{Cluster, ClusterConfig, TickReport};
pub use cohort::Cohort;
pub use container::{Container, ContainerSpec, ContainerState};
pub use cpu::{CpuAllocator, CpuDemand, CpuGrant};
pub use error::ClusterError;
pub use faults::{FaultEvent, FaultInjector, FaultKind, FaultLog, FaultPlan, FaultPlanConfig};
pub use ids::{ContainerId, NodeId, RequestId, ServiceId};
pub use memory::{MemoryModel, MemoryPressure};
pub use network::{NetAllocator, NetDemand, NetGrant, NetScratch};
pub use node::{Node, NodeSpec};
pub use overhead::OverheadModel;
pub use request::{CompletedRequest, FailedRequest, FailureKind, Request};
pub use stats::{ContainerUsage, NodeUsage, UsageWindow};

/// CPU quantity in (possibly fractional) cores.
///
/// One core equals 1024 Docker CPU shares in the paper's setup; the
/// algorithms operate directly in cores, as do we.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Cores(pub f64);

/// Memory quantity in megabytes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MemMb(pub f64);

/// Network bandwidth in megabits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Mbps(pub f64);

macro_rules! quantity_impls {
    ($ty:ident) => {
        impl $ty {
            /// The zero quantity.
            pub const ZERO: $ty = $ty(0.0);

            /// Returns the underlying value.
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Clamps the quantity to be non-negative.
            pub fn max_zero(self) -> $ty {
                $ty(self.0.max(0.0))
            }

            /// Component-wise minimum.
            pub fn min(self, other: $ty) -> $ty {
                $ty(self.0.min(other.0))
            }

            /// Component-wise maximum.
            pub fn max(self, other: $ty) -> $ty {
                $ty(self.0.max(other.0))
            }
        }

        impl std::ops::Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl std::ops::AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl std::ops::Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl std::ops::SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl std::ops::Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl std::ops::Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl std::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|q| q.0).sum())
            }
        }
        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{:.3}", self.0)
            }
        }
    };
}

quantity_impls!(Cores);
quantity_impls!(MemMb);
quantity_impls!(Mbps);

#[cfg(test)]
mod quantity_tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cores(1.5) + Cores(0.5), Cores(2.0));
        assert_eq!(MemMb(512.0) - MemMb(128.0), MemMb(384.0));
        assert_eq!(Mbps(100.0) * 0.5, Mbps(50.0));
        assert_eq!(Cores(3.0) / 2.0, Cores(1.5));
    }

    #[test]
    fn max_zero_clamps() {
        assert_eq!((Cores(1.0) - Cores(2.0)).max_zero(), Cores::ZERO);
        assert_eq!((Cores(2.0) - Cores(1.0)).max_zero(), Cores(1.0));
    }

    #[test]
    fn sum_and_minmax() {
        let total: MemMb = [MemMb(1.0), MemMb(2.0), MemMb(3.0)].into_iter().sum();
        assert_eq!(total, MemMb(6.0));
        assert_eq!(Mbps(2.0).min(Mbps(3.0)), Mbps(2.0));
        assert_eq!(Mbps(2.0).max(Mbps(3.0)), Mbps(3.0));
    }

    #[test]
    fn display() {
        assert_eq!(Cores(1.25).to_string(), "1.250");
    }
}
