//! Flow cohorts: many identical requests carried as one record.
//!
//! Under processor sharing, identical requests admitted to the same
//! replica at the same tick receive identical CPU/network/disk shares and
//! therefore evolve identically. A [`Cohort`] exploits that: one record
//! with a member `count` and a *per-member* demand profile exactly models
//! `count` individual requests, turning the hot loop's cost from
//! O(requests) into O(distinct flows). Cohorts are split only when
//! something diverges their members — routing to different replicas,
//! circuit-breaker state, or faults (a replica death aborts its whole
//! resident cohort share).
//!
//! Inside a container, in-flight cohorts live in a [`CohortTable`], a
//! struct-of-arrays layout whose parallel columns the allocator loop in
//! `cluster.rs` iterates as flat arrays — no pointer chasing through
//! per-request objects.

use hyscale_sim::{SimDuration, SimTime, SnapReader, SnapWriter, SnapshotError};

use crate::ids::{RequestId, ServiceId};
use crate::request::Request;
use crate::MemMb;

/// A batch of identical in-flight requests: `count` members, each with
/// the same per-member demand profile and deadline.
///
/// Construct directly, via [`Cohort::from_request`], or by splitting an
/// existing cohort with [`Cohort::split`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    /// The microservice every member targets.
    pub service: ServiceId,
    /// When the members were issued (they share one arrival tick).
    pub arrival: SimTime,
    /// Number of member requests represented by this record.
    pub count: u64,
    /// CPU work per member, core-seconds.
    pub cpu_secs: f64,
    /// Memory held per member while in flight.
    pub mem: MemMb,
    /// Egress traffic per member, megabits.
    pub megabits_out: f64,
    /// Disk traffic per member, megabits.
    pub disk_megabits: f64,
    /// Members fail as connection failures if not done by
    /// `arrival + timeout`.
    pub timeout: SimDuration,
    /// Delivery attempts already made for this work before this one
    /// (0 = first attempt). Carried so retried hops remain
    /// distinguishable in flight; the cluster itself never branches on
    /// it.
    pub attempt: u32,
}

impl Cohort {
    /// Creates a cohort with explicit per-member demands.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or any demand is negative or non-finite.
    pub fn new(
        service: ServiceId,
        arrival: SimTime,
        count: u64,
        cpu_secs: f64,
        mem: MemMb,
        megabits_out: f64,
    ) -> Self {
        assert!(count > 0, "cohort count must be positive");
        assert!(
            cpu_secs.is_finite() && cpu_secs >= 0.0,
            "cpu_secs must be finite and non-negative"
        );
        assert!(
            mem.get().is_finite() && mem.get() >= 0.0,
            "mem must be finite and non-negative"
        );
        assert!(
            megabits_out.is_finite() && megabits_out >= 0.0,
            "megabits_out must be finite and non-negative"
        );
        Cohort {
            service,
            arrival,
            count,
            cpu_secs,
            mem,
            megabits_out,
            disk_megabits: 0.0,
            timeout: Request::DEFAULT_TIMEOUT,
            attempt: 0,
        }
    }

    /// A cohort of `count` copies of one request.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn from_request(request: &Request, count: u64) -> Self {
        Cohort::new(
            request.service,
            request.arrival,
            count,
            request.cpu_secs,
            request.mem,
            request.megabits_out,
        )
        .with_disk(request.disk_megabits)
        .with_timeout(request.timeout)
    }

    /// Adds per-member disk traffic.
    ///
    /// # Panics
    ///
    /// Panics if `disk_megabits` is negative or not finite.
    pub fn with_disk(mut self, disk_megabits: f64) -> Self {
        assert!(
            disk_megabits.is_finite() && disk_megabits >= 0.0,
            "disk_megabits must be finite and non-negative"
        );
        self.disk_megabits = disk_megabits;
        self
    }

    /// Overrides the timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Marks the cohort as a retry: `attempt` prior delivery attempts.
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// The absolute deadline after which members fail.
    pub fn deadline(&self) -> SimTime {
        self.arrival + self.timeout
    }

    /// Splits off `left` members, returning `(left_part, right_part)`.
    /// Both halves keep the shared demand profile; member identities
    /// partition in order (the left part keeps the low request ids once
    /// admitted).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < left < self.count`.
    pub fn split(self, left: u64) -> (Cohort, Cohort) {
        assert!(
            left > 0 && left < self.count,
            "split point must leave both halves non-empty"
        );
        let mut a = self.clone();
        let mut b = self;
        a.count = left;
        b.count -= left;
        (a, b)
    }
}

/// Struct-of-arrays storage for a container's in-flight cohorts.
///
/// Every field is a parallel column indexed by cohort slot; the tick
/// engine's demand, processor-sharing, and completion sweeps iterate these
/// flat arrays directly. Member request ids are the dense range
/// `id_base[i] .. id_base[i] + count[i]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct CohortTable {
    pub id_base: Vec<u64>,
    pub count: Vec<u64>,
    pub service: Vec<ServiceId>,
    pub arrival: Vec<SimTime>,
    /// When the members were admitted to this container (queue delay is
    /// `admitted - arrival`; service time runs from here).
    pub admitted: Vec<SimTime>,
    pub deadline: Vec<SimTime>,
    /// CPU core-seconds still owed *per member*.
    pub cpu_rem: Vec<f64>,
    /// Egress megabits still owed *per member*.
    pub net_rem: Vec<f64>,
    /// Disk megabits still owed *per member*.
    pub disk_rem: Vec<f64>,
    /// In-flight memory *per member*, MB.
    pub mem_per: Vec<f64>,
    /// Prior delivery attempts of the slot's work (0 = first attempt).
    pub attempt: Vec<u32>,
    /// Running total of members across all slots.
    members: u64,
}

impl CohortTable {
    pub fn len(&self) -> usize {
        self.count.len()
    }

    pub fn is_empty(&self) -> bool {
        self.count.is_empty()
    }

    /// Total members across all cohorts (maintained incrementally).
    pub fn members(&self) -> u64 {
        self.members
    }

    pub fn push(&mut self, cohort: &Cohort, id_base: u64, admitted: SimTime) {
        self.id_base.push(id_base);
        self.count.push(cohort.count);
        self.service.push(cohort.service);
        self.arrival.push(cohort.arrival);
        self.admitted.push(admitted);
        self.deadline.push(cohort.deadline());
        self.cpu_rem.push(cohort.cpu_secs);
        self.net_rem.push(cohort.megabits_out);
        self.disk_rem.push(cohort.disk_megabits);
        self.mem_per.push(cohort.mem.get());
        self.attempt.push(cohort.attempt);
        self.members += cohort.count;
    }

    /// Removes slot `i` (order-insensitive, O(1)), returning its member
    /// count.
    pub fn swap_remove(&mut self, i: usize) -> u64 {
        let n = self.count[i];
        self.id_base.swap_remove(i);
        self.count.swap_remove(i);
        self.service.swap_remove(i);
        self.arrival.swap_remove(i);
        self.admitted.swap_remove(i);
        self.deadline.swap_remove(i);
        self.cpu_rem.swap_remove(i);
        self.net_rem.swap_remove(i);
        self.disk_rem.swap_remove(i);
        self.mem_per.swap_remove(i);
        self.attempt.swap_remove(i);
        self.members -= n;
        n
    }

    pub fn clear(&mut self) {
        self.id_base.clear();
        self.count.clear();
        self.service.clear();
        self.arrival.clear();
        self.admitted.clear();
        self.deadline.clear();
        self.cpu_rem.clear();
        self.net_rem.clear();
        self.disk_rem.clear();
        self.mem_per.clear();
        self.attempt.clear();
        self.members = 0;
    }

    /// Per-member memory times member count, summed — the cohorts' share
    /// of the container's resident set.
    pub fn resident_mem(&self) -> f64 {
        self.mem_per
            .iter()
            .zip(&self.count)
            .map(|(m, &n)| m * n as f64)
            .sum()
    }

    /// Splits slot `i` in place: the slot keeps `left` members (and the
    /// low end of the id range); the remainder is appended as a new slot
    /// with identical remaining work. Total members are conserved.
    ///
    /// Returns `false` (no-op) unless `0 < left < count[i]`.
    pub fn split(&mut self, i: usize, left: u64) -> bool {
        if left == 0 || left >= self.count[i] {
            return false;
        }
        let right = self.count[i] - left;
        self.count[i] = left;
        self.id_base.push(self.id_base[i] + left);
        self.count.push(right);
        self.service.push(self.service[i]);
        self.arrival.push(self.arrival[i]);
        self.admitted.push(self.admitted[i]);
        self.deadline.push(self.deadline[i]);
        self.cpu_rem.push(self.cpu_rem[i]);
        self.net_rem.push(self.net_rem[i]);
        self.disk_rem.push(self.disk_rem[i]);
        self.mem_per.push(self.mem_per[i]);
        self.attempt.push(self.attempt[i]);
        true
    }

    /// Merges slot `j` back into slot `i` when the two are re-joinable:
    /// identical remaining work, profile, deadline, and id ranges that are
    /// adjacent (`id_base[i] + count[i] == id_base[j]`). Returns whether
    /// the merge happened; on success slot `j` is removed.
    pub fn merge(&mut self, i: usize, j: usize) -> bool {
        if i == j || i >= self.len() || j >= self.len() {
            return false;
        }
        let rejoinable = self.id_base[i] + self.count[i] == self.id_base[j]
            && self.service[i] == self.service[j]
            && self.arrival[i] == self.arrival[j]
            && self.admitted[i] == self.admitted[j]
            && self.deadline[i] == self.deadline[j]
            && self.cpu_rem[i] == self.cpu_rem[j]
            && self.net_rem[i] == self.net_rem[j]
            && self.disk_rem[i] == self.disk_rem[j]
            && self.mem_per[i] == self.mem_per[j]
            && self.attempt[i] == self.attempt[j];
        if !rejoinable {
            return false;
        }
        let moved = self.count[j];
        self.count[i] += moved;
        // swap_remove subtracts j's (already-moved) members; restore them.
        self.swap_remove(j);
        self.members += moved;
        debug_assert_eq!(
            self.members,
            self.count.iter().sum::<u64>(),
            "member total out of sync after merge"
        );
        true
    }

    /// The member request-id range of slot `i`.
    pub fn id_range(&self, i: usize) -> (RequestId, u64) {
        (RequestId::new(self.id_base[i]), self.count[i])
    }

    /// Serializes every column slot-by-slot (snapshot support).
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for i in 0..self.len() {
            w.put_u64(self.id_base[i]);
            w.put_u64(self.count[i]);
            w.put_u32(self.service[i].index());
            w.put_u64(self.arrival[i].as_micros());
            w.put_u64(self.admitted[i].as_micros());
            w.put_u64(self.deadline[i].as_micros());
            w.put_f64(self.cpu_rem[i]);
            w.put_f64(self.net_rem[i]);
            w.put_f64(self.disk_rem[i]);
            w.put_f64(self.mem_per[i]);
            w.put_u32(self.attempt[i]);
        }
    }

    /// Rebuilds a table from [`CohortTable::snapshot_write`] output. The
    /// member total is recomputed from the restored counts.
    pub fn snapshot_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.get_usize()?;
        let mut t = CohortTable::default();
        for _ in 0..len {
            t.id_base.push(r.get_u64()?);
            let count = r.get_u64()?;
            if count == 0 {
                return Err(SnapshotError::Corrupt(
                    "cohort slot with zero members".into(),
                ));
            }
            t.count.push(count);
            t.service.push(ServiceId::new(r.get_u32()?));
            t.arrival.push(SimTime::from_micros(r.get_u64()?));
            t.admitted.push(SimTime::from_micros(r.get_u64()?));
            t.deadline.push(SimTime::from_micros(r.get_u64()?));
            t.cpu_rem.push(r.get_f64()?);
            t.net_rem.push(r.get_f64()?);
            t.disk_rem.push(r.get_f64()?);
            t.mem_per.push(r.get_f64()?);
            t.attempt.push(r.get_u32()?);
            t.members += count;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cohort(count: u64) -> Cohort {
        Cohort::new(
            ServiceId::new(1),
            SimTime::from_secs(1.0),
            count,
            0.2,
            MemMb(4.0),
            0.5,
        )
    }

    #[test]
    fn from_request_copies_profile() {
        let r = Request::cpu_bound(ServiceId::new(2), SimTime::ZERO, 0.3)
            .with_disk(1.5)
            .with_timeout(SimDuration::from_secs(5.0));
        let c = Cohort::from_request(&r, 10);
        assert_eq!(c.count, 10);
        assert_eq!(c.cpu_secs, 0.3);
        assert_eq!(c.disk_megabits, 1.5);
        assert_eq!(c.deadline(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "count must be positive")]
    fn zero_count_panics() {
        let _ = cohort(0);
    }

    #[test]
    fn split_partitions_members() {
        let (a, b) = cohort(10).split(3);
        assert_eq!(a.count, 3);
        assert_eq!(b.count, 7);
        assert_eq!(a.cpu_secs, b.cpu_secs);
    }

    #[test]
    fn table_push_split_merge_conserves_members() {
        let mut t = CohortTable::default();
        t.push(&cohort(10), 100, SimTime::from_secs(1.0));
        t.push(&cohort(4), 200, SimTime::from_secs(1.0));
        assert_eq!(t.members(), 14);
        assert!(t.split(0, 6));
        assert_eq!(t.members(), 14);
        assert_eq!(t.len(), 3);
        assert_eq!(t.id_base[2], 106);
        assert_eq!(t.count[2], 4);
        // Re-join the halves.
        assert!(t.merge(0, 2));
        assert_eq!(t.members(), 14);
        assert_eq!(t.len(), 2);
        assert_eq!(t.count[0], 10);
        // Non-adjacent ids refuse to merge.
        assert!(!t.merge(0, 1));
        assert_eq!(t.swap_remove(0), 10);
        assert_eq!(t.members(), 4);
    }

    #[test]
    fn degenerate_splits_are_noops() {
        let mut t = CohortTable::default();
        t.push(&cohort(5), 0, SimTime::from_secs(1.0));
        assert!(!t.split(0, 0));
        assert!(!t.split(0, 5));
        assert_eq!(t.len(), 1);
    }
}
