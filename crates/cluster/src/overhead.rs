//! Empirical overhead model from the paper's Section III study.
//!
//! Section III of the paper measures three costs of horizontal scaling that
//! vertical scaling avoids, and one cost of sharing a NIC that horizontal
//! scaling *relieves*. This module centralizes those coefficients so the
//! figure-2/figure-3 experiments can sweep them and the full experiments
//! use calibrated defaults.

/// Coefficients for the cluster's empirical overheads.
///
/// Defaults are calibrated to the paper's observations:
///
/// * `colocation_coeff = 0.17` — "a 17% increase in response times" when a
///   second active container contends for the CPU (Sec. III-A).
/// * `fanout_latency_alpha` — response-time overhead growing
///   logarithmically with the number of replicas a service is spread over
///   (Fig. 2 "logarithmic increase with the number of replicas").
/// * `txq_contention_coeff` — reduction of effective NIC throughput as
///   more flows contend for one node's transmit queues; spreading flows
///   over machines relieves it, which is why horizontal network scaling
///   wins until ~8 replicas (Fig. 3).
/// * `swap_penalty` — slowdown multiplier applied to work on memory that
///   has been swapped to disk (Sec. III-B "performance drastically
///   degraded ... forced the microservice to swap").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// CPU contention coefficient `c`: effective node CPU capacity is
    /// multiplied by `1 / (1 + c·log2(k))` when `k ≥ 1` containers are
    /// actively runnable in the same tick. Logarithmic growth matches the
    /// paper's observation: 17% with one co-located contender, "further
    /// exacerbated by the presence of more co-located containers" but far
    /// from linearly (a kernel schedules tens of containers without
    /// collapsing).
    pub colocation_coeff: f64,
    /// Per-request latency tax `α·log2(1+n)` (seconds) for a service whose
    /// `n` replicas share its load — models connection setup, replica
    /// coordination, and client fan-out costs.
    pub fanout_latency_alpha: f64,
    /// Tx-queue contention coefficient `q`: a node's effective egress
    /// bandwidth is multiplied by `1 / (1 + q·log2(f))` for `f ≥ 2`
    /// concurrently sending flows. The default is mild (ordinary kernels
    /// push line rate with dozens of flows); the Fig. 3 study uses a much
    /// larger `q` to model hundreds of parallel iperf streams through a
    /// `tc`-shaped interface.
    pub txq_contention_coeff: f64,
    /// Thrashing coefficient: progress of a swapping container is divided
    /// by `1 + p·f/(1−f)` for swapped fraction `f` — super-linear, because
    /// thrashing compounds (each page fault evicts pages the next access
    /// needs). Clamped at `1 + 50·p`.
    pub swap_penalty: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            colocation_coeff: 0.17,
            fanout_latency_alpha: 0.004,
            txq_contention_coeff: 0.10,
            swap_penalty: 30.0,
        }
    }
}

impl OverheadModel {
    /// A frictionless model with every overhead zeroed — useful as the
    /// control arm in ablation benches.
    pub fn frictionless() -> Self {
        OverheadModel {
            colocation_coeff: 0.0,
            fanout_latency_alpha: 0.0,
            txq_contention_coeff: 0.0,
            swap_penalty: 0.0,
        }
    }

    /// Effective CPU capacity factor for `active` runnable containers on a
    /// node. Returns 1.0 for zero or one active container; `1/1.17` for
    /// two (the paper's measured 17%); grows logarithmically beyond.
    pub fn cpu_contention_factor(&self, active: usize) -> f64 {
        if active <= 1 {
            1.0
        } else {
            1.0 / (1.0 + self.colocation_coeff * (active as f64).log2())
        }
    }

    /// Effective egress bandwidth factor for `flows` concurrently sending
    /// kernel flows on a node. Returns 1.0 for zero or one flow; declines
    /// logarithmically beyond.
    pub fn txq_contention_factor(&self, flows: usize) -> f64 {
        if flows <= 1 {
            1.0
        } else {
            1.0 / (1.0 + self.txq_contention_coeff * (flows as f64).log2())
        }
    }

    /// Additional response-time seconds charged to a request served by a
    /// service with `replicas` replicas.
    pub fn fanout_latency_secs(&self, replicas: usize) -> f64 {
        if replicas <= 1 {
            0.0
        } else {
            self.fanout_latency_alpha * (1.0 + replicas as f64).log2()
        }
    }

    /// Progress slowdown factor for a container whose resident set is
    /// `swapped_fraction ∈ [0, 1]` swapped out. Returns a divisor ≥ 1,
    /// growing super-linearly (thrashing) and clamped at `1 + 50·p`.
    pub fn swap_slowdown(&self, swapped_fraction: f64) -> f64 {
        let f = swapped_fraction.clamp(0.0, 1.0);
        let ratio = (f / (1.0 - f).max(0.02)).min(50.0);
        1.0 + self.swap_penalty * ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_container_has_no_contention() {
        let m = OverheadModel::default();
        assert_eq!(m.cpu_contention_factor(0), 1.0);
        assert_eq!(m.cpu_contention_factor(1), 1.0);
        assert_eq!(m.txq_contention_factor(1), 1.0);
    }

    #[test]
    fn two_containers_match_paper_17_percent() {
        let m = OverheadModel::default();
        // 17% longer response times == capacity scaled by 1/1.17.
        let factor = m.cpu_contention_factor(2);
        assert!((factor - 1.0 / 1.17).abs() < 1e-12);
    }

    #[test]
    fn contention_decreases_monotonically() {
        let m = OverheadModel::default();
        let mut prev = 1.0;
        for k in 1..20 {
            let f = m.cpu_contention_factor(k);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn fanout_latency_grows_logarithmically() {
        let m = OverheadModel::default();
        assert_eq!(m.fanout_latency_secs(1), 0.0);
        let l2 = m.fanout_latency_secs(2);
        let l4 = m.fanout_latency_secs(4);
        let l8 = m.fanout_latency_secs(8);
        assert!(l2 > 0.0);
        // log growth: equal increments for doubling, approximately.
        assert!((l4 - l2) > 0.0 && (l8 - l4) > 0.0);
        assert!((l8 - l4) < (l4 - l2) * 1.5);
    }

    #[test]
    fn swap_slowdown_is_one_without_swapping() {
        let m = OverheadModel::default();
        assert_eq!(m.swap_slowdown(0.0), 1.0);
        assert!(m.swap_slowdown(0.5) > 10.0);
        // clamped above 1.0
        assert_eq!(m.swap_slowdown(2.0), m.swap_slowdown(1.0));
    }

    #[test]
    fn frictionless_is_identity() {
        let m = OverheadModel::frictionless();
        assert_eq!(m.cpu_contention_factor(10), 1.0);
        assert_eq!(m.txq_contention_factor(10), 1.0);
        assert_eq!(m.fanout_latency_secs(10), 0.0);
        assert_eq!(m.swap_slowdown(1.0), 1.0);
    }
}
