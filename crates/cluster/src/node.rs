//! Physical nodes (machines) of the simulated cluster.

use hyscale_sim::{SnapReader, SnapWriter, SnapshotError};

use crate::container::Container;
use crate::ids::{ContainerId, NodeId};
use crate::{Cores, Mbps, MemMb};

/// Hardware specification of one node.
///
/// The paper's cluster nodes are homogeneous (2× dual-core Xeon 5120 =
/// 4 cores, 8 GB DDR2, ~1 Gb/s NIC, 3 Gb/s SAS disks); heterogeneous
/// clusters are supported by mixing specs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Total CPU capacity.
    pub cores: Cores,
    /// Total physical memory.
    pub memory: MemMb,
    /// NIC egress capacity.
    pub nic: Mbps,
    /// Disk bandwidth available to swap traffic, expressed as the
    /// equivalent CPU-progress divisor base (see
    /// [`OverheadModel::swap_slowdown`](crate::OverheadModel::swap_slowdown)).
    pub disk: Mbps,
}

impl NodeSpec {
    /// The paper's worker-node hardware: 4 cores, 8 GB, 1 Gb/s NIC.
    pub fn uniform_worker() -> Self {
        NodeSpec {
            cores: Cores(4.0),
            memory: MemMb(8192.0),
            nic: Mbps(1000.0),
            disk: Mbps(3000.0),
        }
    }

    /// A deliberately small node for unit tests and examples.
    pub fn small() -> Self {
        NodeSpec {
            cores: Cores(2.0),
            memory: MemMb(2048.0),
            nic: Mbps(100.0),
            disk: Mbps(300.0),
        }
    }

    /// Builder-style override of the core count.
    pub fn with_cores(mut self, cores: Cores) -> Self {
        self.cores = cores;
        self
    }

    /// Builder-style override of the memory size.
    pub fn with_memory(mut self, memory: MemMb) -> Self {
        self.memory = memory;
        self
    }

    /// Builder-style override of the NIC capacity.
    pub fn with_nic(mut self, nic: Mbps) -> Self {
        self.nic = nic;
        self
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec::uniform_worker()
    }
}

/// A node and the containers currently placed on it.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    id: NodeId,
    spec: NodeSpec,
    containers: Vec<ContainerId>,
    /// Container state lives *inside* the node (removed containers stay as
    /// tombstones so id lookups keep working). Nodes therefore share no
    /// mutable state, which is what lets the tick engine advance them on
    /// parallel threads without locks.
    pub(crate) slots: Vec<Container>,
    decommissioned: bool,
    /// True while the machine is crashed (fault injection). Unlike
    /// decommissioning, an offline node keeps its identity and comes back
    /// empty on reboot.
    offline: bool,
    /// Multiplier on the NIC capacity (fault injection; 1.0 = healthy).
    nic_factor: f64,
}

impl Node {
    pub(crate) fn new(id: NodeId, spec: NodeSpec) -> Self {
        Node {
            id,
            spec,
            containers: Vec::new(),
            slots: Vec::new(),
            decommissioned: false,
            offline: false,
            nic_factor: 1.0,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's hardware specification.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Containers currently placed on this node (any state).
    pub fn containers(&self) -> &[ContainerId] {
        &self.containers
    }

    pub(crate) fn attach(&mut self, container: ContainerId) {
        debug_assert!(!self.containers.contains(&container));
        self.containers.push(container);
    }

    pub(crate) fn detach(&mut self, container: ContainerId) {
        self.containers.retain(|&c| c != container);
    }

    /// True once the machine has been removed from the cluster.
    pub fn decommissioned(&self) -> bool {
        self.decommissioned
    }

    pub(crate) fn mark_decommissioned(&mut self) {
        self.decommissioned = true;
    }

    /// True while the machine is crashed (powered off by fault injection).
    pub fn offline(&self) -> bool {
        self.offline
    }

    pub(crate) fn mark_offline(&mut self) {
        self.offline = true;
    }

    pub(crate) fn mark_online(&mut self) {
        self.offline = false;
    }

    /// Current NIC degradation multiplier (1.0 = healthy hardware).
    pub fn nic_factor(&self) -> f64 {
        self.nic_factor
    }

    pub(crate) fn set_nic_factor(&mut self, factor: f64) {
        self.nic_factor = factor.clamp(0.0, 1.0);
    }

    /// Serializes the machine and every container slot it hosts
    /// (snapshot support).
    pub(crate) fn snapshot_write(&self, w: &mut SnapWriter) {
        w.put_u32(self.id.index());
        w.put_f64(self.spec.cores.get());
        w.put_f64(self.spec.memory.get());
        w.put_f64(self.spec.nic.get());
        w.put_f64(self.spec.disk.get());
        w.put_usize(self.containers.len());
        for &c in &self.containers {
            w.put_u32(c.index());
        }
        w.put_usize(self.slots.len());
        for slot in &self.slots {
            slot.snapshot_write(w);
        }
        w.put_bool(self.decommissioned);
        w.put_bool(self.offline);
        w.put_f64(self.nic_factor);
    }

    /// Rebuilds a machine from [`Node::snapshot_write`] output.
    pub(crate) fn snapshot_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let id = NodeId::new(r.get_u32()?);
        let spec = NodeSpec {
            cores: Cores(r.get_f64()?),
            memory: MemMb(r.get_f64()?),
            nic: Mbps(r.get_f64()?),
            disk: Mbps(r.get_f64()?),
        };
        let n = r.get_usize()?;
        let mut containers = Vec::with_capacity(n);
        for _ in 0..n {
            containers.push(ContainerId::new(r.get_u32()?));
        }
        let n = r.get_usize()?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(Container::snapshot_read(r)?);
        }
        Ok(Node {
            id,
            spec,
            containers,
            slots,
            decommissioned: r.get_bool()?,
            offline: r.get_bool()?,
            nic_factor: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_worker_matches_paper_hardware() {
        let spec = NodeSpec::uniform_worker();
        assert_eq!(spec.cores, Cores(4.0));
        assert_eq!(spec.memory, MemMb(8192.0));
    }

    #[test]
    fn builder_overrides() {
        let spec = NodeSpec::default()
            .with_cores(Cores(8.0))
            .with_memory(MemMb(16384.0))
            .with_nic(Mbps(10_000.0));
        assert_eq!(spec.cores, Cores(8.0));
        assert_eq!(spec.memory, MemMb(16384.0));
        assert_eq!(spec.nic, Mbps(10_000.0));
    }

    #[test]
    fn attach_detach_containers() {
        let mut node = Node::new(NodeId::new(0), NodeSpec::small());
        let a = ContainerId::new(1);
        let b = ContainerId::new(2);
        node.attach(a);
        node.attach(b);
        assert_eq!(node.containers(), &[a, b]);
        node.detach(a);
        assert_eq!(node.containers(), &[b]);
        node.detach(a); // idempotent
        assert_eq!(node.containers(), &[b]);
    }
}
