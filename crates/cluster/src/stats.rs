//! Per-container usage accounting — the simulator's `docker stats`.
//!
//! The paper's Node Managers poll `docker stats` and report CPU, memory,
//! and network usage for each container to the Monitor every scaling
//! period (5 s in the experiments). [`UsageWindow`] accumulates the fluid
//! model's per-tick grants and produces the same per-window averages.

use crate::ids::{ContainerId, NodeId};
use crate::{Cores, Mbps, MemMb};

/// Usage of one container averaged over a reporting window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerUsage {
    /// The container being reported.
    pub container: ContainerId,
    /// Average CPU consumption over the window, in cores.
    pub cpu_used: Cores,
    /// Resident memory at the end of the window (including swapped pages).
    pub mem_used: MemMb,
    /// Average egress rate over the window.
    pub net_used: Mbps,
    /// Average disk traffic rate over the window.
    pub disk_used: Mbps,
    /// Requests in flight at the end of the window.
    pub in_flight: usize,
    /// True if the container was swapping at any point in the window.
    pub swapping: bool,
}

/// Usage of one node over a reporting window.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeUsage {
    /// The node being reported.
    pub node: NodeId,
    /// Sum of container CPU consumption, in cores.
    pub cpu_used: Cores,
    /// Sum of container resident memory.
    pub mem_used: MemMb,
    /// Sum of container egress rates.
    pub net_used: Mbps,
    /// Per-container breakdown.
    pub containers: Vec<ContainerUsage>,
}

/// Accumulates one container's grants across ticks within a window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageWindow {
    /// Core-seconds consumed since the window started.
    cpu_core_secs: f64,
    /// Megabits sent since the window started.
    megabits: f64,
    /// Megabits of disk traffic since the window started.
    disk_megabits: f64,
    /// Wall-clock seconds elapsed in the window.
    elapsed_secs: f64,
    /// Latest resident-set sample.
    last_mem: f64,
    /// Latest in-flight sample.
    last_in_flight: usize,
    /// Whether any tick in the window saw swapping.
    swapped: bool,
}

impl UsageWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        UsageWindow::default()
    }

    /// Records one tick's grants for the container.
    #[allow(clippy::too_many_arguments)]
    pub fn record_tick(
        &mut self,
        dt_secs: f64,
        cpu_core_secs: f64,
        megabits: f64,
        disk_megabits: f64,
        mem: MemMb,
        in_flight: usize,
        swapping: bool,
    ) {
        self.elapsed_secs += dt_secs;
        self.cpu_core_secs += cpu_core_secs;
        self.megabits += megabits;
        self.disk_megabits += disk_megabits;
        self.last_mem = mem.get();
        self.last_in_flight = in_flight;
        self.swapped |= swapping;
    }

    /// Records `ticks` identical idle ticks at once (the time-warp fast
    /// path): elapsed time and CPU accumulate `ticks`-fold, the resident
    /// sample is the span's final value, and nothing is in flight.
    pub fn record_span(
        &mut self,
        dt_secs: f64,
        ticks: u64,
        cpu_core_secs: f64,
        mem: MemMb,
        swapping: bool,
    ) {
        let t = ticks as f64;
        self.elapsed_secs += dt_secs * t;
        self.cpu_core_secs += cpu_core_secs * t;
        self.last_mem = mem.get();
        self.last_in_flight = 0;
        self.swapped |= swapping;
    }

    /// Produces the window's averages and resets the accumulator for the
    /// next window.
    pub fn snapshot_and_reset(&mut self, container: ContainerId) -> ContainerUsage {
        let usage = self.peek(container);
        *self = UsageWindow {
            last_mem: self.last_mem,
            last_in_flight: self.last_in_flight,
            ..UsageWindow::default()
        };
        usage
    }

    /// Produces the window's averages without resetting.
    pub fn peek(&self, container: ContainerId) -> ContainerUsage {
        let denom = if self.elapsed_secs > 0.0 {
            self.elapsed_secs
        } else {
            1.0
        };
        ContainerUsage {
            container,
            cpu_used: Cores(self.cpu_core_secs / denom),
            mem_used: MemMb(self.last_mem),
            net_used: Mbps(self.megabits / denom),
            disk_used: Mbps(self.disk_megabits / denom),
            in_flight: self.last_in_flight,
            swapping: self.swapped,
        }
    }

    /// Seconds accumulated in the current window.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_secs
    }

    /// Serializes the accumulator fields (snapshot support).
    pub(crate) fn snapshot_write(&self, w: &mut hyscale_sim::SnapWriter) {
        w.put_f64(self.cpu_core_secs);
        w.put_f64(self.megabits);
        w.put_f64(self.disk_megabits);
        w.put_f64(self.elapsed_secs);
        w.put_f64(self.last_mem);
        w.put_usize(self.last_in_flight);
        w.put_bool(self.swapped);
    }

    /// Rebuilds a window from [`UsageWindow::snapshot_write`] output.
    pub(crate) fn snapshot_read(
        r: &mut hyscale_sim::SnapReader<'_>,
    ) -> Result<Self, hyscale_sim::SnapshotError> {
        Ok(UsageWindow {
            cpu_core_secs: r.get_f64()?,
            megabits: r.get_f64()?,
            disk_megabits: r.get_f64()?,
            elapsed_secs: r.get_f64()?,
            last_mem: r.get_f64()?,
            last_in_flight: r.get_usize()?,
            swapped: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctr() -> ContainerId {
        ContainerId::new(7)
    }

    #[test]
    fn averages_over_elapsed_time() {
        let mut w = UsageWindow::new();
        // Two 100 ms ticks at full single-core usage.
        w.record_tick(0.1, 0.1, 1.0, 0.5, MemMb(100.0), 3, false);
        w.record_tick(0.1, 0.1, 1.0, 0.5, MemMb(120.0), 2, false);
        let u = w.peek(ctr());
        assert!((u.cpu_used.get() - 1.0).abs() < 1e-12);
        assert!((u.net_used.get() - 10.0).abs() < 1e-9);
        assert!((u.disk_used.get() - 5.0).abs() < 1e-9);
        assert_eq!(u.mem_used, MemMb(120.0));
        assert_eq!(u.in_flight, 2);
        assert!(!u.swapping);
    }

    #[test]
    fn swap_flag_is_sticky_within_window() {
        let mut w = UsageWindow::new();
        w.record_tick(0.1, 0.0, 0.0, 0.0, MemMb(10.0), 0, true);
        w.record_tick(0.1, 0.0, 0.0, 0.0, MemMb(10.0), 0, false);
        assert!(w.peek(ctr()).swapping);
    }

    #[test]
    fn snapshot_resets_rates_but_keeps_last_samples() {
        let mut w = UsageWindow::new();
        w.record_tick(0.5, 1.0, 5.0, 2.0, MemMb(200.0), 4, true);
        let first = w.snapshot_and_reset(ctr());
        assert!((first.cpu_used.get() - 2.0).abs() < 1e-12);
        assert!(first.swapping);

        // After reset: no elapsed time, zero rates, but memory/in-flight
        // remain the latest known values.
        let second = w.peek(ctr());
        assert_eq!(second.cpu_used, Cores::ZERO);
        assert_eq!(second.net_used, Mbps::ZERO);
        assert_eq!(second.mem_used, MemMb(200.0));
        assert_eq!(second.in_flight, 4);
        assert!(!second.swapping);
        assert_eq!(w.elapsed_secs(), 0.0);
    }

    #[test]
    fn empty_window_reports_zero() {
        let w = UsageWindow::new();
        let u = w.peek(ctr());
        assert_eq!(u.cpu_used, Cores::ZERO);
        assert_eq!(u.net_used, Mbps::ZERO);
        assert_eq!(u.mem_used, MemMb::ZERO);
    }
}
