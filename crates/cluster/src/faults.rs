//! Deterministic, seedable fault injection.
//!
//! A [`FaultPlan`] is part of the experiment *definition*: a list of
//! infrastructure faults pinned to exact simulated times, either written
//! by hand or drawn from a [`SimRng`] via [`FaultPlan::random`] (same
//! seed ⇒ same plan ⇒ bit-identical runs at any tick parallelism). The
//! [`FaultInjector`] executes the plan against a [`Cluster`] as simulated
//! time advances, scheduling the matching recoveries (reboots, NIC
//! restores, stat-report un-muting) itself.
//!
//! Four fault classes cover the failure modes the paper's platform has to
//! survive:
//!
//! * **Node crash + reboot** — the machine drops off the network with all
//!   its replicas; it returns empty after a downtime.
//! * **Container OOM-kill** — the kernel kills the fattest replica of a
//!   service.
//! * **NIC degradation** — a node's egress capacity drops to a fraction
//!   for a while (flapping link).
//! * **Stat outage** — a NodeManager's `docker stats` reports go stale;
//!   the Monitor must decide (and detect deaths) without them.
//!
//! All fault application happens in the driver's serial event phase,
//! never inside the parallel per-node tick workers, so the determinism
//! guarantee of [`Cluster::set_parallelism`] carries over unchanged.

use hyscale_sim::{SimDuration, SimRng, SimTime, SnapReader, SnapWriter, SnapshotError};
use hyscale_trace::{EventKind, FaultTag, TraceSink};

use crate::cluster::Cluster;
use crate::ids::{ContainerId, NodeId, ServiceId};
use crate::request::FailedRequest;

/// One class of infrastructure fault. Nodes are addressed by their index
/// in the scenario's initial node list (like scheduled node events), and
/// services by their numeric id, so a plan is configuration, not runtime
/// state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Crash the node at this index; it reboots (empty) `down_secs`
    /// later.
    NodeCrash {
        /// Index into the scenario's node list.
        node: usize,
        /// Downtime before the machine reboots.
        down_secs: f64,
    },
    /// OOM-kill the live replica of `service` with the largest resident
    /// set (what the kernel's OOM killer picks).
    OomKill {
        /// Numeric service id.
        service: u32,
    },
    /// Degrade the node's NIC to `factor` of its capacity for
    /// `duration_secs`, then restore it.
    NicDegrade {
        /// Index into the scenario's node list.
        node: usize,
        /// Fraction of NIC capacity that remains (clamped to `[0, 1]`).
        factor: f64,
        /// How long the degradation lasts.
        duration_secs: f64,
    },
    /// Drop the node's NodeManager stat reports for `duration_secs`: the
    /// Monitor sees no fresh usage for its containers.
    StatOutage {
        /// Index into the scenario's node list.
        node: usize,
        /// How long reports stay muted.
        duration_secs: f64,
    },
}

/// A fault pinned to an exact simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes, in seconds from the start of the run.
    pub at_secs: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of infrastructure faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, sorted by time.
    pub events: Vec<FaultEvent>,
}

/// Shape of a randomly drawn fault plan: how many faults of each class to
/// scatter over the horizon, and the downtime/duration range.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanConfig {
    /// Faults are drawn in `[0.05, 0.85] * horizon_secs` so recoveries
    /// have room to land inside the run.
    pub horizon_secs: f64,
    /// Number of nodes eligible as targets (indices `0..nodes`).
    pub nodes: usize,
    /// Number of services eligible as OOM targets (ids `0..services`).
    pub services: usize,
    /// Node crashes to schedule.
    pub node_crashes: usize,
    /// OOM-kills to schedule.
    pub oom_kills: usize,
    /// NIC degradations to schedule.
    pub nic_degradations: usize,
    /// Stat outages to schedule.
    pub stat_outages: usize,
    /// Minimum downtime / fault duration, seconds.
    pub min_down_secs: f64,
    /// Maximum downtime / fault duration, seconds.
    pub max_down_secs: f64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            horizon_secs: 600.0,
            nodes: 4,
            services: 2,
            node_crashes: 1,
            oom_kills: 2,
            nic_degradations: 1,
            stat_outages: 2,
            min_down_secs: 10.0,
            max_down_secs: 60.0,
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults; the default for every scenario).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Fluent append of one fault, keeping the schedule sorted by time
    /// (stable: equal-time faults keep insertion order).
    pub fn with(mut self, at_secs: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_secs, kind });
        self.events
            .sort_by(|a, b| a.at_secs.partial_cmp(&b.at_secs).expect("finite times"));
        self
    }

    /// Draws a random plan from `rng`: times uniform over the middle of
    /// the horizon, targets uniform over nodes/services, downtimes and
    /// durations uniform over the configured range, NIC factors in
    /// `[0.05, 0.5]`. Deterministic for a given rng state.
    pub fn random(cfg: &FaultPlanConfig, rng: &mut SimRng) -> Self {
        let mut events = Vec::new();
        let at = |rng: &mut SimRng| rng.uniform_range(0.05, 0.85) * cfg.horizon_secs;
        let span = (cfg.min_down_secs, cfg.max_down_secs);
        for _ in 0..cfg.node_crashes {
            events.push(FaultEvent {
                at_secs: at(rng),
                kind: FaultKind::NodeCrash {
                    node: rng.uniform_usize(cfg.nodes.max(1)),
                    down_secs: rng.uniform_range(span.0, span.1),
                },
            });
        }
        for _ in 0..cfg.oom_kills {
            events.push(FaultEvent {
                at_secs: at(rng),
                kind: FaultKind::OomKill {
                    service: rng.uniform_usize(cfg.services.max(1)) as u32,
                },
            });
        }
        for _ in 0..cfg.nic_degradations {
            events.push(FaultEvent {
                at_secs: at(rng),
                kind: FaultKind::NicDegrade {
                    node: rng.uniform_usize(cfg.nodes.max(1)),
                    factor: rng.uniform_range(0.05, 0.5),
                    duration_secs: rng.uniform_range(span.0, span.1),
                },
            });
        }
        for _ in 0..cfg.stat_outages {
            events.push(FaultEvent {
                at_secs: at(rng),
                kind: FaultKind::StatOutage {
                    node: rng.uniform_usize(cfg.nodes.max(1)),
                    duration_secs: rng.uniform_range(span.0, span.1),
                },
            });
        }
        events.sort_by(|a, b| a.at_secs.partial_cmp(&b.at_secs).expect("finite times"));
        FaultPlan { events }
    }

    /// Validates the plan against a scenario shape.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason: non-finite or negative times or
    /// durations, node indices out of range, or OOM targets naming a
    /// service not in `services`.
    pub fn validate(&self, node_count: usize, services: &[ServiceId]) -> Result<(), String> {
        for (i, event) in self.events.iter().enumerate() {
            if !event.at_secs.is_finite() || event.at_secs < 0.0 {
                return Err(format!(
                    "fault {i}: time must be finite and non-negative, got {}",
                    event.at_secs
                ));
            }
            let check_node = |node: usize| {
                if node >= node_count {
                    Err(format!("fault {i}: node index {node} out of range"))
                } else {
                    Ok(())
                }
            };
            let check_duration = |secs: f64| {
                if !secs.is_finite() || secs <= 0.0 {
                    Err(format!(
                        "fault {i}: duration must be finite and positive, got {secs}"
                    ))
                } else {
                    Ok(())
                }
            };
            match event.kind {
                FaultKind::NodeCrash { node, down_secs } => {
                    check_node(node)?;
                    check_duration(down_secs)?;
                }
                FaultKind::OomKill { service } => {
                    if !services.iter().any(|s| s.index() == service) {
                        return Err(format!("fault {i}: unknown service id {service}"));
                    }
                }
                FaultKind::NicDegrade {
                    node,
                    factor,
                    duration_secs,
                } => {
                    check_node(node)?;
                    check_duration(duration_secs)?;
                    if !factor.is_finite() || !(0.0..=1.0).contains(&factor) {
                        return Err(format!(
                            "fault {i}: NIC factor must be within [0, 1], got {factor}"
                        ));
                    }
                }
                FaultKind::StatOutage {
                    node,
                    duration_secs,
                } => {
                    check_node(node)?;
                    check_duration(duration_secs)?;
                }
            }
        }
        Ok(())
    }
}

/// Counts of faults and recoveries actually applied during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Nodes crashed.
    pub node_crashes: u64,
    /// Nodes rebooted after a crash.
    pub reboots: u64,
    /// Replicas OOM-killed.
    pub oom_kills: u64,
    /// NIC degradations applied.
    pub nic_degradations: u64,
    /// Stat outages started.
    pub stat_outages: u64,
    /// Faults that found no target (e.g. an OOM-kill of a service with no
    /// replicas, or a crash of a node that was already down).
    pub skipped: u64,
}

impl FaultLog {
    /// Total faults that actually struck.
    pub fn total_applied(&self) -> u64 {
        self.node_crashes + self.oom_kills + self.nic_degradations + self.stat_outages
    }
}

impl std::ops::AddAssign for FaultLog {
    fn add_assign(&mut self, rhs: FaultLog) {
        self.node_crashes += rhs.node_crashes;
        self.reboots += rhs.reboots;
        self.oom_kills += rhs.oom_kills;
        self.nic_degradations += rhs.nic_degradations;
        self.stat_outages += rhs.stat_outages;
        self.skipped += rhs.skipped;
    }
}

/// A scheduled recovery the injector owes the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Recovery {
    Reboot(NodeId),
    NicRestore(NodeId),
}

/// Executes a [`FaultPlan`] against a cluster as simulated time advances.
///
/// The driver calls [`FaultInjector::apply_due`] once per tick (in its
/// serial event phase); the injector applies every fault that has come
/// due, schedules the matching recovery, and returns the requests the
/// faults aborted. Stat outages don't touch the cluster — the Monitor
/// queries [`FaultInjector::muted_nodes`] instead.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// `(time, kind)` schedule, sorted; `cursor` marks the next fault.
    schedule: Vec<(SimTime, FaultKind)>,
    cursor: usize,
    /// Recoveries owed, in the order their faults were applied.
    pending: Vec<(SimTime, Recovery)>,
    /// Stat outages: node muted until the given time.
    outages: Vec<(NodeId, SimTime)>,
    /// Scenario node index → runtime node id.
    node_ids: Vec<NodeId>,
    log: FaultLog,
}

impl FaultInjector {
    /// Builds an injector for `plan`, resolving node indices through
    /// `node_ids` (the scenario's initial node list, in order).
    pub fn new(plan: &FaultPlan, node_ids: &[NodeId]) -> Self {
        FaultInjector {
            schedule: plan
                .events
                .iter()
                .map(|e| (SimTime::from_secs(e.at_secs), e.kind))
                .collect(),
            cursor: 0,
            pending: Vec::new(),
            outages: Vec::new(),
            node_ids: node_ids.to_vec(),
            log: FaultLog::default(),
        }
    }

    /// Serializes the injector's mutable state: schedule progress, owed
    /// recoveries, live stat outages, and the fault log (snapshot
    /// support). The schedule itself and the node mapping are *not*
    /// written — they are rebuilt deterministically from the scenario's
    /// `FaultPlan` before [`FaultInjector::snapshot_restore`] overlays
    /// this state.
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        w.put_usize(self.cursor);
        w.put_usize(self.pending.len());
        for &(at, recovery) in &self.pending {
            w.put_u64(at.as_micros());
            match recovery {
                Recovery::Reboot(node) => {
                    w.put_u8(0);
                    w.put_u32(node.index());
                }
                Recovery::NicRestore(node) => {
                    w.put_u8(1);
                    w.put_u32(node.index());
                }
            }
        }
        w.put_usize(self.outages.len());
        for &(node, until) in &self.outages {
            w.put_u32(node.index());
            w.put_u64(until.as_micros());
        }
        w.put_u64(self.log.node_crashes);
        w.put_u64(self.log.reboots);
        w.put_u64(self.log.oom_kills);
        w.put_u64(self.log.nic_degradations);
        w.put_u64(self.log.stat_outages);
        w.put_u64(self.log.skipped);
    }

    /// Overlays state captured by [`FaultInjector::snapshot_write`] onto
    /// a freshly rebuilt injector (same plan, same node list).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] if the
    /// payload under-runs or the cursor exceeds the schedule length.
    pub fn snapshot_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let cursor = r.get_usize()?;
        if cursor > self.schedule.len() {
            return Err(SnapshotError::Corrupt(format!(
                "fault cursor {cursor} exceeds schedule length {}",
                self.schedule.len()
            )));
        }
        let n = r.get_usize()?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let at = SimTime::from_micros(r.get_u64()?);
            let recovery = match r.get_u8()? {
                0 => Recovery::Reboot(NodeId::new(r.get_u32()?)),
                1 => Recovery::NicRestore(NodeId::new(r.get_u32()?)),
                other => {
                    return Err(SnapshotError::Corrupt(format!(
                        "unknown recovery tag {other}"
                    )))
                }
            };
            pending.push((at, recovery));
        }
        let n = r.get_usize()?;
        let mut outages = Vec::with_capacity(n);
        for _ in 0..n {
            let node = NodeId::new(r.get_u32()?);
            let until = SimTime::from_micros(r.get_u64()?);
            outages.push((node, until));
        }
        self.cursor = cursor;
        self.pending = pending;
        self.outages = outages;
        self.log = FaultLog {
            node_crashes: r.get_u64()?,
            reboots: r.get_u64()?,
            oom_kills: r.get_u64()?,
            nic_degradations: r.get_u64()?,
            stat_outages: r.get_u64()?,
            skipped: r.get_u64()?,
        };
        Ok(())
    }

    /// Applies every fault and recovery due at or before `now`, returning
    /// the in-flight requests the faults aborted (connection failures —
    /// infrastructure deaths are not scale-in removals). Call once per
    /// tick, before the resource-model advance.
    pub fn apply_due(&mut self, cluster: &mut Cluster, now: SimTime) -> Vec<FailedRequest> {
        self.apply_due_traced(cluster, now, &mut TraceSink::disabled())
    }

    /// Like [`FaultInjector::apply_due`], but records every fault and
    /// recovery that actually struck into `trace` as
    /// [`EventKind::Fault`] events (skipped faults are not traced — they
    /// changed nothing).
    pub fn apply_due_traced(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        trace: &mut TraceSink,
    ) -> Vec<FailedRequest> {
        let mut aborted = Vec::new();

        // Recoveries first: a node whose downtime ends exactly when the
        // next fault strikes is back up for it.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, recovery) = self.pending.remove(i);
                match recovery {
                    Recovery::Reboot(node) => {
                        if cluster.reboot_node(node).is_ok() {
                            self.log.reboots += 1;
                            trace.emit(
                                now,
                                EventKind::Fault {
                                    fault: FaultTag::Reboot,
                                    node: Some(node.index()),
                                    service: None,
                                    magnitude: 0.0,
                                },
                            );
                        }
                    }
                    Recovery::NicRestore(node) => {
                        if cluster.set_nic_factor(node, 1.0).is_ok() {
                            trace.emit(
                                now,
                                EventKind::Fault {
                                    fault: FaultTag::NicRestore,
                                    node: Some(node.index()),
                                    service: None,
                                    magnitude: 1.0,
                                },
                            );
                        }
                    }
                }
            } else {
                i += 1;
            }
        }
        self.outages.retain(|&(_, until)| until > now);

        while let Some(&(at, kind)) = self.schedule.get(self.cursor) {
            if at > now {
                break;
            }
            self.cursor += 1;
            match kind {
                FaultKind::NodeCrash { node, down_secs } => {
                    let id = self.node_ids[node];
                    match cluster.crash_node(id, now) {
                        Ok(mut failures) => {
                            aborted.append(&mut failures);
                            self.log.node_crashes += 1;
                            self.pending.push((
                                now + SimDuration::from_secs(down_secs),
                                Recovery::Reboot(id),
                            ));
                            trace.emit(
                                now,
                                EventKind::Fault {
                                    fault: FaultTag::NodeCrash,
                                    node: Some(id.index()),
                                    service: None,
                                    magnitude: down_secs,
                                },
                            );
                        }
                        Err(_) => self.log.skipped += 1,
                    }
                }
                FaultKind::OomKill { service } => {
                    match oom_victim(cluster, ServiceId::new(service)) {
                        Some(victim) => match cluster.oom_kill(victim, now) {
                            Ok(mut failures) => {
                                aborted.append(&mut failures);
                                self.log.oom_kills += 1;
                                trace.emit(
                                    now,
                                    EventKind::Fault {
                                        fault: FaultTag::OomKill,
                                        node: None,
                                        service: Some(service),
                                        magnitude: 0.0,
                                    },
                                );
                            }
                            Err(_) => self.log.skipped += 1,
                        },
                        None => self.log.skipped += 1,
                    }
                }
                FaultKind::NicDegrade {
                    node,
                    factor,
                    duration_secs,
                } => {
                    let id = self.node_ids[node];
                    match cluster.set_nic_factor(id, factor) {
                        Ok(()) => {
                            self.log.nic_degradations += 1;
                            self.pending.push((
                                now + SimDuration::from_secs(duration_secs),
                                Recovery::NicRestore(id),
                            ));
                            trace.emit(
                                now,
                                EventKind::Fault {
                                    fault: FaultTag::NicDegrade,
                                    node: Some(id.index()),
                                    service: None,
                                    magnitude: factor,
                                },
                            );
                        }
                        Err(_) => self.log.skipped += 1,
                    }
                }
                FaultKind::StatOutage {
                    node,
                    duration_secs,
                } => {
                    let id = self.node_ids[node];
                    self.outages
                        .push((id, now + SimDuration::from_secs(duration_secs)));
                    self.log.stat_outages += 1;
                    trace.emit(
                        now,
                        EventKind::Fault {
                            fault: FaultTag::StatOutage,
                            node: Some(id.index()),
                            service: None,
                            magnitude: duration_secs,
                        },
                    );
                }
            }
        }
        aborted
    }

    /// Nodes whose NodeManager reports are muted at `now`, in fault order.
    pub fn muted_nodes(&self, now: SimTime) -> Vec<NodeId> {
        let mut muted: Vec<NodeId> = self
            .outages
            .iter()
            .filter(|&&(_, until)| until > now)
            .map(|&(node, _)| node)
            .collect();
        muted.sort_unstable();
        muted.dedup();
        muted
    }

    /// True once every scheduled fault has struck and every recovery has
    /// been delivered.
    pub fn drained(&self) -> bool {
        self.cursor == self.schedule.len() && self.pending.is_empty()
    }

    /// The earliest future moment at which this injector will mutate the
    /// cluster: the next scheduled fault or the next owed recovery,
    /// whichever comes first. `None` once both are exhausted. Stat-outage
    /// expiries are passive — [`FaultInjector::muted_nodes`] is a pure
    /// function of `now` — so they never pin the clock; the time-warp
    /// fast path uses this bound to know how far it may safely skip.
    pub fn next_due_time(&self) -> Option<SimTime> {
        let next_fault = self.schedule.get(self.cursor).map(|&(at, _)| at);
        let next_recovery = self.pending.iter().map(|&(at, _)| at).min();
        match (next_fault, next_recovery) {
            (Some(f), Some(r)) => Some(f.min(r)),
            (t, None) | (None, t) => t,
        }
    }

    /// Counts of faults applied so far.
    pub fn log(&self) -> FaultLog {
        self.log
    }
}

/// The kernel OOM killer's victim: the replica of `service` with the
/// largest resident set (ties keep the earliest-created replica, for
/// determinism).
fn oom_victim(cluster: &Cluster, service: ServiceId) -> Option<ContainerId> {
    let mut best: Option<(f64, ContainerId)> = None;
    for id in cluster.service_replicas(service) {
        let Some(container) = cluster.container(id) else {
            continue;
        };
        let mem = container.resident_mem().get();
        if best.is_none_or(|(best_mem, _)| mem > best_mem) {
            best = Some((mem, id));
        }
    }
    best.map(|(_, id)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::container::ContainerSpec;
    use crate::node::NodeSpec;
    use crate::request::Request;
    use crate::{Cores, MemMb};

    fn two_node_cluster() -> (Cluster, Vec<NodeId>) {
        let mut cl = Cluster::new(ClusterConfig::default());
        let ids = vec![
            cl.add_node(NodeSpec::uniform_worker()),
            cl.add_node(NodeSpec::uniform_worker()),
        ];
        (cl, ids)
    }

    fn ready_spec(svc: u32) -> ContainerSpec {
        ContainerSpec::new(ServiceId::new(svc)).with_startup_secs(0.0)
    }

    #[test]
    fn crash_aborts_in_flight_as_connection_failures_and_reboot_restores() {
        let (mut cl, nodes) = two_node_cluster();
        let ctr = cl
            .start_container(nodes[0], ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let plan = FaultPlan::new().with(
            1.0,
            FaultKind::NodeCrash {
                node: 0,
                down_secs: 5.0,
            },
        );
        let mut injector = FaultInjector::new(&plan, &nodes);

        let aborted = injector.apply_due(&mut cl, SimTime::from_secs(1.0));
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].kind, crate::FailureKind::InfraDeath);
        assert!(cl.node(nodes[0]).is_none(), "crashed node is unreachable");
        assert_eq!(cl.node_count(), 1);
        assert!(!injector.drained());

        // Nothing happens while the machine is down.
        assert!(injector
            .apply_due(&mut cl, SimTime::from_secs(3.0))
            .is_empty());
        assert!(cl.node(nodes[0]).is_none());

        // Reboot at crash + 5 s: identity restored, containers gone.
        injector.apply_due(&mut cl, SimTime::from_secs(6.0));
        let node = cl.node(nodes[0]).expect("rebooted");
        assert_eq!(node.id(), nodes[0]);
        assert!(cl.service_replicas(ServiceId::new(0)).is_empty());
        assert!(injector.drained());
        assert_eq!(injector.log().node_crashes, 1);
        assert_eq!(injector.log().reboots, 1);
    }

    #[test]
    fn next_due_time_tracks_faults_then_recoveries() {
        let (mut cl, nodes) = two_node_cluster();
        let plan = FaultPlan::new().with(
            2.0,
            FaultKind::NodeCrash {
                node: 0,
                down_secs: 5.0,
            },
        );
        let mut injector = FaultInjector::new(&plan, &nodes);
        assert_eq!(injector.next_due_time(), Some(SimTime::from_secs(2.0)));

        // After the crash strikes, the owed reboot pins the clock.
        injector.apply_due(&mut cl, SimTime::from_secs(2.0));
        assert_eq!(injector.next_due_time(), Some(SimTime::from_secs(7.0)));

        // Once the reboot lands nothing remains due.
        injector.apply_due(&mut cl, SimTime::from_secs(7.0));
        assert_eq!(injector.next_due_time(), None);
        assert!(injector.drained());
    }

    #[test]
    fn oom_kill_picks_the_fattest_replica() {
        let (mut cl, nodes) = two_node_cluster();
        let slim = cl
            .start_container(nodes[0], ready_spec(0), SimTime::ZERO)
            .unwrap();
        let fat = cl
            .start_container(
                nodes[1],
                ready_spec(0).with_base_overhead(Cores(0.02), MemMb(512.0)),
                SimTime::ZERO,
            )
            .unwrap();
        let plan = FaultPlan::new().with(0.0, FaultKind::OomKill { service: 0 });
        let mut injector = FaultInjector::new(&plan, &nodes);
        injector.apply_due(&mut cl, SimTime::ZERO);
        assert_eq!(cl.service_replicas(ServiceId::new(0)), vec![slim]);
        assert!(cl.container(fat).unwrap().state() == crate::ContainerState::Removed);
        assert_eq!(injector.log().oom_kills, 1);
    }

    #[test]
    fn oom_kill_without_replicas_is_skipped() {
        let (mut cl, nodes) = two_node_cluster();
        let plan = FaultPlan::new().with(0.0, FaultKind::OomKill { service: 7 });
        let mut injector = FaultInjector::new(&plan, &nodes);
        assert!(injector.apply_due(&mut cl, SimTime::ZERO).is_empty());
        assert_eq!(injector.log().skipped, 1);
        assert_eq!(injector.log().total_applied(), 0);
    }

    #[test]
    fn nic_degradation_applies_and_restores() {
        let (mut cl, nodes) = two_node_cluster();
        let plan = FaultPlan::new().with(
            1.0,
            FaultKind::NicDegrade {
                node: 1,
                factor: 0.25,
                duration_secs: 4.0,
            },
        );
        let mut injector = FaultInjector::new(&plan, &nodes);
        injector.apply_due(&mut cl, SimTime::from_secs(1.0));
        assert_eq!(cl.node(nodes[1]).unwrap().nic_factor(), 0.25);
        injector.apply_due(&mut cl, SimTime::from_secs(5.0));
        assert_eq!(cl.node(nodes[1]).unwrap().nic_factor(), 1.0);
        assert_eq!(injector.log().nic_degradations, 1);
    }

    #[test]
    fn stat_outage_mutes_then_expires() {
        let (mut cl, nodes) = two_node_cluster();
        let plan = FaultPlan::new().with(
            2.0,
            FaultKind::StatOutage {
                node: 0,
                duration_secs: 3.0,
            },
        );
        let mut injector = FaultInjector::new(&plan, &nodes);
        assert!(injector.muted_nodes(SimTime::from_secs(1.0)).is_empty());
        injector.apply_due(&mut cl, SimTime::from_secs(2.0));
        assert_eq!(
            injector.muted_nodes(SimTime::from_secs(2.0)),
            vec![nodes[0]]
        );
        assert_eq!(
            injector.muted_nodes(SimTime::from_secs(4.9)),
            vec![nodes[0]]
        );
        assert!(injector.muted_nodes(SimTime::from_secs(5.0)).is_empty());
    }

    #[test]
    fn crash_of_a_downed_node_is_skipped() {
        let (mut cl, nodes) = two_node_cluster();
        let plan = FaultPlan::new()
            .with(
                1.0,
                FaultKind::NodeCrash {
                    node: 0,
                    down_secs: 100.0,
                },
            )
            .with(
                2.0,
                FaultKind::NodeCrash {
                    node: 0,
                    down_secs: 100.0,
                },
            );
        let mut injector = FaultInjector::new(&plan, &nodes);
        injector.apply_due(&mut cl, SimTime::from_secs(1.0));
        injector.apply_due(&mut cl, SimTime::from_secs(2.0));
        assert_eq!(injector.log().node_crashes, 1);
        assert_eq!(injector.log().skipped, 1);
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        let cfg = FaultPlanConfig {
            horizon_secs: 300.0,
            nodes: 5,
            services: 3,
            node_crashes: 2,
            oom_kills: 3,
            nic_degradations: 2,
            stat_outages: 2,
            ..FaultPlanConfig::default()
        };
        let a = FaultPlan::random(&cfg, &mut SimRng::seed_from(42));
        let b = FaultPlan::random(&cfg, &mut SimRng::seed_from(42));
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
        let services: Vec<ServiceId> = (0..3).map(ServiceId::new).collect();
        a.validate(5, &services).unwrap();
        // Sorted by time.
        assert!(a.events.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
        // A different seed gives a different plan.
        let c = FaultPlan::random(&cfg, &mut SimRng::seed_from(43));
        assert_ne!(a, c);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let services = [ServiceId::new(0)];
        let bad_node = FaultPlan::new().with(
            1.0,
            FaultKind::NodeCrash {
                node: 9,
                down_secs: 1.0,
            },
        );
        assert!(bad_node.validate(2, &services).is_err());
        let bad_service = FaultPlan::new().with(1.0, FaultKind::OomKill { service: 5 });
        assert!(bad_service.validate(2, &services).is_err());
        let bad_factor = FaultPlan::new().with(
            1.0,
            FaultKind::NicDegrade {
                node: 0,
                factor: 1.5,
                duration_secs: 1.0,
            },
        );
        assert!(bad_factor.validate(2, &services).is_err());
        let bad_time = FaultPlan::new().with(
            -1.0,
            FaultKind::StatOutage {
                node: 0,
                duration_secs: 1.0,
            },
        );
        assert!(bad_time.validate(2, &services).is_err());
        let zero_duration = FaultPlan::new().with(
            1.0,
            FaultKind::StatOutage {
                node: 0,
                duration_secs: 0.0,
            },
        );
        assert!(zero_duration.validate(2, &services).is_err());
        assert!(FaultPlan::new().validate(0, &[]).is_ok());
    }
}
