//! Containers: one replica of one microservice.
//!
//! A container mirrors what Docker exposes to the paper's platform: a CPU
//! request (shares), a memory limit, an optional `tc` egress cap, and the
//! `docker update` operation that changes the first two at runtime
//! (vertical scaling). Each container also carries the per-replica
//! application overhead — the image plus JVM-like resident set and a base
//! CPU tax — that makes horizontal scaling non-free (Sec. III-A/B).

use hyscale_sim::{SimTime, SnapReader, SnapWriter, SnapshotError};

use crate::cohort::CohortTable;
use crate::ids::{ContainerId, NodeId, ServiceId};
use crate::request::InFlight;
use crate::stats::UsageWindow;
use crate::{Cores, Mbps, MemMb};

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerState {
    /// Image pulled, process starting; not yet accepting requests.
    Starting,
    /// Live and accepting requests.
    Running,
    /// Removed by a scaling decision; in-flight work was aborted.
    Removed,
}

impl std::fmt::Display for ContainerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerState::Starting => write!(f, "starting"),
            ContainerState::Running => write!(f, "running"),
            ContainerState::Removed => write!(f, "removed"),
        }
    }
}

/// Static configuration of a container replica.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerSpec {
    /// The microservice this replica belongs to.
    pub service: ServiceId,
    /// Requested CPU allocation (Docker shares, in core units).
    pub cpu_request: Cores,
    /// Memory limit (`docker run -m`); exceeding it forces swapping.
    pub mem_limit: MemMb,
    /// Requested egress bandwidth, used as the denominator of network
    /// utilization by the network autoscaler.
    pub net_request: Mbps,
    /// Optional hard `tc` egress cap; `None` means uncapped.
    pub net_cap: Option<Mbps>,
    /// Base CPU burned by the application runtime per second (JVM
    /// housekeeping, container runtime) regardless of load.
    pub base_cpu: Cores,
    /// Resident memory of the idle application (image + runtime heap).
    pub base_mem: MemMb,
    /// Working-set growth per unit of served throughput (MB per req/s):
    /// caches, session state, and heap churn scale with how much traffic
    /// a replica actually handles. This is what makes horizontal
    /// scale-out "incidentally allocate more memory" (paper Sec. VI-A):
    /// splitting the same rate over more replicas shrinks each one's
    /// working set.
    pub mem_per_rps: MemMb,
    /// Maximum number of requests in flight before admissions are refused
    /// (socket backlog limit).
    pub queue_cap: usize,
    /// Maximum concurrent kernel-level egress flows this container opens
    /// (its connection pool). Requests beyond the pool queue in the
    /// application without adding transmit-queue contention. `None`
    /// removes the pool (e.g. iperf parallel streams in the Fig. 3
    /// study).
    pub net_flow_pool: Option<usize>,
    /// Seconds from `start_container` until the replica serves traffic.
    pub startup_secs: f64,
    /// Per-replica consistency cost for *stateful* services (paper
    /// future work): every request pays `coordination_secs · (n − 1)`
    /// extra latency when the service runs `n` replicas, modelling quorum
    /// writes / state synchronization. Zero for stateless services.
    pub coordination_secs: f64,
    /// Antagonist containers (progrium-stress stand-ins) consume their CPU
    /// request permanently and never serve requests.
    pub antagonist: bool,
}

impl ContainerSpec {
    /// Creates a spec with the defaults used across the experiments:
    /// 0.5-core request, 256 MB limit, 50 Mb/s net request, 0.02-core /
    /// 64 MB base overhead, 256-deep queue, 1 s startup.
    pub fn new(service: ServiceId) -> Self {
        ContainerSpec {
            service,
            cpu_request: Cores(0.5),
            mem_limit: MemMb(256.0),
            net_request: Mbps(50.0),
            net_cap: None,
            base_cpu: Cores(0.02),
            base_mem: MemMb(64.0),
            mem_per_rps: MemMb::ZERO,
            queue_cap: 256,
            net_flow_pool: Some(8),
            startup_secs: 1.0,
            coordination_secs: 0.0,
            antagonist: false,
        }
    }

    /// Builder-style override of the CPU request.
    pub fn with_cpu_request(mut self, cpu: Cores) -> Self {
        self.cpu_request = cpu;
        self
    }

    /// Builder-style override of the memory limit.
    pub fn with_mem_limit(mut self, mem: MemMb) -> Self {
        self.mem_limit = mem;
        self
    }

    /// Builder-style override of the network request.
    pub fn with_net_request(mut self, net: Mbps) -> Self {
        self.net_request = net;
        self
    }

    /// Builder-style override of the `tc` egress cap.
    pub fn with_net_cap(mut self, cap: Mbps) -> Self {
        self.net_cap = Some(cap);
        self
    }

    /// Builder-style override of the per-replica base overhead.
    pub fn with_base_overhead(mut self, cpu: Cores, mem: MemMb) -> Self {
        self.base_cpu = cpu;
        self.base_mem = mem;
        self
    }

    /// Builder-style override of the working-set growth per req/s served.
    pub fn with_mem_per_rps(mut self, mem: MemMb) -> Self {
        self.mem_per_rps = mem;
        self
    }

    /// Builder-style override of the queue depth.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Builder-style override of the egress connection pool
    /// (`None` = one kernel flow per in-flight request).
    pub fn with_net_flow_pool(mut self, pool: Option<usize>) -> Self {
        self.net_flow_pool = pool;
        self
    }

    /// Builder-style override of the startup delay.
    pub fn with_startup_secs(mut self, secs: f64) -> Self {
        self.startup_secs = secs;
        self
    }

    /// Marks the service as stateful: each request pays this much extra
    /// latency per additional replica (state synchronization).
    pub fn with_coordination_secs(mut self, secs: f64) -> Self {
        self.coordination_secs = secs;
        self
    }

    /// Marks this container as a pure antagonist (stress container).
    pub fn antagonist(mut self) -> Self {
        self.antagonist = true;
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason if any quantity is negative,
    /// non-finite, or the queue capacity is zero for a serving container.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, f64); 6] = [
            ("cpu_request", self.cpu_request.get()),
            ("mem_limit", self.mem_limit.get()),
            ("net_request", self.net_request.get()),
            ("base_cpu", self.base_cpu.get()),
            ("base_mem", self.base_mem.get()),
            ("mem_per_rps", self.mem_per_rps.get()),
        ];
        for (name, v) in checks {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        if let Some(cap) = self.net_cap {
            if !cap.get().is_finite() || cap.get() <= 0.0 {
                return Err(format!("net_cap must be positive, got {}", cap.get()));
            }
        }
        if !self.antagonist && self.queue_cap == 0 {
            return Err("queue_cap must be positive for serving containers".to_string());
        }
        if !self.startup_secs.is_finite() || self.startup_secs < 0.0 {
            return Err(format!(
                "startup_secs must be finite and non-negative, got {}",
                self.startup_secs
            ));
        }
        if !self.coordination_secs.is_finite() || self.coordination_secs < 0.0 {
            return Err(format!(
                "coordination_secs must be finite and non-negative, got {}",
                self.coordination_secs
            ));
        }
        Ok(())
    }
}

/// A live container replica.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    id: ContainerId,
    node: NodeId,
    spec: ContainerSpec,
    state: ContainerState,
    ready_at: SimTime,
    pub(crate) in_flight: Vec<InFlight>,
    /// In-flight flow cohorts (struct-of-arrays; each slot carries many
    /// identical member requests). Individually-admitted requests stay in
    /// `in_flight`; the two populations share the processor fairly.
    pub(crate) cohorts: CohortTable,
    /// Cumulative core-seconds consumed (for stats).
    pub(crate) cpu_used_total: f64,
    /// Cumulative megabits sent (for stats).
    pub(crate) megabits_sent_total: f64,
    /// Smoothed served throughput in requests per second, driving the
    /// working-set memory term.
    pub(crate) throughput_ewma: f64,
    /// Usage accumulator the Node Manager snapshots every period. Living
    /// inside the container keeps the tick loop's state per node, which is
    /// what lets nodes advance in parallel.
    pub(crate) window: UsageWindow,
}

impl Container {
    /// Serializes the full replica state — spec, lifecycle, in-flight
    /// requests, cohorts, usage accumulators (snapshot support).
    pub(crate) fn snapshot_write(&self, w: &mut SnapWriter) {
        w.put_u32(self.id.index());
        w.put_u32(self.node.index());
        // Spec, field by field.
        w.put_u32(self.spec.service.index());
        w.put_f64(self.spec.cpu_request.get());
        w.put_f64(self.spec.mem_limit.get());
        w.put_f64(self.spec.net_request.get());
        w.put_opt_f64(self.spec.net_cap.map(|c| c.get()));
        w.put_f64(self.spec.base_cpu.get());
        w.put_f64(self.spec.base_mem.get());
        w.put_f64(self.spec.mem_per_rps.get());
        w.put_usize(self.spec.queue_cap);
        match self.spec.net_flow_pool {
            Some(n) => {
                w.put_bool(true);
                w.put_usize(n);
            }
            None => w.put_bool(false),
        }
        w.put_f64(self.spec.startup_secs);
        w.put_f64(self.spec.coordination_secs);
        w.put_bool(self.spec.antagonist);
        // Lifecycle.
        w.put_u8(match self.state {
            ContainerState::Starting => 0,
            ContainerState::Running => 1,
            ContainerState::Removed => 2,
        });
        w.put_u64(self.ready_at.as_micros());
        // In-flight per-request state.
        w.put_usize(self.in_flight.len());
        for inf in &self.in_flight {
            inf.snapshot_write(w);
        }
        self.cohorts.snapshot_write(w);
        w.put_f64(self.cpu_used_total);
        w.put_f64(self.megabits_sent_total);
        w.put_f64(self.throughput_ewma);
        self.window.snapshot_write(w);
    }

    /// Rebuilds a replica from [`Container::snapshot_write`] output.
    ///
    /// Unlike [`Container::new`], this does not restart the startup
    /// clock: the snapshotted `state` and `ready_at` are reinstated
    /// verbatim.
    pub(crate) fn snapshot_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let id = ContainerId::new(r.get_u32()?);
        let node = NodeId::new(r.get_u32()?);
        let spec = ContainerSpec {
            service: ServiceId::new(r.get_u32()?),
            cpu_request: Cores(r.get_f64()?),
            mem_limit: MemMb(r.get_f64()?),
            net_request: Mbps(r.get_f64()?),
            net_cap: r.get_opt_f64()?.map(Mbps),
            base_cpu: Cores(r.get_f64()?),
            base_mem: MemMb(r.get_f64()?),
            mem_per_rps: MemMb(r.get_f64()?),
            queue_cap: r.get_usize()?,
            net_flow_pool: if r.get_bool()? {
                Some(r.get_usize()?)
            } else {
                None
            },
            startup_secs: r.get_f64()?,
            coordination_secs: r.get_f64()?,
            antagonist: r.get_bool()?,
        };
        let state = match r.get_u8()? {
            0 => ContainerState::Starting,
            1 => ContainerState::Running,
            2 => ContainerState::Removed,
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown container state tag {other}"
                )))
            }
        };
        let ready_at = SimTime::from_micros(r.get_u64()?);
        let n = r.get_usize()?;
        let mut in_flight = Vec::with_capacity(n);
        for _ in 0..n {
            in_flight.push(InFlight::snapshot_read(r)?);
        }
        let cohorts = CohortTable::snapshot_read(r)?;
        Ok(Container {
            id,
            node,
            spec,
            state,
            ready_at,
            in_flight,
            cohorts,
            cpu_used_total: r.get_f64()?,
            megabits_sent_total: r.get_f64()?,
            throughput_ewma: r.get_f64()?,
            window: UsageWindow::snapshot_read(r)?,
        })
    }

    pub(crate) fn new(id: ContainerId, node: NodeId, spec: ContainerSpec, now: SimTime) -> Self {
        let ready_at = now + hyscale_sim::SimDuration::from_secs(spec.startup_secs);
        Container {
            id,
            node,
            spec,
            state: ContainerState::Starting,
            ready_at,
            in_flight: Vec::new(),
            cohorts: CohortTable::default(),
            cpu_used_total: 0.0,
            megabits_sent_total: 0.0,
            throughput_ewma: 0.0,
            window: UsageWindow::new(),
        }
    }

    /// This container's identifier.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The node hosting this container.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The microservice this replica belongs to.
    pub fn service(&self) -> ServiceId {
        self.spec.service
    }

    /// The container's (mutable-over-time) specification.
    pub fn spec(&self) -> &ContainerSpec {
        &self.spec
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// When the container becomes ready to serve.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Number of requests currently in flight, counting every member of
    /// every resident cohort.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len() + self.cohorts.members() as usize
    }

    /// Total in-flight members as a wide count (individually-admitted
    /// requests plus cohort members), safe beyond `usize` semantics for
    /// million-user scenarios.
    pub fn in_flight_members(&self) -> u64 {
        self.in_flight.len() as u64 + self.cohorts.members()
    }

    /// Number of distinct in-flight cohort records (not members).
    pub fn cohort_count(&self) -> usize {
        self.cohorts.len()
    }

    /// True if the container can accept a request at `now`.
    pub fn accepting(&self, now: SimTime) -> bool {
        !self.spec.antagonist
            && self.state != ContainerState::Removed
            && now >= self.ready_at
            && self.in_flight_members() < self.spec.queue_cap as u64
    }

    /// Queue headroom at `now`: how many more members fit under
    /// `queue_cap`. Zero when not accepting.
    pub fn queue_headroom(&self, now: SimTime) -> u64 {
        if !self.accepting(now) {
            return 0;
        }
        (self.spec.queue_cap as u64).saturating_sub(self.in_flight_members())
    }

    /// True if the container serves traffic at `now` (started and live).
    pub fn live(&self, now: SimTime) -> bool {
        self.state != ContainerState::Removed && now >= self.ready_at
    }

    /// Current resident set: base overhead, the throughput-driven working
    /// set, and per-request memory of everything in flight.
    pub fn resident_mem(&self) -> MemMb {
        let req_mem: f64 = self.in_flight.iter().map(|r| r.request.mem.get()).sum();
        self.resident_mem_with(req_mem + self.cohorts.resident_mem())
    }

    /// `resident_mem` with the per-request sum supplied by a caller that
    /// already swept `in_flight` (the tick engine folds it into the
    /// completion scan). `req_mem` must equal summing
    /// `in_flight[..].request.mem` in index order.
    pub(crate) fn resident_mem_with(&self, req_mem: f64) -> MemMb {
        self.spec.base_mem
            + MemMb(self.spec.mem_per_rps.get() * self.throughput_ewma)
            + MemMb(req_mem)
    }

    /// Smoothed served throughput, requests per second.
    pub fn throughput_rps(&self) -> f64 {
        self.throughput_ewma
    }

    /// Updates the throughput EWMA with `completed` requests over a tick
    /// of `dt_secs` (time constant `tau_secs`).
    pub(crate) fn record_throughput(&mut self, completed: u64, dt_secs: f64, tau_secs: f64) {
        if dt_secs <= 0.0 {
            return;
        }
        let inst = completed as f64 / dt_secs;
        let alpha = (dt_secs / tau_secs.max(dt_secs)).clamp(0.0, 1.0);
        self.throughput_ewma += alpha * (inst - self.throughput_ewma);
    }

    pub(crate) fn mark_running_if_ready(&mut self, now: SimTime) {
        if self.state == ContainerState::Starting && now >= self.ready_at {
            self.state = ContainerState::Running;
        }
    }

    pub(crate) fn mark_removed(&mut self) {
        self.state = ContainerState::Removed;
    }

    /// Applies a `docker update`: changes the CPU request and memory limit
    /// in place. Values are clamped to be non-negative.
    pub(crate) fn update_resources(&mut self, cpu: Cores, mem: MemMb) {
        self.spec.cpu_request = cpu.max_zero();
        self.spec.mem_limit = mem.max_zero();
    }

    /// Applies a new `tc` egress cap (or lifts it with `None`).
    pub(crate) fn update_net_cap(&mut self, cap: Option<Mbps>) {
        self.spec.net_cap = cap.map(Mbps::max_zero);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ContainerSpec {
        ContainerSpec::new(ServiceId::new(0))
    }

    #[test]
    fn default_spec_validates() {
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(spec().with_cpu_request(Cores(-1.0)).validate().is_err());
        assert!(spec().with_mem_limit(MemMb(f64::NAN)).validate().is_err());
        assert!(spec().with_queue_cap(0).validate().is_err());
        assert!(spec().with_net_cap(Mbps(0.0)).validate().is_err());
        // antagonists don't need a queue
        assert!(spec().with_queue_cap(0).antagonist().validate().is_ok());
    }

    #[test]
    fn startup_delay_gates_acceptance() {
        let c = Container::new(ContainerId::new(0), NodeId::new(0), spec(), SimTime::ZERO);
        assert_eq!(c.state(), ContainerState::Starting);
        assert!(!c.accepting(SimTime::from_millis(500)));
        assert!(c.accepting(SimTime::from_secs(1.0)));
    }

    #[test]
    fn mark_running_transitions_once_ready() {
        let mut c = Container::new(ContainerId::new(0), NodeId::new(0), spec(), SimTime::ZERO);
        c.mark_running_if_ready(SimTime::from_millis(100));
        assert_eq!(c.state(), ContainerState::Starting);
        c.mark_running_if_ready(SimTime::from_secs(2.0));
        assert_eq!(c.state(), ContainerState::Running);
    }

    #[test]
    fn removed_containers_never_accept() {
        let mut c = Container::new(ContainerId::new(0), NodeId::new(0), spec(), SimTime::ZERO);
        c.mark_removed();
        assert!(!c.accepting(SimTime::from_secs(10.0)));
        assert!(!c.live(SimTime::from_secs(10.0)));
    }

    #[test]
    fn antagonists_never_accept() {
        let c = Container::new(
            ContainerId::new(0),
            NodeId::new(0),
            spec().antagonist(),
            SimTime::ZERO,
        );
        assert!(!c.accepting(SimTime::from_secs(10.0)));
        // ... but they are live (they consume resources).
        assert!(c.live(SimTime::from_secs(10.0)));
    }

    #[test]
    fn resident_mem_is_base_plus_requests() {
        use crate::ids::RequestId;
        use crate::request::Request;
        let mut c = Container::new(ContainerId::new(0), NodeId::new(0), spec(), SimTime::ZERO);
        assert_eq!(c.resident_mem(), MemMb(64.0));
        let r = Request::mem_bound(ServiceId::new(0), SimTime::ZERO, MemMb(100.0));
        c.in_flight.push(crate::request::InFlight::new(
            RequestId::new(0),
            r,
            SimTime::ZERO,
        ));
        assert_eq!(c.resident_mem(), MemMb(164.0));
    }

    #[test]
    fn docker_update_clamps_to_zero() {
        let mut c = Container::new(ContainerId::new(0), NodeId::new(0), spec(), SimTime::ZERO);
        c.update_resources(Cores(-0.5), MemMb(-1.0));
        assert_eq!(c.spec().cpu_request, Cores::ZERO);
        assert_eq!(c.spec().mem_limit, MemMb::ZERO);
        c.update_net_cap(Some(Mbps(25.0)));
        assert_eq!(c.spec().net_cap, Some(Mbps(25.0)));
        c.update_net_cap(None);
        assert_eq!(c.spec().net_cap, None);
    }

    #[test]
    fn state_display() {
        assert_eq!(ContainerState::Starting.to_string(), "starting");
        assert_eq!(ContainerState::Running.to_string(), "running");
        assert_eq!(ContainerState::Removed.to_string(), "removed");
    }

    #[test]
    fn queue_cap_limits_acceptance() {
        use crate::ids::RequestId;
        use crate::request::{InFlight, Request};
        let mut c = Container::new(
            ContainerId::new(0),
            NodeId::new(0),
            spec().with_queue_cap(1).with_startup_secs(0.0),
            SimTime::ZERO,
        );
        assert!(c.accepting(SimTime::ZERO));
        let r = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.1);
        c.in_flight
            .push(InFlight::new(RequestId::new(0), r, SimTime::ZERO));
        assert!(!c.accepting(SimTime::ZERO));
    }
}
