//! The cluster state machine: placement, `docker update`, admission, and
//! the per-tick fluid-flow advance.

use hyscale_sim::{SimDuration, SimTime};

use crate::container::{Container, ContainerSpec, ContainerState};
use crate::cpu::{CpuAllocator, CpuDemand};
use crate::error::ClusterError;
use crate::ids::{ContainerId, IdAllocator, NodeId, RequestId, ServiceId};
use crate::memory::MemoryModel;
use crate::network::{NetAllocator, NetDemand};
use crate::node::{Node, NodeSpec};
use crate::overhead::OverheadModel;
use crate::request::{CompletedRequest, FailedRequest, FailureKind, InFlight, Request};
use crate::stats::{ContainerUsage, NodeUsage, UsageWindow};
use crate::{Cores, MemMb};

/// Global configuration of the cluster model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterConfig {
    /// Empirical overhead coefficients (Sec. III calibration).
    pub overheads: OverheadModel,
}

/// What happened during one tick of the fluid model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    /// Requests that finished during the tick.
    pub completed: Vec<CompletedRequest>,
    /// Requests that failed during the tick (timeouts).
    pub failed: Vec<FailedRequest>,
}

/// The simulated cluster: nodes, containers, and in-flight work.
///
/// All mutation goes through explicit operations that mirror what the
/// paper's platform can do to a real Docker cluster:
///
/// * [`Cluster::start_container`] — `docker run` (horizontal scale-out),
/// * [`Cluster::remove_container`] — `docker rm -f` (scale-in; aborts
///   in-flight work as *removal failures*),
/// * [`Cluster::update_container`] — `docker update` (vertical scaling),
/// * [`Cluster::admit_request`] — a load balancer handing a request to a
///   replica,
/// * [`Cluster::advance`] — physics: one tick of CPU/memory/network flow.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Node>,
    containers: Vec<Container>,
    windows: Vec<UsageWindow>,
    node_ids: IdAllocator,
    container_ids: IdAllocator,
    request_ids: IdAllocator,
    mem_model: MemoryModel,
    net_alloc: NetAllocator,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(config: ClusterConfig) -> Self {
        Cluster {
            mem_model: MemoryModel::new(config.overheads),
            net_alloc: NetAllocator::new(config.overheads),
            config,
            nodes: Vec::new(),
            containers: Vec::new(),
            windows: Vec::new(),
            node_ids: IdAllocator::default(),
            container_ids: IdAllocator::default(),
            request_ids: IdAllocator::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId::new(self.node_ids.next_u32());
        self.nodes.push(Node::new(id, spec));
        id
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes
            .get(id.as_usize())
            .filter(|n| !n.decommissioned())
    }

    /// Decommissions a node (paper future work: "dynamic addition and
    /// removal of machines"). Every container on the node is removed;
    /// their in-flight requests are returned as removal failures. The
    /// node stops hosting, scheduling, and advertising resources.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] if the node does not exist
    /// or was already decommissioned.
    pub fn decommission_node(
        &mut self,
        id: NodeId,
        now: SimTime,
    ) -> Result<Vec<FailedRequest>, ClusterError> {
        if self.node(id).is_none() {
            return Err(ClusterError::UnknownNode(id));
        }
        let containers: Vec<ContainerId> = self.nodes[id.as_usize()].containers().to_vec();
        let mut failures = Vec::new();
        for ctr in containers {
            if let Ok(mut aborted) = self.remove_container(ctr, now) {
                failures.append(&mut aborted);
            }
        }
        self.nodes[id.as_usize()].mark_decommissioned();
        Ok(failures)
    }

    /// Iterates over all commissioned nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| !n.decommissioned())
    }

    /// Number of commissioned nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes().count()
    }

    /// Looks up a container (including removed ones).
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(id.as_usize())
    }

    /// Iterates over containers that have not been removed.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers
            .iter()
            .filter(|c| c.state() != ContainerState::Removed)
    }

    /// Live (not removed) replicas of a service, in creation order.
    pub fn service_replicas(&self, service: ServiceId) -> Vec<ContainerId> {
        self.containers()
            .filter(|c| c.service() == service && !c.spec().antagonist)
            .map(|c| c.id())
            .collect()
    }

    /// CPU and memory not yet promised to live containers on `node`
    /// (capacity minus the sum of requests/limits). This is the quantity
    /// nodes "advertise" to the Monitor for placement decisions.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for an invalid id.
    pub fn free_resources(&self, node: NodeId) -> Result<(Cores, MemMb), ClusterError> {
        let n = self.node(node).ok_or(ClusterError::UnknownNode(node))?;
        let mut cpu = n.spec().cores;
        let mut mem = n.spec().memory;
        for &cid in n.containers() {
            let c = &self.containers[cid.as_usize()];
            if c.state() != ContainerState::Removed {
                cpu -= c.spec().cpu_request;
                mem -= c.spec().mem_limit;
            }
        }
        Ok((cpu, mem))
    }

    /// Starts a container on `node` (`docker run`). The container begins
    /// serving after its startup delay.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] or
    /// [`ClusterError::InvalidSpec`]. Placement feasibility is *not*
    /// enforced here — Docker happily oversubscribes a machine; admission
    /// control is the Monitor's job (as in the paper).
    pub fn start_container(
        &mut self,
        node: NodeId,
        spec: ContainerSpec,
        now: SimTime,
    ) -> Result<ContainerId, ClusterError> {
        if self.node(node).is_none() {
            return Err(ClusterError::UnknownNode(node));
        }
        spec.validate().map_err(ClusterError::InvalidSpec)?;
        let id = ContainerId::new(self.container_ids.next_u32());
        self.containers.push(Container::new(id, node, spec, now));
        self.windows.push(UsageWindow::new());
        self.nodes[node.as_usize()].attach(id);
        Ok(id)
    }

    /// Force-removes a container (`docker rm -f`). Its in-flight requests
    /// are aborted and returned as removal failures.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] if the container does
    /// not exist or was already removed.
    pub fn remove_container(
        &mut self,
        id: ContainerId,
        now: SimTime,
    ) -> Result<Vec<FailedRequest>, ClusterError> {
        let c = self
            .containers
            .get_mut(id.as_usize())
            .ok_or(ClusterError::UnknownContainer(id))?;
        if c.state() == ContainerState::Removed {
            return Err(ClusterError::UnknownContainer(id));
        }
        let node = c.node();
        c.mark_removed();
        let failures: Vec<FailedRequest> = c
            .in_flight
            .drain(..)
            .map(|inflight| FailedRequest {
                id: inflight.id,
                service: inflight.request.service,
                container: Some(id),
                arrival: inflight.request.arrival,
                failed_at: now,
                kind: FailureKind::Removal,
            })
            .collect();
        self.nodes[node.as_usize()].detach(id);
        Ok(failures)
    }

    /// Applies a `docker update`: changes a container's CPU request and
    /// memory limit in place. This is the vertical-scaling primitive.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] for an invalid or
    /// removed container.
    pub fn update_container(
        &mut self,
        id: ContainerId,
        cpu: Cores,
        mem: MemMb,
    ) -> Result<(), ClusterError> {
        let c = self.live_container_mut(id)?;
        c.update_resources(cpu, mem);
        Ok(())
    }

    /// Applies or lifts a `tc` egress cap on a container.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] for an invalid or
    /// removed container.
    pub fn update_net_cap(
        &mut self,
        id: ContainerId,
        cap: Option<crate::Mbps>,
    ) -> Result<(), ClusterError> {
        let c = self.live_container_mut(id)?;
        c.update_net_cap(cap);
        Ok(())
    }

    /// Hands a request to a replica (what a load balancer does).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::UnknownContainer`] — no such container.
    /// * [`ClusterError::NotAccepting`] — replica starting/removed or an
    ///   antagonist.
    /// * [`ClusterError::QueueFull`] — socket backlog exhausted.
    pub fn admit_request(
        &mut self,
        id: ContainerId,
        request: Request,
        now: SimTime,
    ) -> Result<RequestId, ClusterError> {
        let req_id = RequestId::new(self.request_ids.next_u64());
        let c = self
            .containers
            .get_mut(id.as_usize())
            .ok_or(ClusterError::UnknownContainer(id))?;
        if c.spec().antagonist || !c.live(now) {
            return Err(ClusterError::NotAccepting(id));
        }
        if c.in_flight.len() >= c.spec().queue_cap {
            return Err(ClusterError::QueueFull(id));
        }
        c.in_flight.push(InFlight::new(req_id, request, now));
        Ok(req_id)
    }

    /// Advances the fluid model by one tick starting at `now` and lasting
    /// `dt`. Returns the requests that completed or timed out.
    pub fn advance(&mut self, now: SimTime, dt: SimDuration) -> TickReport {
        let dt_secs = dt.as_secs();
        let end = now + dt;
        let mut report = TickReport::default();
        if dt_secs <= 0.0 {
            return report;
        }

        for c in &mut self.containers {
            c.mark_running_if_ready(now);
        }

        // Cache replica counts per service for fan-out latency.
        let mut replica_counts: std::collections::HashMap<ServiceId, usize> =
            std::collections::HashMap::new();
        for c in self.containers.iter() {
            if c.state() != ContainerState::Removed && !c.spec().antagonist {
                *replica_counts.entry(c.service()).or_insert(0) += 1;
            }
        }

        for node_idx in 0..self.nodes.len() {
            self.advance_node(node_idx, now, end, dt_secs, &replica_counts, &mut report);
        }
        report
    }

    /// Snapshot (and reset) the usage windows of every container on a
    /// node — what a Node Manager reports to the Monitor each period.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for an invalid id.
    pub fn node_usage_and_reset(&mut self, node: NodeId) -> Result<NodeUsage, ClusterError> {
        if self.node(node).is_none() {
            return Err(ClusterError::UnknownNode(node));
        }
        let ids: Vec<ContainerId> = self.nodes[node.as_usize()].containers().to_vec();
        let mut usage = NodeUsage {
            node,
            cpu_used: Cores::ZERO,
            mem_used: MemMb::ZERO,
            net_used: crate::Mbps::ZERO,
            containers: Vec::with_capacity(ids.len()),
        };
        for id in ids {
            let sample = self.windows[id.as_usize()].snapshot_and_reset(id);
            usage.cpu_used += sample.cpu_used;
            usage.mem_used += sample.mem_used;
            usage.net_used += sample.net_used;
            usage.containers.push(sample);
        }
        Ok(usage)
    }

    /// Peeks at one container's usage window without resetting it.
    pub fn container_usage(&self, id: ContainerId) -> Option<ContainerUsage> {
        self.windows.get(id.as_usize()).map(|w| w.peek(id))
    }

    fn live_container_mut(&mut self, id: ContainerId) -> Result<&mut Container, ClusterError> {
        let c = self
            .containers
            .get_mut(id.as_usize())
            .ok_or(ClusterError::UnknownContainer(id))?;
        if c.state() == ContainerState::Removed {
            return Err(ClusterError::UnknownContainer(id));
        }
        Ok(c)
    }

    #[allow(clippy::too_many_arguments)]
    fn advance_node(
        &mut self,
        node_idx: usize,
        now: SimTime,
        end: SimTime,
        dt_secs: f64,
        replica_counts: &std::collections::HashMap<ServiceId, usize>,
        report: &mut TickReport,
    ) {
        let node_spec = *self.nodes[node_idx].spec();
        let ids: Vec<ContainerId> = self.nodes[node_idx].containers().to_vec();
        if ids.is_empty() {
            return;
        }

        // --- Memory pressure per container ------------------------------
        let mut slowdowns: Vec<f64> = Vec::with_capacity(ids.len());
        let mut swapping: Vec<bool> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let c = &self.containers[id.as_usize()];
            let pressure = self
                .mem_model
                .pressure(c.resident_mem(), c.spec().mem_limit);
            slowdowns.push(pressure.slowdown);
            swapping.push(pressure.is_swapping());
        }

        // --- CPU demands -------------------------------------------------
        let mut cpu_demands: Vec<CpuDemand> = Vec::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let c = &self.containers[id.as_usize()];
            let demand = if !c.live(now) {
                0.0
            } else if c.spec().antagonist {
                // Stress containers try to hog the whole machine.
                node_spec.cores.get() * dt_secs
            } else {
                // A swapping container is IO-bound: each request stalls on
                // page faults and can use at most dt/slowdown of CPU time,
                // leaving the CPU idle (not hogged) while it thrashes.
                let base = c.spec().base_cpu.get() * dt_secs;
                let thread_budget = dt_secs / slowdowns[i];
                let requests: f64 = c
                    .in_flight
                    .iter()
                    .filter(|r| r.wants_cpu())
                    .map(|r| r.cpu_remaining.min(thread_budget))
                    .sum();
                base + requests
            };
            cpu_demands.push(CpuDemand::new(id, demand, c.spec().cpu_request.get()));
        }
        let active = cpu_demands.iter().filter(|d| d.demand > 1e-12).count();
        let capacity =
            node_spec.cores.get() * dt_secs * self.config.overheads.cpu_contention_factor(active);
        let cpu_grants = CpuAllocator::allocate(capacity, &cpu_demands);

        // --- Apply CPU progress -------------------------------------------
        let mut cpu_used: Vec<f64> = vec![0.0; ids.len()];
        for (i, grant) in cpu_grants.iter().enumerate() {
            let id = ids[i];
            let c = &mut self.containers[id.as_usize()];
            if grant.granted <= 0.0 {
                continue;
            }
            cpu_used[i] = grant.granted;
            if c.spec().antagonist {
                c.cpu_used_total += grant.granted;
                continue;
            }
            let base = (c.spec().base_cpu.get() * dt_secs).min(grant.granted);
            let mut budget = grant.granted - base;
            c.cpu_used_total += grant.granted;
            // Processor sharing among requests that still want CPU:
            // round-robin equal split, honouring each request's per-tick
            // single-thread bound.
            let mut wanting: Vec<usize> = (0..c.in_flight.len())
                .filter(|&r| c.in_flight[r].wants_cpu())
                .collect();
            let thread_budget = dt_secs / slowdowns[i];
            let mut rounds = 0;
            while budget > 1e-12 && !wanting.is_empty() && rounds < 32 {
                rounds += 1;
                let share = budget / wanting.len() as f64;
                let mut still = Vec::with_capacity(wanting.len());
                for &r in &wanting {
                    let inflight = &mut c.in_flight[r];
                    let need = inflight.cpu_remaining.min(thread_budget);
                    let take = share.min(need);
                    inflight.cpu_remaining = (inflight.cpu_remaining - take).max(0.0);
                    budget -= take;
                    if inflight.wants_cpu() && take >= need - 1e-12 {
                        // hit its single-thread (stall-limited) bound
                    } else if inflight.wants_cpu() {
                        still.push(r);
                    }
                }
                if still.len() == wanting.len() {
                    break;
                }
                wanting = still;
            }
        }

        // --- Network demands ----------------------------------------------
        let mut net_demands: Vec<NetDemand> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let c = &self.containers[id.as_usize()];
            let (demand, flows) = if !c.live(now) {
                (0.0, 0)
            } else if c.spec().antagonist {
                if c.spec().net_request.get() > 0.0 {
                    // A stress container opens a handful of bulk streams.
                    (node_spec.nic.get() * dt_secs, 4)
                } else {
                    (0.0, 0)
                }
            } else {
                let wanting = c.in_flight.iter().filter(|r| r.wants_net());
                let (sum, count) =
                    wanting.fold((0.0, 0usize), |(s, n), r| (s + r.megabits_remaining, n + 1));
                let flows = match c.spec().net_flow_pool {
                    Some(pool) => count.min(pool.max(1)),
                    None => count,
                };
                (sum, flows)
            };
            let mut nd =
                NetDemand::new(id, demand, c.spec().net_request.get()).with_flows(flows.max(1));
            if let Some(cap) = c.spec().net_cap {
                nd = nd.with_tc_cap(cap, dt_secs);
            }
            net_demands.push(nd);
        }
        let net_grants = self
            .net_alloc
            .allocate(node_spec.nic, dt_secs, &net_demands);

        // --- Apply network progress -----------------------------------------
        let mut net_sent: Vec<f64> = vec![0.0; ids.len()];
        for (i, grant) in net_grants.iter().enumerate() {
            let id = ids[i];
            let c = &mut self.containers[id.as_usize()];
            if grant.megabits <= 0.0 {
                continue;
            }
            net_sent[i] = grant.megabits;
            c.megabits_sent_total += grant.megabits;
            if c.spec().antagonist {
                continue;
            }
            let mut budget = grant.megabits;
            let mut wanting: Vec<usize> = (0..c.in_flight.len())
                .filter(|&r| c.in_flight[r].wants_net())
                .collect();
            let mut rounds = 0;
            while budget > 1e-9 && !wanting.is_empty() && rounds < 32 {
                rounds += 1;
                let share = budget / wanting.len() as f64;
                let mut still = Vec::with_capacity(wanting.len());
                for &r in &wanting {
                    let inflight = &mut c.in_flight[r];
                    let take = share.min(inflight.megabits_remaining);
                    inflight.megabits_remaining -= take;
                    budget -= take;
                    if inflight.wants_net() {
                        still.push(r);
                    }
                }
                if still.len() == wanting.len() {
                    break;
                }
                wanting = still;
            }
        }

        // --- Disk traffic ----------------------------------------------------
        // Disk bandwidth is a per-node pool shared max-min fairly among
        // containers with outstanding disk traffic (equal weights — the
        // kernel's block-layer fairness), reusing the water-filling
        // allocator. This is the paper's named future-work resource type.
        let mut disk_demands: Vec<CpuDemand> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let c = &self.containers[id.as_usize()];
            let demand = if !c.live(now) || c.spec().antagonist {
                0.0
            } else {
                c.in_flight
                    .iter()
                    .filter(|r| r.wants_disk())
                    .map(|r| r.disk_remaining)
                    .sum()
            };
            disk_demands.push(CpuDemand::new(id, demand, 1.0));
        }
        let disk_capacity = node_spec.disk.get().max(0.0) * dt_secs;
        let disk_grants = CpuAllocator::allocate(disk_capacity, &disk_demands);
        let mut disk_done: Vec<f64> = vec![0.0; ids.len()];
        for (i, grant) in disk_grants.iter().enumerate() {
            let id = ids[i];
            let c = &mut self.containers[id.as_usize()];
            if grant.granted <= 0.0 {
                continue;
            }
            disk_done[i] = grant.granted;
            let mut budget = grant.granted;
            let mut wanting: Vec<usize> = (0..c.in_flight.len())
                .filter(|&r| c.in_flight[r].wants_disk())
                .collect();
            let mut rounds = 0;
            while budget > 1e-9 && !wanting.is_empty() && rounds < 32 {
                rounds += 1;
                let share = budget / wanting.len() as f64;
                let mut still = Vec::with_capacity(wanting.len());
                for &r in &wanting {
                    let inflight = &mut c.in_flight[r];
                    let take = share.min(inflight.disk_remaining);
                    inflight.disk_remaining -= take;
                    budget -= take;
                    if inflight.wants_disk() {
                        still.push(r);
                    }
                }
                if still.len() == wanting.len() {
                    break;
                }
                wanting = still;
            }
        }

        // --- Completions, timeouts, stats ------------------------------------
        /// Time constant of the working-set throughput average (seconds).
        const THROUGHPUT_TAU_SECS: f64 = 20.0;
        for (i, &id) in ids.iter().enumerate() {
            let fanout = {
                let c = &self.containers[id.as_usize()];
                let replicas = replica_counts.get(&c.service()).copied().unwrap_or(1);
                // Stateless fan-out (log) plus, for stateful services,
                // a linear state-synchronization cost per extra replica.
                self.config.overheads.fanout_latency_secs(replicas)
                    + c.spec().coordination_secs * replicas.saturating_sub(1) as f64
            };
            let c = &mut self.containers[id.as_usize()];
            let mut completed_this_tick = 0usize;
            let mut r = 0;
            while r < c.in_flight.len() {
                let done = c.in_flight[r].is_done();
                let timed_out = !done && c.in_flight[r].request.deadline() <= end;
                if done {
                    completed_this_tick += 1;
                    let inflight = c.in_flight.swap_remove(r);
                    let finished = end + SimDuration::from_secs(fanout);
                    report.completed.push(CompletedRequest {
                        id: inflight.id,
                        service: inflight.request.service,
                        container: id,
                        arrival: inflight.request.arrival,
                        finished,
                        response_time: finished.saturating_since(inflight.request.arrival),
                    });
                } else if timed_out {
                    let inflight = c.in_flight.swap_remove(r);
                    report.failed.push(FailedRequest {
                        id: inflight.id,
                        service: inflight.request.service,
                        container: Some(id),
                        arrival: inflight.request.arrival,
                        failed_at: end,
                        kind: FailureKind::Connection,
                    });
                } else {
                    r += 1;
                }
            }
            c.record_throughput(completed_this_tick, dt_secs, THROUGHPUT_TAU_SECS);
            let resident = c.resident_mem();
            let in_flight = c.in_flight.len();
            self.windows[id.as_usize()].record_tick(
                dt_secs,
                cpu_used[i],
                net_sent[i],
                disk_done[i],
                resident,
                in_flight,
                swapping[i],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mbps;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn ready_spec(svc: u32) -> ContainerSpec {
        ContainerSpec::new(ServiceId::new(svc)).with_startup_secs(0.0)
    }

    fn run_until_drained(
        cluster: &mut Cluster,
        start: SimTime,
        max_secs: f64,
    ) -> (Vec<CompletedRequest>, Vec<FailedRequest>) {
        let mut completed = Vec::new();
        let mut failed = Vec::new();
        let dt = SimDuration::from_millis(100);
        let mut now = start;
        let horizon = start + SimDuration::from_secs(max_secs);
        while now < horizon {
            let rep = cluster.advance(now, dt);
            completed.extend(rep.completed);
            failed.extend(rep.failed);
            now += dt;
            if cluster.containers().all(|c| c.in_flight_count() == 0) {
                break;
            }
        }
        (completed, failed)
    }

    #[test]
    fn single_cpu_request_completes_in_expected_time() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                node,
                ready_spec(0).with_cpu_request(Cores(1.0)),
                SimTime::ZERO,
            )
            .unwrap();
        let req = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.45);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, failed) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(failed.len(), 0);
        assert_eq!(completed.len(), 1);
        // 0.45 core-seconds on an uncontended node, single-thread bound:
        // needs 5 ticks of 100 ms -> finishes at 0.5 s.
        let rt = completed[0].response_time.as_secs();
        assert!((0.45..0.65).contains(&rt), "response time {rt}");
    }

    #[test]
    fn contention_with_antagonist_slows_service() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small().with_cores(Cores(1.0)));
        let ctr = cl
            .start_container(
                node,
                ready_spec(0).with_cpu_request(Cores(1.0)),
                SimTime::ZERO,
            )
            .unwrap();
        let _hog = cl
            .start_container(
                node,
                ready_spec(9).with_cpu_request(Cores(1.0)).antagonist(),
                SimTime::ZERO,
            )
            .unwrap();
        let req = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.2);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(completed.len(), 1);
        // Equal shares halve throughput; contention adds ~17% more.
        let rt = completed[0].response_time.as_secs();
        assert!(rt > 0.4, "expected >2x slowdown, got {rt}");
    }

    #[test]
    fn removal_aborts_in_flight_requests() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let failures = cl.remove_container(ctr, SimTime::from_secs(1.0)).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FailureKind::Removal);
        // Second removal errors.
        assert!(cl.remove_container(ctr, SimTime::from_secs(1.0)).is_err());
        // Node no longer lists it, service has no replicas.
        assert!(cl.service_replicas(ServiceId::new(0)).is_empty());
    }

    #[test]
    fn starting_containers_reject_requests() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                node,
                ContainerSpec::new(ServiceId::new(0)).with_startup_secs(5.0),
                SimTime::ZERO,
            )
            .unwrap();
        let req = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.1);
        assert_eq!(
            cl.admit_request(ctr, req.clone(), SimTime::from_secs(1.0)),
            Err(ClusterError::NotAccepting(ctr))
        );
        assert!(cl.admit_request(ctr, req, SimTime::from_secs(5.0)).is_ok());
    }

    #[test]
    fn queue_cap_produces_queue_full() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0).with_queue_cap(2), SimTime::ZERO)
            .unwrap();
        let mk = || Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 10.0);
        assert!(cl.admit_request(ctr, mk(), SimTime::ZERO).is_ok());
        assert!(cl.admit_request(ctr, mk(), SimTime::ZERO).is_ok());
        assert_eq!(
            cl.admit_request(ctr, mk(), SimTime::ZERO),
            Err(ClusterError::QueueFull(ctr))
        );
    }

    #[test]
    fn timeouts_become_connection_failures() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small().with_cores(Cores(0.1)));
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        let req = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 50.0)
            .with_timeout(SimDuration::from_secs(1.0));
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, failed) = run_until_drained(&mut cl, SimTime::ZERO, 5.0);
        assert!(completed.is_empty());
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].kind, FailureKind::Connection);
    }

    #[test]
    fn swapping_slows_progress_dramatically() {
        let run = |mem_limit: f64| -> f64 {
            let mut cl = cluster();
            let node = cl.add_node(NodeSpec::uniform_worker());
            let ctr = cl
                .start_container(
                    node,
                    ready_spec(0)
                        .with_cpu_request(Cores(4.0))
                        .with_mem_limit(MemMb(mem_limit))
                        .with_base_overhead(Cores(0.0), MemMb(64.0)),
                    SimTime::ZERO,
                )
                .unwrap();
            // 200 MB in-flight footprint.
            let req = Request::new(ServiceId::new(0), SimTime::ZERO, 0.5, MemMb(200.0), 0.0);
            cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
            let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 60.0);
            completed[0].response_time.as_secs()
        };
        let fast = run(512.0); // no swap
        let slow = run(128.0); // 136/264 swapped
        assert!(
            slow > fast * 5.0,
            "swap should dominate: no-swap {fast}s vs swap {slow}s"
        );
    }

    #[test]
    fn network_request_completes_at_nic_rate() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small().with_nic(Mbps(100.0)));
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        // 50 megabits at 100 Mb/s -> 0.5 s.
        let req = Request::net_bound(ServiceId::new(0), SimTime::ZERO, 50.0);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(completed.len(), 1);
        let rt = completed[0].response_time.as_secs();
        assert!((0.5..0.8).contains(&rt), "response time {rt}");
    }

    #[test]
    fn tc_cap_throttles_egress() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small().with_nic(Mbps(100.0)));
        let ctr = cl
            .start_container(node, ready_spec(0).with_net_cap(Mbps(10.0)), SimTime::ZERO)
            .unwrap();
        let req = Request::net_bound(ServiceId::new(0), SimTime::ZERO, 10.0);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        let rt = completed[0].response_time.as_secs();
        assert!(
            rt >= 1.0,
            "capped at 10 Mb/s, 10 Mb should take ≥1 s, got {rt}"
        );
    }

    #[test]
    fn disk_request_completes_at_disk_rate() {
        let mut cl = cluster();
        // 300 Mb/s disks (NodeSpec::small): 60 megabits -> ~0.2 s.
        let node = cl.add_node(NodeSpec::small());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        let req = Request::disk_bound(ServiceId::new(0), SimTime::ZERO, 60.0);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(completed.len(), 1);
        let rt = completed[0].response_time.as_secs();
        assert!((0.2..0.5).contains(&rt), "response time {rt}");
        // Disk usage shows up in the stats window.
        let usage = cl.node_usage_and_reset(node).unwrap();
        assert!(usage.containers[0].disk_used.get() > 0.0);
    }

    #[test]
    fn disk_pool_is_shared_fairly() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small()); // 300 Mb/s disk
        let a = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        let b = cl
            .start_container(node, ready_spec(1), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            a,
            Request::disk_bound(ServiceId::new(0), SimTime::ZERO, 150.0),
            SimTime::ZERO,
        )
        .unwrap();
        cl.admit_request(
            b,
            Request::disk_bound(ServiceId::new(1), SimTime::ZERO, 150.0),
            SimTime::ZERO,
        )
        .unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(completed.len(), 2);
        // Each got ~half the pool: 150 Mb at 150 Mb/s -> ~1 s each.
        for done in &completed {
            let rt = done.response_time.as_secs();
            assert!((0.9..1.3).contains(&rt), "response time {rt}");
        }
    }

    #[test]
    fn docker_update_changes_shares_live() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.update_container(ctr, Cores(2.0), MemMb(1024.0)).unwrap();
        let c = cl.container(ctr).unwrap();
        assert_eq!(c.spec().cpu_request, Cores(2.0));
        assert_eq!(c.spec().mem_limit, MemMb(1024.0));
        assert!(cl
            .update_container(ContainerId::new(99), Cores(1.0), MemMb(1.0))
            .is_err());
    }

    #[test]
    fn free_resources_subtract_live_containers() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let (cpu0, mem0) = cl.free_resources(node).unwrap();
        assert_eq!(cpu0, Cores(4.0));
        assert_eq!(mem0, MemMb(8192.0));
        let ctr = cl
            .start_container(
                node,
                ready_spec(0)
                    .with_cpu_request(Cores(1.5))
                    .with_mem_limit(MemMb(512.0)),
                SimTime::ZERO,
            )
            .unwrap();
        let (cpu1, mem1) = cl.free_resources(node).unwrap();
        assert_eq!(cpu1, Cores(2.5));
        assert_eq!(mem1, MemMb(7680.0));
        cl.remove_container(ctr, SimTime::ZERO).unwrap();
        let (cpu2, _) = cl.free_resources(node).unwrap();
        assert_eq!(cpu2, Cores(4.0));
    }

    #[test]
    fn usage_windows_report_cpu_and_reset() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                node,
                ready_spec(0).with_cpu_request(Cores(1.0)),
                SimTime::ZERO,
            )
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            cl.advance(now, dt);
            now += dt;
        }
        let usage = cl.node_usage_and_reset(node).unwrap();
        assert_eq!(usage.containers.len(), 1);
        // One single-threaded request on an idle 4-core box: ~1 core.
        let cpu = usage.containers[0].cpu_used.get();
        assert!((0.9..=1.1).contains(&cpu), "cpu {cpu}");
        // Window reset: a fresh snapshot shows zero rates.
        let again = cl.node_usage_and_reset(node).unwrap();
        assert_eq!(again.containers[0].cpu_used, Cores::ZERO);
    }

    #[test]
    fn service_replicas_excludes_antagonists_and_other_services() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let a = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        let _b = cl
            .start_container(node, ready_spec(1), SimTime::ZERO)
            .unwrap();
        let _hog = cl
            .start_container(node, ready_spec(0).antagonist(), SimTime::ZERO)
            .unwrap();
        assert_eq!(cl.service_replicas(ServiceId::new(0)), vec![a]);
    }

    #[test]
    fn advance_with_zero_dt_is_a_no_op() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 1.0),
            SimTime::ZERO,
        )
        .unwrap();
        let rep = cl.advance(SimTime::ZERO, SimDuration::ZERO);
        assert!(rep.completed.is_empty() && rep.failed.is_empty());
        assert_eq!(cl.container(ctr).unwrap().in_flight_count(), 1);
    }

    #[test]
    fn unknown_ids_error() {
        let mut cl = cluster();
        assert!(cl.free_resources(NodeId::new(0)).is_err());
        assert!(cl.node_usage_and_reset(NodeId::new(0)).is_err());
        assert!(cl
            .start_container(
                NodeId::new(0),
                ContainerSpec::new(ServiceId::new(0)),
                SimTime::ZERO
            )
            .is_err());
        assert!(cl
            .admit_request(
                ContainerId::new(0),
                Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.1),
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn stateful_services_pay_per_replica_coordination() {
        let run = |replicas: usize, coordination: f64| -> f64 {
            let mut cl = cluster();
            let mut ctrs = Vec::new();
            for _ in 0..replicas {
                let node = cl.add_node(NodeSpec::uniform_worker());
                let ctr = cl
                    .start_container(
                        node,
                        ready_spec(0).with_coordination_secs(coordination),
                        SimTime::ZERO,
                    )
                    .unwrap();
                ctrs.push(ctr);
            }
            cl.admit_request(
                ctrs[0],
                Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.05),
                SimTime::ZERO,
            )
            .unwrap();
            let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
            completed[0].response_time.as_secs()
        };
        let single = run(1, 0.05);
        let quad_stateless = run(4, 0.0);
        let quad_stateful = run(4, 0.05);
        // 3 extra replicas at 50 ms sync each = +150 ms over stateless.
        assert!((quad_stateful - quad_stateless - 0.15).abs() < 1e-6);
        assert!(single < quad_stateful);
    }

    #[test]
    fn oversubscription_shows_negative_free_resources() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small()); // 2 cores
        for svc in 0..3 {
            cl.start_container(
                node,
                ready_spec(svc).with_cpu_request(Cores(1.0)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let (cpu, _) = cl.free_resources(node).unwrap();
        assert!(cpu.get() < 0.0, "docker-style oversubscription: {cpu}");
    }

    #[test]
    fn net_cap_update_errors_on_removed_container() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.update_net_cap(ctr, Some(Mbps(10.0))).unwrap();
        cl.remove_container(ctr, SimTime::ZERO).unwrap();
        assert!(cl.update_net_cap(ctr, None).is_err());
        assert!(cl.update_container(ctr, Cores(1.0), MemMb(1.0)).is_err());
    }

    #[test]
    fn fanout_latency_grows_with_replica_count() {
        let run = |replicas: usize| -> f64 {
            let mut cl = cluster();
            let mut first = None;
            for _ in 0..replicas {
                let node = cl.add_node(NodeSpec::uniform_worker());
                let ctr = cl
                    .start_container(node, ready_spec(0), SimTime::ZERO)
                    .unwrap();
                first.get_or_insert(ctr);
            }
            cl.admit_request(
                first.unwrap(),
                Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.05),
                SimTime::ZERO,
            )
            .unwrap();
            let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
            completed[0].response_time.as_secs()
        };
        // Same request, same work; only the replica count (and thus the
        // distribution/fan-out latency) differs.
        assert!(run(8) > run(1));
    }

    #[test]
    fn antagonist_consumes_cpu_in_stats() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let hog = cl
            .start_container(
                node,
                ready_spec(9).with_cpu_request(Cores(4.0)).antagonist(),
                SimTime::ZERO,
            )
            .unwrap();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            cl.advance(now, dt);
            now += dt;
        }
        let usage = cl.container_usage(hog).unwrap();
        assert!(usage.cpu_used.get() > 3.5, "hog used {:?}", usage.cpu_used);
        // Antagonists never hold requests.
        assert_eq!(usage.in_flight, 0);
    }

    #[test]
    fn throughput_ewma_tracks_served_rate() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                node,
                ready_spec(0).with_mem_per_rps(MemMb(10.0)),
                SimTime::ZERO,
            )
            .unwrap();
        // Serve ~10 req/s of tiny requests for 60 s.
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for tick in 0..600 {
            if tick % 10 == 0 {
                cl.admit_request(
                    ctr,
                    Request::new(ServiceId::new(0), now, 0.01, MemMb(1.0), 0.0),
                    now,
                )
                .unwrap();
            }
            cl.advance(now, dt);
            now += dt;
        }
        let c = cl.container(ctr).unwrap();
        assert!(
            (0.5..2.0).contains(&c.throughput_rps()),
            "ewma {:.2} should approximate 1 req/s",
            c.throughput_rps()
        );
        // The working set follows: base 64 + ~10 MB.
        let resident = c.resident_mem().get();
        assert!((70.0..85.0).contains(&resident), "resident {resident}");
    }

    #[test]
    fn decommission_removes_containers_and_rejects_future_use() {
        let mut cl = cluster();
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        let n1 = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(n0, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let failures = cl.decommission_node(n0, SimTime::from_secs(1.0)).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FailureKind::Removal);
        // The node is gone from every view.
        assert!(cl.node(n0).is_none());
        assert_eq!(cl.node_count(), 1);
        assert!(cl.free_resources(n0).is_err());
        assert!(cl
            .start_container(n0, ready_spec(1), SimTime::from_secs(2.0))
            .is_err());
        // Double decommission errors; other nodes unaffected.
        assert!(cl.decommission_node(n0, SimTime::from_secs(2.0)).is_err());
        assert!(cl
            .start_container(n1, ready_spec(1), SimTime::from_secs(2.0))
            .is_ok());
    }

    #[test]
    fn nodes_can_be_commissioned_at_runtime() {
        let mut cl = cluster();
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        assert_eq!(cl.node_count(), 1);
        // Simulate time passing, then grow the cluster.
        cl.advance(SimTime::ZERO, SimDuration::from_millis(100));
        let n1 = cl.add_node(NodeSpec::small());
        assert_eq!(cl.node_count(), 2);
        assert_ne!(n0, n1);
        let ctr = cl
            .start_container(n1, ready_spec(0), SimTime::from_secs(1.0))
            .unwrap();
        assert_eq!(cl.container(ctr).unwrap().node(), n1);
    }

    #[test]
    fn invalid_spec_rejected_at_start() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let bad = ContainerSpec::new(ServiceId::new(0)).with_cpu_request(Cores(-1.0));
        assert!(matches!(
            cl.start_container(node, bad, SimTime::ZERO),
            Err(ClusterError::InvalidSpec(_))
        ));
    }
}
