//! The cluster state machine: placement, `docker update`, admission, and
//! the per-tick fluid-flow advance.
//!
//! # Tick-engine architecture
//!
//! The hot loop is built around two properties:
//!
//! * **Allocation-free steady state.** All per-tick vectors (demands,
//!   grants, processor-sharing work lists, per-container usage samples)
//!   live in reusable [`TickScratch`] buffers owned by the cluster; the
//!   per-service replica table is a flat `Vec<u32>` indexed by service id;
//!   nodes that are fully idle take a closed-form fast path that skips the
//!   allocators entirely.
//! * **Deterministic node parallelism.** Container state is partitioned
//!   per node ([`Node`] owns its containers), so a tick can fan the
//!   per-node work out across threads. [`Cluster::set_parallelism`] spawns
//!   a persistent [`WorkerPool`] (`hyscale-exec`): workers park between
//!   ticks and are woken per tick with an epoch bump — no per-tick thread
//!   creation. Nodes are cut into contiguous, container-weighted ranges
//!   (`partition::weighted_partition`); each worker owns one range plus
//!   its own scratch, and worker outputs are merged in partition order —
//!   which is node order — so results are bit-identical to the serial
//!   engine at any worker count.

use std::collections::BTreeSet;
use std::ops::Range;

use hyscale_exec::WorkerPool;
use hyscale_sim::{SimDuration, SimTime, SnapReader, SnapWriter, SnapshotError};

use crate::cohort::Cohort;
use crate::container::{Container, ContainerSpec, ContainerState};
use crate::cpu::{CpuAllocator, CpuDemand, CpuGrant};
use crate::error::ClusterError;
use crate::ids::{ContainerId, IdAllocator, NodeId, RequestId, ServiceId};
use crate::memory::MemoryModel;
use crate::network::{NetAllocator, NetDemand, NetGrant, NetScratch};
use crate::node::{Node, NodeSpec};
use crate::request::{CompletedRequest, FailedRequest, FailureKind, InFlight, Request};
use crate::stats::{ContainerUsage, NodeUsage};
use crate::{Cores, MemMb};

/// Global configuration of the cluster model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Empirical overhead coefficients (Sec. III calibration).
    pub overheads: OverheadModel,
    /// Tick only nodes with runnable work (the active set), applying the
    /// closed-form idle physics to parked nodes lazily when they are next
    /// observed. Semantically invisible — state is bit-identical to the
    /// eager full-scan engine once a node is caught up — and on by
    /// default; the differential tests turn it off to drive the
    /// reference engine.
    pub active_set: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            overheads: OverheadModel::default(),
            active_set: true,
        }
    }
}

/// Below this much total tick weight per worker the pool handoff costs
/// more than the tick itself; `advance` then runs the tick on the calling
/// thread (see [`Cluster::serial_fallback_ticks`]).
const SERIAL_FALLBACK_WEIGHT: u64 = 1024;

use crate::overhead::OverheadModel;

/// What happened during one tick of the fluid model.
///
/// Each record carries a `count`: individually-admitted requests settle
/// as `count == 1` records, while a flow cohort settles as one record for
/// all of its members. Sum the counts (see
/// [`TickReport::completed_members`]) rather than taking `len()` when
/// totalling requests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    /// Requests that finished during the tick.
    pub completed: Vec<CompletedRequest>,
    /// Requests that failed during the tick (timeouts).
    pub failed: Vec<FailedRequest>,
}

impl TickReport {
    /// Total completed requests, counting cohort members.
    pub fn completed_members(&self) -> u64 {
        self.completed.iter().map(|c| c.count).sum()
    }

    /// Total failed requests, counting cohort members.
    pub fn failed_members(&self) -> u64 {
        self.failed.iter().map(|f| f.count).sum()
    }
}

/// Time constant of the working-set throughput average (seconds).
const THROUGHPUT_TAU_SECS: f64 = 20.0;

/// Where a container lives: which entry of `Cluster::nodes` hosts it and
/// which slot of that node's container storage it occupies. Indexed by
/// [`ContainerId`].
#[derive(Debug, Clone, Copy)]
struct ContainerLoc {
    node: u32,
    slot: u32,
}

/// Reusable per-worker buffers for [`advance_node`]: every per-tick vector
/// the hot loop needs, allocated once and recycled each tick so the steady
/// state performs no heap allocation.
#[derive(Debug, Clone, Default)]
struct TickScratch {
    /// Slot indices of the current node's live containers, in placement
    /// order (the same order the old live-id list had).
    live: Vec<usize>,
    slowdowns: Vec<f64>,
    swapping: Vec<bool>,
    cpu_demands: Vec<CpuDemand>,
    cpu_grants: Vec<CpuGrant>,
    net_demands: Vec<NetDemand>,
    net_grants: Vec<NetGrant>,
    disk_demands: Vec<CpuDemand>,
    disk_grants: Vec<CpuGrant>,
    /// Processor-sharing work lists (request indices wanting CPU, network
    /// and disk), stored flat with per-container ranges in
    /// `wanting_ranges` and compacted in place between PS rounds.
    cpu_wanting: Vec<u32>,
    net_wanting: Vec<u32>,
    disk_wanting: Vec<u32>,
    /// `[cpu, net, disk]` start offsets of each live container's slice of
    /// the wanting lists (the end is the next container's start).
    wanting_ranges: Vec<[u32; 3]>,
    /// Cohort-slot work lists, the SoA mirror of the per-request wanting
    /// lists above: entries index into the container's `CohortTable`
    /// columns.
    cohort_cpu_wanting: Vec<u32>,
    cohort_net_wanting: Vec<u32>,
    cohort_disk_wanting: Vec<u32>,
    /// `[cpu, net, disk]` start offsets of each live container's slice of
    /// the cohort wanting lists.
    cohort_ranges: Vec<[u32; 3]>,
    /// Water-filling work list shared by the CPU and disk allocators.
    outstanding: Vec<(usize, f64)>,
    net_scratch: NetScratch,
    /// Completions staged per worker, merged into the report in node order.
    completed: Vec<CompletedRequest>,
    /// Failures staged per worker, merged into the report in node order.
    failed: Vec<FailedRequest>,
}

/// Immutable per-tick inputs shared (read-only) by every node worker.
struct TickCtx<'a> {
    config: &'a ClusterConfig,
    mem_model: &'a MemoryModel,
    net_alloc: &'a NetAllocator,
    /// Live non-antagonist replicas per service, indexed by service id.
    /// Services beyond the table (or with a zero entry) count as 1, the
    /// same default the old per-tick hash map produced.
    replica_counts: &'a [u32],
    now: SimTime,
    end: SimTime,
    dt_secs: f64,
    /// Test hook ([`Cluster::inject_tick_panic`]): node whose advance
    /// panics. `None` in production.
    poison: Option<NodeId>,
}

/// Ticks one node, honouring the panic-injection test hook. This is the
/// unit of work a pool job executes per node. Returns `true` when the
/// node is park-eligible: the tick took the idle closed form (or had no
/// live slots) and every slot is past its startup, so every future tick
/// is the same closed form until something external changes.
fn tick_node(node: &mut Node, ctx: &TickCtx<'_>, scratch: &mut TickScratch) -> bool {
    if ctx.poison == Some(node.id()) {
        panic!("injected tick panic on node {:?}", node.id());
    }
    advance_node(node, ctx, scratch)
}

/// The simulated cluster: nodes, containers, and in-flight work.
///
/// All mutation goes through explicit operations that mirror what the
/// paper's platform can do to a real Docker cluster:
///
/// * [`Cluster::start_container`] — `docker run` (horizontal scale-out),
/// * [`Cluster::remove_container`] — `docker rm -f` (scale-in; aborts
///   in-flight work as *removal failures*),
/// * [`Cluster::update_container`] — `docker update` (vertical scaling),
/// * [`Cluster::admit_request`] — a load balancer handing a request to a
///   replica,
/// * [`Cluster::advance`] — physics: one tick of CPU/memory/network flow.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Node>,
    /// Container id → (node, slot) location table. Removed containers keep
    /// their entry (their slot becomes a tombstone) so id lookups keep
    /// working after `docker rm`.
    locs: Vec<ContainerLoc>,
    node_ids: IdAllocator,
    container_ids: IdAllocator,
    request_ids: IdAllocator,
    mem_model: MemoryModel,
    net_alloc: NetAllocator,
    /// How many OS threads a tick may use (1 = serial).
    parallelism: usize,
    /// One scratch buffer per worker.
    scratch: Vec<TickScratch>,
    /// Reused per-tick replica table, indexed by service id.
    replica_counts: Vec<u32>,
    /// Reused per-tick node weights (1 + live containers + in-flight
    /// requests) feeding the container-weighted partition.
    node_weights: Vec<u64>,
    /// Reused per-tick contiguous node ranges, one per woken worker.
    partitions: Vec<Range<usize>>,
    /// Persistent tick workers (`parallelism - 1` threads), created by
    /// [`Cluster::set_parallelism`] and joined on drop. `None` while
    /// serial — and on clones, which respawn lazily on their first
    /// parallel tick.
    pool: Option<WorkerPool>,
    /// Test hook: node whose advance panics (pool panic-propagation
    /// coverage). Never set outside tests.
    poison_node: Option<NodeId>,
    // --- Active-set engine (`config.active_set`) ----------------------
    /// Dense membership bitmap: `node_active[i]` ⇔ node `i` is visited by
    /// the next tick. Nodes not in the set are *parked*: provably idle,
    /// with their per-tick idle physics deferred until reactivation.
    node_active: Vec<bool>,
    /// Compact sorted list of active node indices (the iteration order of
    /// a tick, which is node order — determinism depends on it).
    active_list: Vec<u32>,
    /// Nodes activated since the last tick, merged into `active_list` at
    /// the top of `advance_into`.
    newly_active: Vec<u32>,
    /// Tick sequence number at which each node parked; pending idle ticks
    /// for a parked node = `tick_seq - park_seq[i]`.
    park_seq: Vec<u64>,
    /// Ticks advanced so far (each `advance` with `dt > 0` is one).
    tick_seq: u64,
    /// Tick duration of the current parked span. Lazy replay is exact
    /// only while `dt` is constant, so a duration change flushes every
    /// parked node first.
    span_dt: SimDuration,
    /// Per-tick park verdicts, aligned with `active_list` (scratch).
    park_flags: Vec<bool>,
    // --- Incrementally-maintained routing/counting state ---------------
    /// Per-service order index over live non-antagonist replicas, keyed
    /// `(in-flight members, container id)` — the exact candidate order
    /// the balancer's scan-and-sort produced, maintained on admission,
    /// settlement, and removal so routing is O(answer).
    route_index: Vec<BTreeSet<(u64, u32)>>,
    /// Last member count published to `route_index`, per container id.
    index_members: Vec<u64>,
    /// Cluster-wide in-flight members (requests + cohort members).
    in_flight_total: u64,
    /// Ticks the parallel engine ran on the calling thread because the
    /// active weight was below [`SERIAL_FALLBACK_WEIGHT`] per worker.
    serial_fallback_ticks: u64,
}

impl Clone for Cluster {
    fn clone(&self) -> Self {
        Cluster {
            config: self.config,
            nodes: self.nodes.clone(),
            locs: self.locs.clone(),
            node_ids: self.node_ids.clone(),
            container_ids: self.container_ids.clone(),
            request_ids: self.request_ids.clone(),
            mem_model: self.mem_model,
            net_alloc: self.net_alloc,
            parallelism: self.parallelism,
            scratch: self.scratch.clone(),
            replica_counts: self.replica_counts.clone(),
            node_weights: self.node_weights.clone(),
            partitions: self.partitions.clone(),
            // Worker threads are not cloneable; the clone spawns its own
            // pool on its first parallel `advance`.
            pool: None,
            poison_node: self.poison_node,
            node_active: self.node_active.clone(),
            active_list: self.active_list.clone(),
            newly_active: self.newly_active.clone(),
            park_seq: self.park_seq.clone(),
            tick_seq: self.tick_seq,
            span_dt: self.span_dt,
            park_flags: self.park_flags.clone(),
            route_index: self.route_index.clone(),
            index_members: self.index_members.clone(),
            in_flight_total: self.in_flight_total,
            serial_fallback_ticks: self.serial_fallback_ticks,
        }
    }
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(config: ClusterConfig) -> Self {
        Cluster {
            mem_model: MemoryModel::new(config.overheads),
            net_alloc: NetAllocator::new(config.overheads),
            config,
            nodes: Vec::new(),
            locs: Vec::new(),
            node_ids: IdAllocator::default(),
            container_ids: IdAllocator::default(),
            request_ids: IdAllocator::default(),
            parallelism: 1,
            scratch: vec![TickScratch::default()],
            replica_counts: Vec::new(),
            node_weights: Vec::new(),
            partitions: Vec::new(),
            pool: None,
            poison_node: None,
            node_active: Vec::new(),
            active_list: Vec::new(),
            newly_active: Vec::new(),
            park_seq: Vec::new(),
            tick_seq: 0,
            span_dt: SimDuration::ZERO,
            park_flags: Vec::new(),
            route_index: Vec::new(),
            index_members: Vec::new(),
            in_flight_total: 0,
            serial_fallback_ticks: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Serializes the cluster's full mutable state: every node with its
    /// container slots (replica table, in-flight requests, `CohortTable`
    /// columns, usage accumulators), the container location table, and
    /// the three id-allocator cursors.
    ///
    /// Derived per-tick state (scratch buffers, partitions, replica
    /// counts) and the worker pool are *not* written: the pool respawns
    /// lazily on the first parallel `advance` after a restore, and the
    /// scratch is rebuilt every tick.
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        debug_assert!(
            !self.config.active_set
                || (0..self.nodes.len())
                    .all(|i| self.node_active[i] || self.park_seq[i] == self.tick_seq),
            "snapshot with pending lazy idle ticks; call flush_pending first"
        );
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            node.snapshot_write(w);
        }
        w.put_usize(self.locs.len());
        for loc in &self.locs {
            w.put_u32(loc.node);
            w.put_u32(loc.slot);
        }
        w.put_u64(self.node_ids.cursor());
        w.put_u64(self.container_ids.cursor());
        w.put_u64(self.request_ids.cursor());
    }

    /// Overlays state captured by [`Cluster::snapshot_write`] onto this
    /// cluster, replacing its nodes, location table, and id cursors.
    ///
    /// Call on a cluster built from the same configuration the snapshot
    /// was taken under (same overhead model, same parallelism setup);
    /// the worker pool is reconstructed lazily and need not exist yet.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt payload; the
    /// cluster is left untouched on error.
    pub fn snapshot_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_usize()?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(Node::snapshot_read(r)?);
        }
        let n = r.get_usize()?;
        let mut locs = Vec::with_capacity(n);
        for _ in 0..n {
            let node = r.get_u32()?;
            let slot = r.get_u32()?;
            locs.push(ContainerLoc { node, slot });
        }
        for loc in &locs {
            let Some(node) = nodes.get(loc.node as usize) else {
                return Err(SnapshotError::Corrupt(format!(
                    "container location points at missing node {}",
                    loc.node
                )));
            };
            if loc.slot as usize >= node.slots.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "container location points at missing slot {} of node {}",
                    loc.slot, loc.node
                )));
            }
        }
        let node_cursor = r.get_u64()?;
        let container_cursor = r.get_u64()?;
        let request_cursor = r.get_u64()?;
        if locs.len() as u64 != container_cursor {
            return Err(SnapshotError::Corrupt(format!(
                "{} container locations but container cursor {container_cursor}",
                locs.len()
            )));
        }
        self.nodes = nodes;
        self.locs = locs;
        self.node_ids.set_cursor(node_cursor);
        self.container_ids.set_cursor(container_cursor);
        self.request_ids.set_cursor(request_cursor);
        self.rebuild_derived();
        Ok(())
    }

    /// Rebuilds every incrementally-maintained structure from the ground
    /// truth (node slots): the per-service replica counts, the in-flight
    /// total, the routing index, and the active set. Everything restores
    /// *active* — a parked node and a caught-up active node are
    /// byte-identical, and the first tick re-parks whatever is idle.
    fn rebuild_derived(&mut self) {
        self.replica_counts.clear();
        self.route_index.clear();
        self.index_members.clear();
        self.index_members.resize(self.locs.len(), 0);
        self.in_flight_total = 0;
        for node in &self.nodes {
            for c in &node.slots {
                if c.state() == ContainerState::Removed {
                    continue;
                }
                let members = c.in_flight_members();
                self.in_flight_total += members;
                if c.spec().antagonist {
                    continue;
                }
                let svc = c.service().as_usize();
                if svc >= self.replica_counts.len() {
                    self.replica_counts.resize(svc + 1, 0);
                }
                self.replica_counts[svc] += 1;
                if svc >= self.route_index.len() {
                    self.route_index.resize_with(svc + 1, BTreeSet::new);
                }
                self.route_index[svc].insert((members, c.id().index()));
                self.index_members[c.id().as_usize()] = members;
            }
        }
        self.tick_seq = 0;
        self.span_dt = SimDuration::ZERO;
        self.node_active.clear();
        self.node_active.resize(self.nodes.len(), true);
        self.park_seq.clear();
        self.park_seq.resize(self.nodes.len(), 0);
        self.active_list.clear();
        self.active_list.extend(0..self.nodes.len() as u32);
        self.newly_active.clear();
    }

    /// Sets how many OS threads [`Cluster::advance`] may use to tick nodes
    /// (clamped to at least 1; the default is 1, i.e. serial). Because
    /// nodes share no mutable state within a tick and worker outputs are
    /// merged in node order, results are bit-identical at any setting.
    ///
    /// Above 1 this spawns a persistent pool of `workers - 1` threads
    /// that park between ticks (the calling thread ticks the first
    /// partition itself); reconfiguring joins the old pool before the
    /// new one spawns, and dropping the cluster joins all workers.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
        self.scratch
            .resize_with(self.parallelism, TickScratch::default);
        let needed = self.parallelism - 1;
        let keep = matches!(&self.pool, Some(pool) if pool.threads() == needed);
        if !keep {
            // Drop first: the old pool's threads are joined before the
            // replacement spawns, so repeated reconfiguration can never
            // accumulate threads.
            self.pool = None;
            if needed > 0 {
                self.pool = Some(WorkerPool::new(needed));
            }
        }
    }

    /// Test hook: makes [`Cluster::advance`] panic when it reaches the
    /// given node, exercising the worker pool's panic propagation. Pass
    /// `None` to clear. Hidden from docs; never set in production code.
    #[doc(hidden)]
    pub fn inject_tick_panic(&mut self, node: Option<NodeId>) {
        self.poison_node = node;
    }

    /// The configured tick parallelism.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId::new(self.node_ids.next_u32());
        self.nodes.push(Node::new(id, spec));
        // New nodes start active (and up to date); the first tick parks
        // them if they are idle.
        self.node_active.push(true);
        self.park_seq.push(self.tick_seq);
        if self.config.active_set {
            self.newly_active.push(id.index());
        }
        id
    }

    /// Applies the idle-tick physics a parked node missed: `tick_seq -
    /// park_seq` repetitions of the closed-form idle fast path, replayed
    /// container-major (bit-identical to tick-major because idle slots
    /// share no state within a tick). A parked node is guaranteed idle —
    /// nothing in flight, no antagonist, every slot past its startup —
    /// and the span is dt-constant, so demands, grants, and the
    /// contention factor are constant across the span; only the
    /// throughput-EWMA decay and the usage window advance per tick.
    fn catch_up_node(&mut self, idx: usize) {
        let pending = self.tick_seq - self.park_seq[idx];
        self.park_seq[idx] = self.tick_seq;
        if pending == 0 {
            return;
        }
        let dt_secs = self.span_dt.as_secs();
        debug_assert!(dt_secs > 0.0, "parked span with zero dt");
        let node = &mut self.nodes[idx];
        let scratch = &mut self.scratch[0];
        scratch.live.clear();
        scratch.cpu_demands.clear();
        for (slot, c) in node.slots.iter().enumerate() {
            if c.state() == ContainerState::Removed {
                continue;
            }
            debug_assert!(c.in_flight.is_empty() && c.cohorts.is_empty());
            debug_assert!(!c.spec().antagonist);
            scratch.live.push(slot);
            scratch.cpu_demands.push(CpuDemand::new(
                c.id(),
                c.spec().base_cpu.get() * dt_secs,
                c.spec().cpu_request.get(),
            ));
        }
        if scratch.live.is_empty() {
            return;
        }
        let active = scratch
            .cpu_demands
            .iter()
            .filter(|d| d.demand > 1e-12)
            .count();
        let capacity =
            node.spec().cores.get() * dt_secs * self.config.overheads.cpu_contention_factor(active);
        // Feasibility held when the node parked and its inputs have not
        // changed since, so this cannot fail; bail rather than corrupt
        // state if it somehow does.
        if !idle_grants(capacity, &scratch.cpu_demands, &mut scratch.cpu_grants) {
            debug_assert!(false, "parked node lost round-1 feasibility");
            return;
        }
        for (i, &s) in scratch.live.iter().enumerate() {
            let c = &mut node.slots[s];
            let granted = scratch.cpu_grants[i].granted;
            for _ in 0..pending {
                // Pressure is sampled before the tick's EWMA decay, the
                // same order the eager engine's demand pass uses.
                let swapping = self
                    .mem_model
                    .pressure(c.resident_mem(), c.spec().mem_limit)
                    .is_swapping();
                let used = if granted > 0.0 {
                    c.cpu_used_total += granted;
                    granted
                } else {
                    0.0
                };
                c.record_throughput(0, dt_secs, THROUGHPUT_TAU_SECS);
                let resident = c.resident_mem_with(0.0);
                c.window
                    .record_tick(dt_secs, used, 0.0, 0.0, resident, 0, swapping);
            }
        }
    }

    /// Catches a parked node up and marks it active so the next tick
    /// visits it. Every mutation that can change a node's tick behaviour
    /// calls this *before* mutating, so the lazy replay always sees the
    /// state the missed ticks actually ran on. No-op for active nodes
    /// (they are always up to date) and when the engine is off.
    fn activate(&mut self, idx: usize) {
        if !self.config.active_set || self.node_active[idx] {
            return;
        }
        self.catch_up_node(idx);
        self.node_active[idx] = true;
        self.newly_active.push(idx as u32);
    }

    /// Activates the node hosting container `id` (no-op for unknown ids).
    fn activate_container_node(&mut self, id: ContainerId) {
        if let Some(loc) = self.locs.get(id.as_usize()) {
            let node = loc.node as usize;
            self.activate(node);
        }
    }

    /// Catches every parked node up to the present, applying all pending
    /// lazily-deferred idle ticks. Nodes stay parked. Call before reading
    /// per-container usage state wholesale (snapshots, monitor
    /// collection); cheap when nothing is pending, a no-op when the
    /// active-set engine is off.
    pub fn flush_pending(&mut self) {
        if !self.config.active_set {
            return;
        }
        for idx in 0..self.nodes.len() {
            if !self.node_active[idx] {
                self.catch_up_node(idx);
            }
        }
    }

    /// Node indices the next tick will visit, sorted (test hook for the
    /// active-set differential tests).
    #[doc(hidden)]
    pub fn active_node_indices(&self) -> Vec<u32> {
        let mut v = self.active_list.clone();
        v.extend(self.newly_active.iter().copied());
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Ticks the parallel engine ran on the calling thread because the
    /// active tick weight was too small to amortize the pool handoff
    /// (the tracking counter for the cohort-mode parallel regression).
    pub fn serial_fallback_ticks(&self) -> u64 {
        self.serial_fallback_ticks
    }

    /// Looks up a node. Decommissioned and crashed (offline) machines are
    /// unreachable and resolve to `None`.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes
            .get(id.as_usize())
            .filter(|n| !n.decommissioned() && !n.offline())
    }

    /// Decommissions a node (paper future work: "dynamic addition and
    /// removal of machines"). Every container on the node is removed;
    /// their in-flight requests are returned as removal failures. The
    /// node stops hosting, scheduling, and advertising resources.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] if the node does not exist
    /// or was already decommissioned.
    pub fn decommission_node(
        &mut self,
        id: NodeId,
        now: SimTime,
    ) -> Result<Vec<FailedRequest>, ClusterError> {
        if self.node(id).is_none() {
            return Err(ClusterError::UnknownNode(id));
        }
        let containers: Vec<ContainerId> = self.nodes[id.as_usize()].containers().to_vec();
        let mut failures = Vec::new();
        for ctr in containers {
            if let Ok(mut aborted) = self.remove_container(ctr, now) {
                failures.append(&mut aborted);
            }
        }
        self.nodes[id.as_usize()].mark_decommissioned();
        Ok(failures)
    }

    /// Iterates over all commissioned, reachable nodes (crashed machines
    /// are excluded until they reboot).
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| !n.decommissioned() && !n.offline())
    }

    /// Number of commissioned nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes().count()
    }

    /// Looks up a container (including removed ones).
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        let loc = self.locs.get(id.as_usize())?;
        self.nodes
            .get(loc.node as usize)?
            .slots
            .get(loc.slot as usize)
    }

    /// Iterates over containers that have not been removed, in creation
    /// order.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.locs
            .iter()
            .map(|loc| &self.nodes[loc.node as usize].slots[loc.slot as usize])
            .filter(|c| c.state() != ContainerState::Removed)
    }

    /// Live (not removed) replicas of a service, in creation order.
    pub fn service_replicas(&self, service: ServiceId) -> Vec<ContainerId> {
        self.containers()
            .filter(|c| c.service() == service && !c.spec().antagonist)
            .map(|c| c.id())
            .collect()
    }

    /// Least-loaded accepting replica of `service` via the incremental
    /// routing index: first accepting entry in `(in_flight, id)` order,
    /// which equals the minimum over accepting replicas of
    /// `(in_flight_members(), id)` — the exact tie-break the balancer's
    /// brute-force scan uses. O(answer) instead of O(replicas).
    pub fn route_least_loaded(&self, service: ServiceId, now: SimTime) -> Option<ContainerId> {
        let set = self.route_index.get(service.as_usize())?;
        for &(_, raw) in set {
            let id = ContainerId::new(raw);
            let Some(c) = self.container(id) else {
                continue;
            };
            if c.accepting(now) {
                return Some(id);
            }
        }
        None
    }

    /// Waterfills `count` cohort members over the accepting replicas of
    /// `service` in ascending `(in_flight, id)` order, honouring each
    /// replica's queue headroom. Appends `(replica, members)` pairs to
    /// `out` and returns the members that could not be placed. The
    /// visit order matches sorting `(in_flight, id, headroom)` — ids are
    /// unique, so headroom never participates in the tie-break.
    pub fn route_waterfill(
        &self,
        service: ServiceId,
        count: u64,
        now: SimTime,
        out: &mut Vec<(ContainerId, u64)>,
    ) -> u64 {
        let mut remaining = count;
        let Some(set) = self.route_index.get(service.as_usize()) else {
            return remaining;
        };
        for &(_, raw) in set {
            if remaining == 0 {
                break;
            }
            let id = ContainerId::new(raw);
            let Some(c) = self.container(id) else {
                continue;
            };
            let headroom = c.queue_headroom(now);
            if headroom == 0 {
                continue;
            }
            let take = remaining.min(headroom);
            out.push((id, take));
            remaining -= take;
        }
        remaining
    }

    /// Total in-flight member requests across the replicas of `service`,
    /// read straight off the incremental routing index (the same counts
    /// routing orders by). Drives the resilience layer's overload
    /// shedding watermark; O(replicas of the service).
    pub fn service_in_flight(&self, service: ServiceId) -> u64 {
        self.route_index
            .get(service.as_usize())
            .map_or(0, |set| set.iter().map(|&(members, _)| members).sum())
    }

    /// CPU and memory not yet promised to live containers on `node`
    /// (capacity minus the sum of requests/limits). This is the quantity
    /// nodes "advertise" to the Monitor for placement decisions.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for an invalid id.
    pub fn free_resources(&self, node: NodeId) -> Result<(Cores, MemMb), ClusterError> {
        let n = self.node(node).ok_or(ClusterError::UnknownNode(node))?;
        let mut cpu = n.spec().cores;
        let mut mem = n.spec().memory;
        for c in &n.slots {
            if c.state() != ContainerState::Removed {
                cpu -= c.spec().cpu_request;
                mem -= c.spec().mem_limit;
            }
        }
        Ok((cpu, mem))
    }

    /// Emits one [`hyscale_trace::EventKind::AllocatorPressure`] event per
    /// reachable node into `trace`: unpromised CPU/memory plus the live
    /// container count, in node order. Free when the sink is disabled.
    pub fn trace_pressure(&self, now: SimTime, trace: &mut hyscale_trace::TraceSink) {
        if !trace.is_enabled() {
            return;
        }
        for n in self.nodes() {
            let mut cpu = n.spec().cores;
            let mut mem = n.spec().memory;
            let mut live = 0u32;
            for c in &n.slots {
                if c.state() != ContainerState::Removed {
                    cpu -= c.spec().cpu_request;
                    mem -= c.spec().mem_limit;
                    live += 1;
                }
            }
            trace.emit(
                now,
                hyscale_trace::EventKind::AllocatorPressure {
                    node: n.id().index(),
                    free_cpu: cpu.get(),
                    free_mem: mem.get(),
                    containers: live,
                },
            );
        }
    }

    /// Starts a container on `node` (`docker run`). The container begins
    /// serving after its startup delay.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] or
    /// [`ClusterError::InvalidSpec`]. Placement feasibility is *not*
    /// enforced here — Docker happily oversubscribes a machine; admission
    /// control is the Monitor's job (as in the paper).
    pub fn start_container(
        &mut self,
        node: NodeId,
        spec: ContainerSpec,
        now: SimTime,
    ) -> Result<ContainerId, ClusterError> {
        if self.node(node).is_none() {
            return Err(ClusterError::UnknownNode(node));
        }
        spec.validate().map_err(ClusterError::InvalidSpec)?;
        // Catch the node up *before* the new slot exists: the missed idle
        // ticks ran without it.
        self.activate(node.as_usize());
        let id = ContainerId::new(self.container_ids.next_u32());
        debug_assert_eq!(self.locs.len(), id.as_usize());
        let antagonist = spec.antagonist;
        let service = spec.service;
        let entry = &mut self.nodes[node.as_usize()];
        self.locs.push(ContainerLoc {
            node: node.index(),
            slot: entry.slots.len() as u32,
        });
        entry.slots.push(Container::new(id, node, spec, now));
        entry.attach(id);
        self.index_members.push(0);
        if !antagonist {
            let svc = service.as_usize();
            if svc >= self.replica_counts.len() {
                self.replica_counts.resize(svc + 1, 0);
            }
            self.replica_counts[svc] += 1;
            if svc >= self.route_index.len() {
                self.route_index.resize_with(svc + 1, BTreeSet::new);
            }
            self.route_index[svc].insert((0, id.index()));
        }
        Ok(id)
    }

    /// Force-removes a container (`docker rm -f`). Its in-flight requests
    /// are aborted and returned as removal failures.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] if the container does
    /// not exist or was already removed.
    pub fn remove_container(
        &mut self,
        id: ContainerId,
        now: SimTime,
    ) -> Result<Vec<FailedRequest>, ClusterError> {
        self.remove_container_with_kind(id, now, FailureKind::Removal)
    }

    /// Kills a container the way the kernel OOM killer does: the process
    /// dies, its in-flight requests are aborted as
    /// [`FailureKind::InfraDeath`] failures (clients see a reset, not a
    /// scaling decision — the paper's failure taxonomy charges scale-in
    /// aborts, and only those, as removal failures).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] if the container does
    /// not exist or was already removed.
    pub fn oom_kill(
        &mut self,
        id: ContainerId,
        now: SimTime,
    ) -> Result<Vec<FailedRequest>, ClusterError> {
        self.remove_container_with_kind(id, now, FailureKind::InfraDeath)
    }

    /// Tears down one container, draining its in-flight requests as
    /// failures of the given kind. Scale-in removals abort with
    /// [`FailureKind::Removal`]; infrastructure deaths (node crash, OOM
    /// kill) abort with [`FailureKind::InfraDeath`].
    fn remove_container_with_kind(
        &mut self,
        id: ContainerId,
        now: SimTime,
        kind: FailureKind,
    ) -> Result<Vec<FailedRequest>, ClusterError> {
        // Catch up and wake the host before the slot changes state: the
        // missed idle ticks ran with the container still live.
        self.activate_container_node(id);
        let c = self
            .slot_mut(id)
            .ok_or(ClusterError::UnknownContainer(id))?;
        if c.state() == ContainerState::Removed {
            return Err(ClusterError::UnknownContainer(id));
        }
        let node = c.node();
        let drained = c.in_flight_members();
        let antagonist = c.spec().antagonist;
        let service = c.service();
        c.mark_removed();
        let mut failures: Vec<FailedRequest> = c
            .in_flight
            .drain(..)
            .map(|inflight| FailedRequest {
                id: inflight.id,
                count: 1,
                service: inflight.request.service,
                container: Some(id),
                arrival: inflight.request.arrival,
                failed_at: now,
                kind,
            })
            .collect();
        // Resident cohorts die with the replica — the "faults diverge a
        // cohort" case degenerates to aborting the whole resident share,
        // one aggregate failure record per cohort.
        for i in 0..c.cohorts.len() {
            let (first, count) = c.cohorts.id_range(i);
            failures.push(FailedRequest {
                id: first,
                count,
                service: c.cohorts.service[i],
                container: Some(id),
                arrival: c.cohorts.arrival[i],
                failed_at: now,
                kind,
            });
        }
        c.cohorts.clear();
        self.nodes[node.as_usize()].detach(id);
        self.in_flight_total -= drained;
        if !antagonist {
            let svc = service.as_usize();
            self.replica_counts[svc] -= 1;
            self.route_index[svc].remove(&(self.index_members[id.as_usize()], id.index()));
        }
        Ok(failures)
    }

    /// Crashes a node: the machine drops off the network, every container
    /// on it dies, and their in-flight requests are aborted as
    /// [`FailureKind::InfraDeath`] failures (the client's TCP connection
    /// resets with the machine). Unlike [`Cluster::decommission_node`] the
    /// node keeps its identity and can return via
    /// [`Cluster::reboot_node`].
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] if the node does not exist,
    /// was decommissioned, or is already offline.
    pub fn crash_node(
        &mut self,
        id: NodeId,
        now: SimTime,
    ) -> Result<Vec<FailedRequest>, ClusterError> {
        if self.node(id).is_none() {
            return Err(ClusterError::UnknownNode(id));
        }
        let containers: Vec<ContainerId> = self.nodes[id.as_usize()].containers().to_vec();
        let mut failures = Vec::new();
        for ctr in containers {
            if let Ok(mut aborted) =
                self.remove_container_with_kind(ctr, now, FailureKind::InfraDeath)
            {
                failures.append(&mut aborted);
            }
        }
        self.nodes[id.as_usize()].mark_offline();
        Ok(failures)
    }

    /// Brings a crashed node back online. The machine returns empty — its
    /// containers did not survive the crash — but with its original
    /// identity and hardware, ready for placement.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] if the node does not exist,
    /// was decommissioned, or is not offline.
    pub fn reboot_node(&mut self, id: NodeId) -> Result<(), ClusterError> {
        match self.nodes.get_mut(id.as_usize()) {
            Some(n) if n.offline() && !n.decommissioned() => {
                n.mark_online();
                Ok(())
            }
            _ => Err(ClusterError::UnknownNode(id)),
        }
    }

    /// Degrades (or restores) a node's NIC: effective egress capacity
    /// becomes `spec.nic * factor`, clamped to `[0, 1]`. Models a flapping
    /// link or a failing transceiver; `1.0` restores full capacity.
    ///
    /// The NIC is a hardware property, so the factor may be set even while
    /// the node is crashed (it applies once the node is back).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for an invalid or
    /// decommissioned node.
    pub fn set_nic_factor(&mut self, id: NodeId, factor: f64) -> Result<(), ClusterError> {
        match self.nodes.get_mut(id.as_usize()) {
            Some(n) if !n.decommissioned() => {
                n.set_nic_factor(factor);
                // The NIC does not enter the idle closed form, but a
                // changed link belongs in the next tick's visit set.
                self.activate(id.as_usize());
                Ok(())
            }
            _ => Err(ClusterError::UnknownNode(id)),
        }
    }

    /// Counts ready (serving) replicas per service into `counts`, indexed
    /// by service id (resized as needed, zeroed first). One pass over all
    /// containers — cheap enough for the driver to call every tick, which
    /// is what per-tick availability accounting needs.
    pub fn ready_replicas_into(&self, now: SimTime, counts: &mut Vec<u32>) {
        counts.clear();
        for node in &self.nodes {
            for c in &node.slots {
                if c.state() == ContainerState::Removed || c.spec().antagonist || !c.live(now) {
                    continue;
                }
                let idx = c.service().as_usize();
                if idx >= counts.len() {
                    counts.resize(idx + 1, 0);
                }
                counts[idx] += 1;
            }
        }
    }

    /// Applies a `docker update`: changes a container's CPU request and
    /// memory limit in place. This is the vertical-scaling primitive.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] for an invalid or
    /// removed container.
    pub fn update_container(
        &mut self,
        id: ContainerId,
        cpu: Cores,
        mem: MemMb,
    ) -> Result<(), ClusterError> {
        // Pending idle ticks ran under the old resources; replay them
        // before the spec changes.
        self.activate_container_node(id);
        let c = self.live_container_mut(id)?;
        c.update_resources(cpu, mem);
        Ok(())
    }

    /// Applies or lifts a `tc` egress cap on a container.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] for an invalid or
    /// removed container.
    pub fn update_net_cap(
        &mut self,
        id: ContainerId,
        cap: Option<crate::Mbps>,
    ) -> Result<(), ClusterError> {
        self.activate_container_node(id);
        let c = self.live_container_mut(id)?;
        c.update_net_cap(cap);
        Ok(())
    }

    /// Hands a request to a replica (what a load balancer does).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::UnknownContainer`] — no such container.
    /// * [`ClusterError::NotAccepting`] — replica starting/removed or an
    ///   antagonist.
    /// * [`ClusterError::QueueFull`] — socket backlog exhausted.
    pub fn admit_request(
        &mut self,
        id: ContainerId,
        request: Request,
        now: SimTime,
    ) -> Result<RequestId, ClusterError> {
        let req_id = RequestId::new(self.request_ids.next_u64());
        self.activate_container_node(id);
        let c = self
            .slot_mut(id)
            .ok_or(ClusterError::UnknownContainer(id))?;
        if c.spec().antagonist || !c.live(now) {
            return Err(ClusterError::NotAccepting(id));
        }
        if c.in_flight_members() >= c.spec().queue_cap as u64 {
            return Err(ClusterError::QueueFull(id));
        }
        let service = c.service();
        c.in_flight.push(InFlight::new(req_id, request, now));
        self.in_flight_total += 1;
        self.bump_index(id, service, 1);
        Ok(req_id)
    }

    /// Hands a whole flow cohort to a replica: `cohort.count` identical
    /// requests admitted as one record. Returns the first member's
    /// [`RequestId`]; members occupy the dense id range
    /// `id .. id + count`.
    ///
    /// The queue cap is enforced on *members*: a cohort is admitted only
    /// if all of it fits (the balancer splits cohorts across replicas
    /// before admission, so partial fits are its job, not the queue's).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::UnknownContainer`] — no such container.
    /// * [`ClusterError::NotAccepting`] — replica starting/removed or an
    ///   antagonist.
    /// * [`ClusterError::QueueFull`] — fewer than `cohort.count` slots
    ///   left in the socket backlog.
    pub fn admit_cohort(
        &mut self,
        id: ContainerId,
        cohort: Cohort,
        now: SimTime,
    ) -> Result<RequestId, ClusterError> {
        let count = cohort.count;
        self.activate_container_node(id);
        let c = self
            .slot_mut(id)
            .ok_or(ClusterError::UnknownContainer(id))?;
        if c.spec().antagonist || !c.live(now) {
            return Err(ClusterError::NotAccepting(id));
        }
        if c.in_flight_members() + count > c.spec().queue_cap as u64 {
            return Err(ClusterError::QueueFull(id));
        }
        let service = c.service();
        // Reserve ids only once admission is certain, so failed admissions
        // do not burn id space (mirrors `admit_request`, which allocates
        // eagerly but singly).
        let base = self.request_ids.next_range(count);
        let c = self.slot_mut(id).expect("container existed above");
        c.cohorts.push(&cohort, base, now);
        self.in_flight_total += count;
        self.bump_index(id, service, count);
        Ok(RequestId::new(base))
    }

    /// Republishes a container's routing-index key after `delta` members
    /// were admitted to it.
    fn bump_index(&mut self, id: ContainerId, service: ServiceId, delta: u64) {
        let m = self.index_members[id.as_usize()];
        let set = &mut self.route_index[service.as_usize()];
        set.remove(&(m, id.index()));
        set.insert((m + delta, id.index()));
        self.index_members[id.as_usize()] = m + delta;
    }

    /// Splits an in-flight cohort in place: slot `idx` of the container's
    /// cohort table keeps `left` members, the remainder becomes a new
    /// slot with identical remaining work. Member totals are conserved.
    /// This is the divergence primitive faults and chaos tests use to
    /// model a cohort partially re-routed mid-flight.
    ///
    /// Returns `true` if the split happened (`0 < left < count`).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] for an invalid or
    /// removed container.
    pub fn split_in_flight_cohort(
        &mut self,
        id: ContainerId,
        idx: usize,
        left: u64,
    ) -> Result<bool, ClusterError> {
        self.activate_container_node(id);
        let c = self.live_container_mut(id)?;
        if idx >= c.cohorts.len() {
            return Ok(false);
        }
        // Members are conserved, so the routing index is unaffected.
        Ok(c.cohorts.split(idx, left))
    }

    /// Merges cohort slot `j` back into slot `i` when the two halves are
    /// re-joinable (adjacent id ranges, identical remaining state) — the
    /// inverse of [`Cluster::split_in_flight_cohort`]. Returns whether
    /// the merge happened.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] for an invalid or
    /// removed container.
    pub fn merge_in_flight_cohorts(
        &mut self,
        id: ContainerId,
        i: usize,
        j: usize,
    ) -> Result<bool, ClusterError> {
        self.activate_container_node(id);
        let c = self.live_container_mut(id)?;
        Ok(c.cohorts.merge(i, j))
    }

    /// Total in-flight members across the whole cluster (individual
    /// requests plus cohort members). O(1) — maintained incrementally on
    /// admission, settlement, and removal.
    pub fn total_in_flight(&self) -> u64 {
        debug_assert_eq!(
            self.in_flight_total,
            self.nodes
                .iter()
                .flat_map(|n| n.slots.iter())
                .filter(|c| c.state() != ContainerState::Removed)
                .map(|c| c.in_flight_members())
                .sum::<u64>()
        );
        self.in_flight_total
    }

    /// Advances the fluid model by one tick starting at `now` and lasting
    /// `dt`. Returns the requests that completed or timed out.
    ///
    /// This is a convenience wrapper over [`Cluster::advance_into`]; hot
    /// callers should reuse a [`TickReport`] instead.
    pub fn advance(&mut self, now: SimTime, dt: SimDuration) -> TickReport {
        let mut report = TickReport::default();
        self.advance_into(now, dt, &mut report);
        report
    }

    /// Advances the fluid model by one tick, writing the completions and
    /// failures into `report` (cleared first). With
    /// [`Cluster::set_parallelism`] above 1, nodes are ticked on the
    /// persistent worker pool: workers are woken with an epoch bump (no
    /// per-tick thread creation), each owns a contiguous container-
    /// weighted node range and its own scratch buffers, and outputs are
    /// merged in partition order — node order — so the report is
    /// bit-identical to a serial run.
    pub fn advance_into(&mut self, now: SimTime, dt: SimDuration, report: &mut TickReport) {
        report.completed.clear();
        report.failed.clear();
        let dt_secs = dt.as_secs();
        if dt_secs <= 0.0 {
            return;
        }
        let end = now + dt;

        if self.config.active_set {
            self.advance_active(now, end, dt, dt_secs, report);
        } else {
            self.advance_full(now, end, dt_secs, report);
        }

        // Post-tick bookkeeping shared by both engines: the in-flight
        // counter and the routing index follow the records this tick
        // settled (O(report), not O(cluster)).
        self.in_flight_total = self
            .in_flight_total
            .saturating_sub(report.completed_members() + report.failed_members());
        self.reindex_from_report(report);
    }

    /// Republishes the routing-index key of every container named by a
    /// settled record. A container appearing in several records converges
    /// after the first (the published count already matches).
    fn reindex_from_report(&mut self, report: &TickReport) {
        for i in 0..report.completed.len() {
            let id = report.completed[i].container;
            self.republish_index(id);
        }
        for i in 0..report.failed.len() {
            let Some(id) = report.failed[i].container else {
                continue;
            };
            self.republish_index(id);
        }
    }

    /// Syncs one container's `(members, id)` key with its actual state.
    fn republish_index(&mut self, id: ContainerId) {
        let Some(c) = self.container(id) else { return };
        debug_assert!(!c.spec().antagonist, "antagonists never settle records");
        let members = c.in_flight_members();
        let service = c.service();
        let published = self.index_members[id.as_usize()];
        if published == members {
            return;
        }
        let set = &mut self.route_index[service.as_usize()];
        set.remove(&(published, id.index()));
        set.insert((members, id.index()));
        self.index_members[id.as_usize()] = members;
    }

    /// The reference engine (`config.active_set == false`): visits every
    /// node every tick, exactly the pre-active-set behaviour. Kept as the
    /// brute-force twin the differential tests drive.
    fn advance_full(&mut self, now: SimTime, end: SimTime, dt_secs: f64, report: &mut TickReport) {
        // Serial prepass: lifecycle transitions and the per-node weights
        // (1 + live containers + in-flight requests ≈ tick cost) that
        // drive the parallel partition. The per-service replica table is
        // maintained incrementally on start/remove.
        self.node_weights.clear();
        for node in &mut self.nodes {
            let mut weight: u64 = 1;
            for c in &mut node.slots {
                c.mark_running_if_ready(now);
                if c.state() == ContainerState::Removed {
                    continue;
                }
                // Tick cost scales with PS entries, and a cohort record
                // costs about as much as one request regardless of its
                // member count.
                weight += 1 + c.in_flight.len() as u64 + c.cohorts.len() as u64;
            }
            self.node_weights.push(weight);
        }

        let workers = self.parallelism.min(self.nodes.len()).max(1);
        let parallel = if workers > 1 {
            crate::partition::weighted_partition(&self.node_weights, workers, &mut self.partitions);
            self.partitions.len() > 1
        } else {
            false
        };
        if parallel && self.pool.is_none() {
            // Clones drop their source's pool (threads are not
            // cloneable); respawn it on the first parallel tick.
            self.pool = Some(WorkerPool::new(self.parallelism - 1));
        }

        let nodes = &mut self.nodes;
        let scratch_pool = &mut self.scratch;
        let ctx = TickCtx {
            config: &self.config,
            mem_model: &self.mem_model,
            net_alloc: &self.net_alloc,
            replica_counts: &self.replica_counts,
            now,
            end,
            dt_secs,
            poison: self.poison_node,
        };

        if !parallel {
            let scratch = &mut scratch_pool[0];
            scratch.completed.clear();
            scratch.failed.clear();
            for node in nodes.iter_mut() {
                tick_node(node, &ctx, scratch);
            }
            report.completed.append(&mut scratch.completed);
            report.failed.append(&mut scratch.failed);
            return;
        }

        // Partition count never exceeds `workers`, and the scratch pool
        // and thread pool are both sized by `set_parallelism`, so every
        // partition gets a scratch and jobs 1.. each get a pool thread.
        let partitions = &self.partitions;
        debug_assert!(partitions.len() <= scratch_pool.len());
        let pool = self.pool.as_mut().expect("pool exists while parallel");
        let ctx = &ctx;
        let mut rest: &mut [Node] = nodes;
        let mut scratches = scratch_pool.iter_mut();
        let mut closures: Vec<_> = Vec::with_capacity(partitions.len());
        for range in partitions.iter() {
            let (chunk, tail) = rest.split_at_mut(range.end - range.start);
            rest = tail;
            let scratch = scratches.next().expect("scratch per partition");
            closures.push(move || {
                // Stale staged output can only exist if a previous tick
                // panicked mid-merge; clearing here keeps the next tick
                // clean either way.
                scratch.completed.clear();
                scratch.failed.clear();
                for node in chunk.iter_mut() {
                    tick_node(node, ctx, scratch);
                }
            });
        }
        let mut jobs: Vec<hyscale_exec::Job<'_>> = closures
            .iter_mut()
            .map(|c| c as &mut (dyn FnMut() + Send))
            .collect();
        pool.run(&mut jobs);
        drop(jobs);
        drop(closures);
        // Workers held contiguous node ranges in partition order, so
        // appending their buffers in partition order reproduces the
        // serial append order.
        for scratch in scratch_pool.iter_mut().take(partitions.len()) {
            report.completed.append(&mut scratch.completed);
            report.failed.append(&mut scratch.failed);
        }
    }

    /// The active-set engine: visits only nodes with runnable work, so a
    /// tick costs O(active), not O(nodes). Nodes whose tick proves idle
    /// park afterwards; parked nodes accrue pending closed-form ticks
    /// that [`Cluster::catch_up_node`] replays bit-exactly on demand.
    fn advance_active(
        &mut self,
        now: SimTime,
        end: SimTime,
        dt: SimDuration,
        dt_secs: f64,
        report: &mut TickReport,
    ) {
        // Lazy replay is exact only across a dt-constant span: flush
        // every parked node before the duration changes.
        if dt != self.span_dt {
            self.flush_pending();
            self.span_dt = dt;
        }
        // Fold nodes activated since the last tick into the sorted list.
        if !self.newly_active.is_empty() {
            let newly = std::mem::take(&mut self.newly_active);
            self.active_list.extend_from_slice(&newly);
            self.active_list.sort_unstable();
            self.active_list.dedup();
            self.newly_active = newly;
            self.newly_active.clear();
        }

        // Prepass over the active set only: lifecycle transitions plus
        // the compact per-active-node weights feeding the partition.
        self.node_weights.clear();
        for &i in &self.active_list {
            let node = &mut self.nodes[i as usize];
            let mut weight: u64 = 1;
            for c in &mut node.slots {
                c.mark_running_if_ready(now);
                if c.state() == ContainerState::Removed {
                    continue;
                }
                weight += 1 + c.in_flight.len() as u64 + c.cohorts.len() as u64;
            }
            self.node_weights.push(weight);
        }

        let active_count = self.active_list.len();
        let workers = self.parallelism.min(active_count).max(1);
        let total_weight: u64 = self.node_weights.iter().sum();
        // Handing jobs to the pool costs microseconds; a tick lighter
        // than this per worker finishes faster on the calling thread
        // (this is what fixed the cohort-mode parallel regression).
        let parallel = if workers > 1 {
            if total_weight >= SERIAL_FALLBACK_WEIGHT * workers as u64 {
                crate::partition::weighted_partition(
                    &self.node_weights,
                    workers,
                    &mut self.partitions,
                );
                self.partitions.len() > 1
            } else {
                self.serial_fallback_ticks += 1;
                false
            }
        } else {
            false
        };
        if parallel && self.pool.is_none() {
            self.pool = Some(WorkerPool::new(self.parallelism - 1));
        }

        let nodes = &mut self.nodes;
        let scratch_pool = &mut self.scratch;
        let active_list = &self.active_list;
        let park_flags = &mut self.park_flags;
        park_flags.clear();
        park_flags.resize(active_count, false);
        let ctx = TickCtx {
            config: &self.config,
            mem_model: &self.mem_model,
            net_alloc: &self.net_alloc,
            replica_counts: &self.replica_counts,
            now,
            end,
            dt_secs,
            poison: self.poison_node,
        };

        if !parallel {
            let scratch = &mut scratch_pool[0];
            scratch.completed.clear();
            scratch.failed.clear();
            for (k, &i) in active_list.iter().enumerate() {
                park_flags[k] = tick_node(&mut nodes[i as usize], &ctx, scratch);
            }
            report.completed.append(&mut scratch.completed);
            report.failed.append(&mut scratch.failed);
        } else {
            let partitions = &self.partitions;
            debug_assert!(partitions.len() <= scratch_pool.len());
            let pool = self.pool.as_mut().expect("pool exists while parallel");
            let ctx = &ctx;
            // Each partition is a contiguous range of `active_list`; the
            // node indices inside it are sorted, so successive
            // `split_at_mut` calls carve the node table into disjoint
            // windows (idle gaps fall between windows) — no worker can
            // alias another's nodes, and no `unsafe` is needed.
            let mut rest: &mut [Node] = nodes;
            let mut offset = 0usize; // index of rest[0] within self.nodes
            let mut flags_rest: &mut [bool] = park_flags;
            let mut scratches = scratch_pool.iter_mut();
            let mut closures: Vec<_> = Vec::with_capacity(partitions.len());
            for range in partitions.iter() {
                let ids = &active_list[range.start..range.end];
                let lo = ids[0] as usize;
                let hi = *ids.last().expect("partitions are non-empty") as usize;
                let (_, tail) = rest.split_at_mut(lo - offset);
                let (chunk, tail) = tail.split_at_mut(hi - lo + 1);
                rest = tail;
                offset = hi + 1;
                let (flags, ftail) = flags_rest.split_at_mut(range.end - range.start);
                flags_rest = ftail;
                let scratch = scratches.next().expect("scratch per partition");
                closures.push(move || {
                    scratch.completed.clear();
                    scratch.failed.clear();
                    for (k, &i) in ids.iter().enumerate() {
                        flags[k] = tick_node(&mut chunk[i as usize - lo], ctx, scratch);
                    }
                });
            }
            let mut jobs: Vec<hyscale_exec::Job<'_>> = closures
                .iter_mut()
                .map(|c| c as &mut (dyn FnMut() + Send))
                .collect();
            pool.run(&mut jobs);
            drop(jobs);
            drop(closures);
            for scratch in scratch_pool.iter_mut().take(partitions.len()) {
                report.completed.append(&mut scratch.completed);
                report.failed.append(&mut scratch.failed);
            }
        }

        // Park the nodes this tick proved idle: every later tick would be
        // the same closed form, so defer them until something changes.
        self.tick_seq += 1;
        let node_active = &mut self.node_active;
        let park_seq = &mut self.park_seq;
        let park_flags = &self.park_flags;
        let tick_seq = self.tick_seq;
        let mut k = 0usize;
        self.active_list.retain(|&i| {
            let parked = park_flags[k];
            k += 1;
            if parked {
                node_active[i as usize] = false;
                park_seq[i as usize] = tick_seq;
            }
            !parked
        });
    }

    /// Advances the cluster across up to `max_ticks` consecutive *idle*
    /// ticks in closed form — the time-warp extension of the per-node
    /// idle fast path. During an idle span every tick performs the same
    /// arithmetic (base CPU tax, throughput-EWMA decay, usage-window
    /// bookkeeping), so all of it can be applied at once.
    ///
    /// Preconditions (checked; violation returns 0 and the caller falls
    /// back to [`Cluster::advance_into`]):
    ///
    /// * no request or cohort is in flight anywhere,
    /// * no antagonist container is live,
    /// * every node's idle grant comes from the one-round closed form.
    ///
    /// The warp additionally clamps itself to stop before the earliest
    /// container startup boundary, so no liveness transition falls inside
    /// the span. Returns the number of ticks actually warped.
    ///
    /// Warping is deterministic (same inputs → same state), but the
    /// floating-point accumulation uses closed-form products rather than
    /// `k` repeated sums, so post-warp state is not bit-identical to `k`
    /// looped idle ticks. The digest-relevant outputs — completions and
    /// failures — are identically empty either way.
    pub fn advance_warp(&mut self, now: SimTime, dt: SimDuration, max_ticks: u64) -> u64 {
        let dt_secs = dt.as_secs();
        if max_ticks == 0 || dt_secs <= 0.0 {
            return 0;
        }
        let mut ticks = max_ticks;
        let dt_us = dt.as_micros().max(1);
        for node in &self.nodes {
            for c in &node.slots {
                if c.state() == ContainerState::Removed {
                    continue;
                }
                if !c.in_flight.is_empty() || !c.cohorts.is_empty() {
                    return 0;
                }
                if c.spec().antagonist && c.live(now) {
                    return 0;
                }
                if c.ready_at() > now {
                    // Ticks starting strictly before `ready_at` see the
                    // container as not yet live; stop the warp there.
                    let gap = (c.ready_at() - now).as_micros();
                    ticks = ticks.min(gap.div_ceil(dt_us));
                }
            }
        }
        if ticks == 0 {
            return 0;
        }
        // The precondition scan above only reads fields the lazy
        // catch-up never changes (state, in-flight, ready_at), so a
        // refused warp stays cheap; a committed warp replays any parked
        // span-ticks first so window/EWMA state is current.
        self.flush_pending();
        let config = self.config;
        let mem_model = self.mem_model;
        let nodes = &mut self.nodes;
        let scratch = &mut self.scratch[0];
        // Pass 0 verifies every node's constant per-tick grant is the
        // one-round closed form (nothing has been mutated if it is not);
        // pass 1 applies the whole span.
        for pass in 0..2 {
            for node in nodes.iter_mut() {
                scratch.live.clear();
                scratch.cpu_demands.clear();
                for (slot, c) in node.slots.iter().enumerate() {
                    if c.state() == ContainerState::Removed {
                        continue;
                    }
                    scratch.live.push(slot);
                    let demand = if c.live(now) {
                        c.spec().base_cpu.get() * dt_secs
                    } else {
                        0.0
                    };
                    scratch.cpu_demands.push(CpuDemand::new(
                        c.id(),
                        demand,
                        c.spec().cpu_request.get(),
                    ));
                }
                if scratch.live.is_empty() {
                    continue;
                }
                let active = scratch
                    .cpu_demands
                    .iter()
                    .filter(|d| d.demand > 1e-12)
                    .count();
                let capacity = node.spec().cores.get()
                    * dt_secs
                    * config.overheads.cpu_contention_factor(active);
                if !idle_grants(capacity, &scratch.cpu_demands, &mut scratch.cpu_grants) {
                    debug_assert_eq!(pass, 0, "feasibility changed between passes");
                    return 0;
                }
                if pass == 0 {
                    continue;
                }
                let kf = ticks as f64;
                let alpha = (dt_secs / THROUGHPUT_TAU_SECS.max(dt_secs)).clamp(0.0, 1.0);
                let decay = (1.0 - alpha).powf(kf);
                for (i, &s) in scratch.live.iter().enumerate() {
                    let c = &mut node.slots[s];
                    let granted = scratch.cpu_grants[i].granted;
                    if granted > 0.0 {
                        c.cpu_used_total += granted * kf;
                    }
                    c.throughput_ewma *= decay;
                    let resident = c.resident_mem_with(0.0);
                    let swapping = mem_model
                        .pressure(resident, c.spec().mem_limit)
                        .is_swapping();
                    c.window
                        .record_span(dt_secs, ticks, granted, resident, swapping);
                }
            }
        }
        ticks
    }

    /// Snapshot (and reset) the usage windows of every container on a
    /// node — what a Node Manager reports to the Monitor each period.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for an invalid id.
    pub fn node_usage_and_reset(&mut self, node: NodeId) -> Result<NodeUsage, ClusterError> {
        if self.node(node).is_none() {
            return Err(ClusterError::UnknownNode(node));
        }
        if self.config.active_set && !self.node_active[node.as_usize()] {
            // A parked node's windows are stale; replay its idle span
            // before sampling so the report matches the full engine.
            self.catch_up_node(node.as_usize());
        }
        let n = &mut self.nodes[node.as_usize()];
        let mut usage = NodeUsage {
            node,
            cpu_used: Cores::ZERO,
            mem_used: MemMb::ZERO,
            net_used: crate::Mbps::ZERO,
            containers: Vec::with_capacity(n.containers().len()),
        };
        for c in &mut n.slots {
            if c.state() == ContainerState::Removed {
                continue;
            }
            let id = c.id();
            let sample = c.window.snapshot_and_reset(id);
            usage.cpu_used += sample.cpu_used;
            usage.mem_used += sample.mem_used;
            usage.net_used += sample.net_used;
            usage.containers.push(sample);
        }
        Ok(usage)
    }

    /// Peeks at one container's usage window without resetting it.
    ///
    /// This is a `&self` peek, so it cannot replay a parked node's
    /// pending idle ticks; on an active-set cluster the sample may lag
    /// until the next [`Self::flush_pending`] / mutation reactivates
    /// the node. Callers that need exact values should flush first.
    pub fn container_usage(&self, id: ContainerId) -> Option<ContainerUsage> {
        self.container(id).map(|c| c.window.peek(id))
    }

    fn slot_mut(&mut self, id: ContainerId) -> Option<&mut Container> {
        let loc = *self.locs.get(id.as_usize())?;
        self.nodes
            .get_mut(loc.node as usize)?
            .slots
            .get_mut(loc.slot as usize)
    }

    fn live_container_mut(&mut self, id: ContainerId) -> Result<&mut Container, ClusterError> {
        let c = self
            .slot_mut(id)
            .ok_or(ClusterError::UnknownContainer(id))?;
        if c.state() == ContainerState::Removed {
            return Err(ClusterError::UnknownContainer(id));
        }
        Ok(c)
    }
}

/// Closed-form water-filling for the all-idle case, where every demand is
/// a container's base CPU tax: if every positive-weight demand fits inside
/// its round-1 fair share, the full allocator would terminate after one
/// round granting exactly the demand — so grant it directly (and split any
/// leftover among zero-weight demanders, as phase 2 would). Returns
/// `false` when the one-round solution does not apply, in which case the
/// caller must run the full allocator. Grants are bit-identical to
/// [`CpuAllocator::allocate`] whenever this returns `true`.
fn idle_grants(capacity: f64, demands: &[CpuDemand], grants: &mut Vec<CpuGrant>) -> bool {
    grants.clear();
    grants.extend(demands.iter().map(|d| CpuGrant {
        container: d.container,
        granted: 0.0,
    }));
    if capacity <= 1e-12 {
        // The allocator's epsilon: below it neither phase grants anything.
        return true;
    }
    let total_weight: f64 = demands
        .iter()
        .filter(|d| d.demand > 0.0 && d.weight > 0.0)
        .map(|d| d.weight)
        .sum();
    let mut remaining = capacity;
    if total_weight > 0.0 {
        // Round-1 feasibility: every weighted demand must fit its fair
        // share, otherwise the allocator would iterate.
        for d in demands {
            if d.demand > 0.0 && d.weight > 0.0 && d.demand > capacity * d.weight / total_weight {
                return false;
            }
        }
        for (i, d) in demands.iter().enumerate() {
            if d.demand > 0.0 && d.weight > 0.0 {
                grants[i].granted = d.demand;
                remaining -= d.demand;
            }
        }
    }
    if remaining > 1e-12 {
        let zero_weight = demands
            .iter()
            .filter(|d| d.weight <= 0.0 && d.demand > 0.0)
            .count();
        if zero_weight > 0 {
            let share = remaining / zero_weight as f64;
            for (i, d) in demands.iter().enumerate() {
                if d.weight <= 0.0 && d.demand > 0.0 {
                    grants[i].granted = share.min(d.demand);
                }
            }
        }
    }
    true
}

/// Advances one node by one tick. Free function over `&mut Node` so the
/// parallel engine can fan nodes out across scoped threads; all shared
/// inputs are read-only in [`TickCtx`] and all temporaries live in the
/// worker's [`TickScratch`].
///
/// Returns `true` when the node may park: this tick took the idle
/// closed form (or the node had no live slots) *and* no slot is still
/// inside its startup window, so every subsequent tick repeats the same
/// arithmetic until an external mutation arrives.
fn advance_node(node: &mut Node, ctx: &TickCtx<'_>, scratch: &mut TickScratch) -> bool {
    let mut node_spec = *node.spec();
    // Fault injection can degrade the NIC; multiplying by the default 1.0
    // factor is exact in IEEE arithmetic, so healthy nodes are bit-for-bit
    // unchanged.
    node_spec.nic = node_spec.nic * node.nic_factor();
    let TickScratch {
        live,
        slowdowns,
        swapping,
        cpu_demands,
        cpu_grants,
        net_demands,
        net_grants,
        disk_demands,
        disk_grants,
        cpu_wanting,
        net_wanting,
        disk_wanting,
        wanting_ranges,
        cohort_cpu_wanting,
        cohort_net_wanting,
        cohort_disk_wanting,
        cohort_ranges,
        outstanding,
        net_scratch,
        completed,
        failed,
    } = scratch;

    // Live containers on this node, in placement order; also detect the
    // idle fast-path precondition (nothing in flight, no active hog) and
    // whether any slot is still starting up (a pending liveness
    // transition forbids parking).
    live.clear();
    let mut idle = true;
    let mut all_ready = true;
    for (slot, c) in node.slots.iter().enumerate() {
        if c.state() == ContainerState::Removed {
            continue;
        }
        live.push(slot);
        if !c.in_flight.is_empty()
            || !c.cohorts.is_empty()
            || (c.spec().antagonist && c.live(ctx.now))
        {
            idle = false;
        }
        if c.ready_at() > ctx.now {
            all_ready = false;
        }
    }
    if live.is_empty() {
        return true;
    }

    // --- Pressure + demands: one fused pass per container -------------
    // CPU, network, and disk demands (and the PS work lists the apply
    // phases consume) all derive from fields no earlier phase mutates
    // (`cpu_remaining` / `megabits_remaining` / `disk_remaining` are
    // each touched only by their own PS phase), so computing them in one
    // sweep over `in_flight` — right after the memory-pressure sweep of
    // the same container, while its requests are cache-hot — is
    // bit-identical to the phase-major order.
    slowdowns.clear();
    swapping.clear();
    cpu_demands.clear();
    net_demands.clear();
    disk_demands.clear();
    cpu_wanting.clear();
    net_wanting.clear();
    disk_wanting.clear();
    wanting_ranges.clear();
    cohort_cpu_wanting.clear();
    cohort_net_wanting.clear();
    cohort_disk_wanting.clear();
    cohort_ranges.clear();
    for &s in live.iter() {
        let c = &node.slots[s];
        let pressure = ctx.mem_model.pressure(c.resident_mem(), c.spec().mem_limit);
        slowdowns.push(pressure.slowdown);
        swapping.push(pressure.is_swapping());
        wanting_ranges.push([
            cpu_wanting.len() as u32,
            net_wanting.len() as u32,
            disk_wanting.len() as u32,
        ]);
        cohort_ranges.push([
            cohort_cpu_wanting.len() as u32,
            cohort_net_wanting.len() as u32,
            cohort_disk_wanting.len() as u32,
        ]);
        let (cpu_demand, (net_demand, flows), disk_demand) = if !c.live(ctx.now) {
            (0.0, (0.0, 0), 0.0)
        } else if c.spec().antagonist {
            // Stress containers try to hog the whole machine; a network
            // antagonist opens a handful of bulk streams.
            let net = if c.spec().net_request.get() > 0.0 {
                (node_spec.nic.get() * ctx.dt_secs, 4)
            } else {
                (0.0, 0)
            };
            (node_spec.cores.get() * ctx.dt_secs, net, 0.0)
        } else {
            // A swapping container is IO-bound: each request stalls on
            // page faults and can use at most dt/slowdown of CPU time,
            // leaving the CPU idle (not hogged) while it thrashes.
            let base = c.spec().base_cpu.get() * ctx.dt_secs;
            let thread_budget = ctx.dt_secs / pressure.slowdown;
            let mut cpu_sum = 0.0;
            let mut net_sum = 0.0;
            let mut net_count = 0usize;
            let mut disk_sum = 0.0;
            for (r, inflight) in c.in_flight.iter().enumerate() {
                if inflight.wants_cpu() {
                    cpu_sum += inflight.cpu_remaining.min(thread_budget);
                    cpu_wanting.push(r as u32);
                }
                if inflight.wants_net() {
                    net_sum += inflight.megabits_remaining;
                    net_count += 1;
                    net_wanting.push(r as u32);
                }
                if inflight.wants_disk() {
                    disk_sum += inflight.disk_remaining;
                    disk_wanting.push(r as u32);
                }
            }
            // Cohort columns: flat SoA sweeps, one entry per cohort
            // record, each weighted by its member count.
            let t = &c.cohorts;
            for ci in 0..t.len() {
                let n = t.count[ci] as f64;
                if t.cpu_rem[ci] > 1e-12 {
                    cpu_sum += t.cpu_rem[ci].min(thread_budget) * n;
                    cohort_cpu_wanting.push(ci as u32);
                }
                if t.net_rem[ci] > 1e-9 {
                    net_sum += t.net_rem[ci] * n;
                    net_count = net_count.saturating_add(t.count[ci] as usize);
                    cohort_net_wanting.push(ci as u32);
                }
                if t.disk_rem[ci] > 1e-9 {
                    disk_sum += t.disk_rem[ci] * n;
                    cohort_disk_wanting.push(ci as u32);
                }
            }
            let flows = match c.spec().net_flow_pool {
                Some(pool) => net_count.min(pool.max(1)),
                None => net_count,
            };
            (base + cpu_sum, (net_sum, flows), disk_sum)
        };
        cpu_demands.push(CpuDemand::new(
            c.id(),
            cpu_demand,
            c.spec().cpu_request.get(),
        ));
        let mut nd =
            NetDemand::new(c.id(), net_demand, c.spec().net_request.get()).with_flows(flows.max(1));
        if let Some(cap) = c.spec().net_cap {
            nd = nd.with_tc_cap(cap, ctx.dt_secs);
        }
        net_demands.push(nd);
        disk_demands.push(CpuDemand::new(c.id(), disk_demand, 1.0));
    }
    let active = cpu_demands.iter().filter(|d| d.demand > 1e-12).count();
    let capacity =
        node_spec.cores.get() * ctx.dt_secs * ctx.config.overheads.cpu_contention_factor(active);

    // --- Idle fast path ----------------------------------------------
    // With nothing in flight the only physics left are the base CPU tax,
    // EWMA decay, and usage-window bookkeeping: network and disk demands
    // are all zero (granting zero), no request can progress, complete, or
    // time out. Skip the three allocators and the apply/completion scans.
    if idle && idle_grants(capacity, cpu_demands, cpu_grants) {
        for (i, &s) in live.iter().enumerate() {
            let c = &mut node.slots[s];
            let granted = cpu_grants[i].granted;
            let used = if granted > 0.0 {
                c.cpu_used_total += granted;
                granted
            } else {
                0.0
            };
            c.record_throughput(0, ctx.dt_secs, THROUGHPUT_TAU_SECS);
            let resident = c.resident_mem_with(0.0);
            c.window
                .record_tick(ctx.dt_secs, used, 0.0, 0.0, resident, 0, swapping[i]);
        }
        // Park-eligible only once every slot is past its startup: an
        // idle node with a starting container still has a liveness
        // transition (and a demand change) ahead of it.
        return all_ready;
    }

    // --- Allocations (node-level; no container state is read) ----------
    CpuAllocator::allocate_into(capacity, cpu_demands, cpu_grants, outstanding);
    ctx.net_alloc.allocate_into(
        node_spec.nic,
        ctx.dt_secs,
        net_demands,
        net_grants,
        net_scratch,
    );
    // Disk bandwidth is a per-node pool shared max-min fairly among
    // containers with outstanding disk traffic (equal weights — the
    // kernel's block-layer fairness), reusing the water-filling
    // allocator. This is the paper's named future-work resource type.
    let disk_capacity = node_spec.disk.get().max(0.0) * ctx.dt_secs;
    CpuAllocator::allocate_into(disk_capacity, disk_demands, disk_grants, outstanding);

    // --- Apply progress, container-major --------------------------------
    // Once the three grant vectors are fixed, containers are independent:
    // running every phase (CPU PS, net PS, disk PS, completion scan) for
    // one container before moving to the next reorders only operations on
    // disjoint state, so it is bit-identical to the phase-major order —
    // while each container's requests stay cache-resident across its four
    // sub-sweeps. Completions still append in container placement order.
    for (i, &s) in live.iter().enumerate() {
        let c = &mut node.slots[s];
        let next = wanting_ranges.get(i + 1);
        let cnext = cohort_ranges.get(i + 1);

        // CPU: processor sharing among requests that still want CPU —
        // round-robin equal split, honouring each request's per-tick
        // single-thread bound. The initial work list came from the fused
        // demand pass (CPU progress hasn't been applied since). Cohort
        // records join the same PS pool: the per-round share divides the
        // budget by total *members* (individual entries count 1, a cohort
        // entry counts its membership), each member takes at most the
        // share, and a cohort's take is charged `take × count` — exactly
        // what `count` identical individual requests would drain. With no
        // cohorts resident the member total equals the entry count and
        // the arithmetic is bit-identical to the per-request engine.
        let granted = cpu_grants[i].granted;
        let mut used_cpu = 0.0;
        if granted > 0.0 {
            used_cpu = granted;
            c.cpu_used_total += granted;
            if !c.spec().antagonist {
                let base = (c.spec().base_cpu.get() * ctx.dt_secs).min(granted);
                let mut budget = granted - base;
                let start = wanting_ranges[i][0] as usize;
                let end = next.map_or(cpu_wanting.len(), |r| r[0] as usize);
                let wanting = &mut cpu_wanting[start..end];
                let cstart = cohort_ranges[i][0] as usize;
                let cend = cnext.map_or(cohort_cpu_wanting.len(), |r| r[0] as usize);
                let cwanting = &mut cohort_cpu_wanting[cstart..cend];
                let thread_budget = ctx.dt_secs / slowdowns[i];
                let mut rounds = 0;
                let mut count = wanting.len();
                let mut ccount = cwanting.len();
                let mut members = count as u64;
                for &ci in cwanting.iter() {
                    members += c.cohorts.count[ci as usize];
                }
                while budget > 1e-12 && members > 0 && rounds < 32 {
                    rounds += 1;
                    let share = budget / members as f64;
                    let mut keep = 0usize;
                    for idx in 0..count {
                        let r = wanting[idx];
                        let inflight = &mut c.in_flight[r as usize];
                        let need = inflight.cpu_remaining.min(thread_budget);
                        let take = share.min(need);
                        inflight.cpu_remaining = (inflight.cpu_remaining - take).max(0.0);
                        budget -= take;
                        if inflight.wants_cpu() && take >= need - 1e-12 {
                            // hit its single-thread (stall-limited) bound
                        } else if inflight.wants_cpu() {
                            wanting[keep] = r;
                            keep += 1;
                        }
                    }
                    members -= (count - keep) as u64;
                    let mut ckeep = 0usize;
                    for idx in 0..ccount {
                        let ci = cwanting[idx];
                        let n = c.cohorts.count[ci as usize];
                        let rem = c.cohorts.cpu_rem[ci as usize];
                        let need = rem.min(thread_budget);
                        let take = share.min(need);
                        let rem = (rem - take).max(0.0);
                        c.cohorts.cpu_rem[ci as usize] = rem;
                        budget -= take * n as f64;
                        if rem > 1e-12 && take >= need - 1e-12 {
                            members -= n; // all members hit the thread bound
                        } else if rem > 1e-12 {
                            cwanting[ckeep] = ci;
                            ckeep += 1;
                        } else {
                            members -= n;
                        }
                    }
                    if keep == count && ckeep == ccount {
                        break;
                    }
                    count = keep;
                    ccount = ckeep;
                }
            }
        }

        // Network.
        let granted = net_grants[i].megabits;
        let mut used_net = 0.0;
        if granted > 0.0 {
            used_net = granted;
            c.megabits_sent_total += granted;
            if !c.spec().antagonist {
                let mut budget = granted;
                let start = wanting_ranges[i][1] as usize;
                let end = next.map_or(net_wanting.len(), |r| r[1] as usize);
                let wanting = &mut net_wanting[start..end];
                let cstart = cohort_ranges[i][1] as usize;
                let cend = cnext.map_or(cohort_net_wanting.len(), |r| r[1] as usize);
                let cwanting = &mut cohort_net_wanting[cstart..cend];
                let mut rounds = 0;
                let mut count = wanting.len();
                let mut ccount = cwanting.len();
                let mut members = count as u64;
                for &ci in cwanting.iter() {
                    members += c.cohorts.count[ci as usize];
                }
                while budget > 1e-9 && members > 0 && rounds < 32 {
                    rounds += 1;
                    let share = budget / members as f64;
                    let mut keep = 0usize;
                    for idx in 0..count {
                        let r = wanting[idx];
                        let inflight = &mut c.in_flight[r as usize];
                        let take = share.min(inflight.megabits_remaining);
                        inflight.megabits_remaining -= take;
                        budget -= take;
                        if inflight.wants_net() {
                            wanting[keep] = r;
                            keep += 1;
                        }
                    }
                    members -= (count - keep) as u64;
                    let mut ckeep = 0usize;
                    for idx in 0..ccount {
                        let ci = cwanting[idx];
                        let n = c.cohorts.count[ci as usize];
                        let take = share.min(c.cohorts.net_rem[ci as usize]);
                        c.cohorts.net_rem[ci as usize] -= take;
                        budget -= take * n as f64;
                        if c.cohorts.net_rem[ci as usize] > 1e-9 {
                            cwanting[ckeep] = ci;
                            ckeep += 1;
                        } else {
                            members -= n;
                        }
                    }
                    if keep == count && ckeep == ccount {
                        break;
                    }
                    count = keep;
                    ccount = ckeep;
                }
            }
        }

        // Disk.
        let granted = disk_grants[i].granted;
        let mut used_disk = 0.0;
        if granted > 0.0 {
            used_disk = granted;
            let mut budget = granted;
            let start = wanting_ranges[i][2] as usize;
            let end = next.map_or(disk_wanting.len(), |r| r[2] as usize);
            let wanting = &mut disk_wanting[start..end];
            let cstart = cohort_ranges[i][2] as usize;
            let cend = cnext.map_or(cohort_disk_wanting.len(), |r| r[2] as usize);
            let cwanting = &mut cohort_disk_wanting[cstart..cend];
            let mut rounds = 0;
            let mut count = wanting.len();
            let mut ccount = cwanting.len();
            let mut members = count as u64;
            for &ci in cwanting.iter() {
                members += c.cohorts.count[ci as usize];
            }
            while budget > 1e-9 && members > 0 && rounds < 32 {
                rounds += 1;
                let share = budget / members as f64;
                let mut keep = 0usize;
                for idx in 0..count {
                    let r = wanting[idx];
                    let inflight = &mut c.in_flight[r as usize];
                    let take = share.min(inflight.disk_remaining);
                    inflight.disk_remaining -= take;
                    budget -= take;
                    if inflight.wants_disk() {
                        wanting[keep] = r;
                        keep += 1;
                    }
                }
                members -= (count - keep) as u64;
                let mut ckeep = 0usize;
                for idx in 0..ccount {
                    let ci = cwanting[idx];
                    let n = c.cohorts.count[ci as usize];
                    let take = share.min(c.cohorts.disk_rem[ci as usize]);
                    c.cohorts.disk_rem[ci as usize] -= take;
                    budget -= take * n as f64;
                    if c.cohorts.disk_rem[ci as usize] > 1e-9 {
                        cwanting[ckeep] = ci;
                        ckeep += 1;
                    } else {
                        members -= n;
                    }
                }
                if keep == count && ckeep == ccount {
                    break;
                }
                count = keep;
                ccount = ckeep;
            }
        }

        // Completions, timeouts, stats.
        let replicas = ctx
            .replica_counts
            .get(c.service().as_usize())
            .copied()
            .unwrap_or(0)
            .max(1) as usize;
        // Stateless fan-out (log) plus, for stateful services, a linear
        // state-synchronization cost per extra replica.
        let fanout = ctx.config.overheads.fanout_latency_secs(replicas)
            + c.spec().coordination_secs * replicas.saturating_sub(1) as f64;
        let id = c.id();
        let mut completed_this_tick = 0u64;
        // Per-request memory of the survivors, accumulated in the order
        // the scan settles them — which is their final index order, so the
        // sum is bit-identical to a fresh `resident_mem` sweep afterwards.
        let mut req_mem = 0.0;
        let mut r = 0;
        while r < c.in_flight.len() {
            let (done, timed_out, mem) = {
                let q = &c.in_flight[r];
                let done = q.is_done();
                let timed_out = !done && q.request.deadline() <= ctx.end;
                (done, timed_out, q.request.mem.get())
            };
            if done {
                completed_this_tick += 1;
                let inflight = c.in_flight.swap_remove(r);
                let finished = ctx.end + SimDuration::from_secs(fanout);
                completed.push(CompletedRequest {
                    id: inflight.id,
                    count: 1,
                    service: inflight.request.service,
                    container: id,
                    arrival: inflight.request.arrival,
                    admitted: inflight.admitted,
                    finished,
                    response_time: finished.saturating_since(inflight.request.arrival),
                });
            } else if timed_out {
                let inflight = c.in_flight.swap_remove(r);
                failed.push(FailedRequest {
                    id: inflight.id,
                    count: 1,
                    service: inflight.request.service,
                    container: Some(id),
                    arrival: inflight.request.arrival,
                    failed_at: ctx.end,
                    kind: FailureKind::Timeout,
                });
            } else {
                req_mem += mem;
                r += 1;
            }
        }
        // Cohort settlement: every member of a cohort finishes (or times
        // out) together, so a whole cohort settles as one aggregate
        // record.
        let mut ci = 0;
        while ci < c.cohorts.len() {
            let t = &c.cohorts;
            let done = t.cpu_rem[ci] <= 1e-12 && t.net_rem[ci] <= 1e-9 && t.disk_rem[ci] <= 1e-9;
            let timed_out = !done && t.deadline[ci] <= ctx.end;
            if done {
                let (first, n) = t.id_range(ci);
                completed_this_tick += n;
                let finished = ctx.end + SimDuration::from_secs(fanout);
                completed.push(CompletedRequest {
                    id: first,
                    count: n,
                    service: t.service[ci],
                    container: id,
                    arrival: t.arrival[ci],
                    admitted: t.admitted[ci],
                    finished,
                    response_time: finished.saturating_since(t.arrival[ci]),
                });
                c.cohorts.swap_remove(ci);
            } else if timed_out {
                let (first, n) = t.id_range(ci);
                failed.push(FailedRequest {
                    id: first,
                    count: n,
                    service: t.service[ci],
                    container: Some(id),
                    arrival: t.arrival[ci],
                    failed_at: ctx.end,
                    kind: FailureKind::Timeout,
                });
                c.cohorts.swap_remove(ci);
            } else {
                req_mem += t.mem_per[ci] * t.count[ci] as f64;
                ci += 1;
            }
        }
        c.record_throughput(completed_this_tick, ctx.dt_secs, THROUGHPUT_TAU_SECS);
        let resident = c.resident_mem_with(req_mem);
        let in_flight = c.in_flight.len() + c.cohorts.members() as usize;
        c.window.record_tick(
            ctx.dt_secs,
            used_cpu,
            used_net,
            used_disk,
            resident,
            in_flight,
            swapping[i],
        );
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mbps;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn ready_spec(svc: u32) -> ContainerSpec {
        ContainerSpec::new(ServiceId::new(svc)).with_startup_secs(0.0)
    }

    fn run_until_drained(
        cluster: &mut Cluster,
        start: SimTime,
        max_secs: f64,
    ) -> (Vec<CompletedRequest>, Vec<FailedRequest>) {
        let mut completed = Vec::new();
        let mut failed = Vec::new();
        let dt = SimDuration::from_millis(100);
        let mut now = start;
        let horizon = start + SimDuration::from_secs(max_secs);
        while now < horizon {
            let rep = cluster.advance(now, dt);
            completed.extend(rep.completed);
            failed.extend(rep.failed);
            now += dt;
            if cluster.containers().all(|c| c.in_flight_count() == 0) {
                break;
            }
        }
        (completed, failed)
    }

    #[test]
    fn single_cpu_request_completes_in_expected_time() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                node,
                ready_spec(0).with_cpu_request(Cores(1.0)),
                SimTime::ZERO,
            )
            .unwrap();
        let req = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.45);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, failed) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(failed.len(), 0);
        assert_eq!(completed.len(), 1);
        // 0.45 core-seconds on an uncontended node, single-thread bound:
        // needs 5 ticks of 100 ms -> finishes at 0.5 s.
        let rt = completed[0].response_time.as_secs();
        assert!((0.45..0.65).contains(&rt), "response time {rt}");
    }

    #[test]
    fn contention_with_antagonist_slows_service() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small().with_cores(Cores(1.0)));
        let ctr = cl
            .start_container(
                node,
                ready_spec(0).with_cpu_request(Cores(1.0)),
                SimTime::ZERO,
            )
            .unwrap();
        let _hog = cl
            .start_container(
                node,
                ready_spec(9).with_cpu_request(Cores(1.0)).antagonist(),
                SimTime::ZERO,
            )
            .unwrap();
        let req = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.2);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(completed.len(), 1);
        // Equal shares halve throughput; contention adds ~17% more.
        let rt = completed[0].response_time.as_secs();
        assert!(rt > 0.4, "expected >2x slowdown, got {rt}");
    }

    #[test]
    fn removal_aborts_in_flight_requests() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let failures = cl.remove_container(ctr, SimTime::from_secs(1.0)).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FailureKind::Removal);
        // Second removal errors.
        assert!(cl.remove_container(ctr, SimTime::from_secs(1.0)).is_err());
        // Node no longer lists it, service has no replicas.
        assert!(cl.service_replicas(ServiceId::new(0)).is_empty());
    }

    #[test]
    fn starting_containers_reject_requests() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                node,
                ContainerSpec::new(ServiceId::new(0)).with_startup_secs(5.0),
                SimTime::ZERO,
            )
            .unwrap();
        let req = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.1);
        assert_eq!(
            cl.admit_request(ctr, req.clone(), SimTime::from_secs(1.0)),
            Err(ClusterError::NotAccepting(ctr))
        );
        assert!(cl.admit_request(ctr, req, SimTime::from_secs(5.0)).is_ok());
    }

    #[test]
    fn queue_cap_produces_queue_full() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0).with_queue_cap(2), SimTime::ZERO)
            .unwrap();
        let mk = || Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 10.0);
        assert!(cl.admit_request(ctr, mk(), SimTime::ZERO).is_ok());
        assert!(cl.admit_request(ctr, mk(), SimTime::ZERO).is_ok());
        assert_eq!(
            cl.admit_request(ctr, mk(), SimTime::ZERO),
            Err(ClusterError::QueueFull(ctr))
        );
    }

    #[test]
    fn timeouts_become_timeout_failures() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small().with_cores(Cores(0.1)));
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        let req = Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 50.0)
            .with_timeout(SimDuration::from_secs(1.0));
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, failed) = run_until_drained(&mut cl, SimTime::ZERO, 5.0);
        assert!(completed.is_empty());
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].kind, FailureKind::Timeout);
    }

    #[test]
    fn swapping_slows_progress_dramatically() {
        let run = |mem_limit: f64| -> f64 {
            let mut cl = cluster();
            let node = cl.add_node(NodeSpec::uniform_worker());
            let ctr = cl
                .start_container(
                    node,
                    ready_spec(0)
                        .with_cpu_request(Cores(4.0))
                        .with_mem_limit(MemMb(mem_limit))
                        .with_base_overhead(Cores(0.0), MemMb(64.0)),
                    SimTime::ZERO,
                )
                .unwrap();
            // 200 MB in-flight footprint.
            let req = Request::new(ServiceId::new(0), SimTime::ZERO, 0.5, MemMb(200.0), 0.0);
            cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
            let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 60.0);
            completed[0].response_time.as_secs()
        };
        let fast = run(512.0); // no swap
        let slow = run(128.0); // 136/264 swapped
        assert!(
            slow > fast * 5.0,
            "swap should dominate: no-swap {fast}s vs swap {slow}s"
        );
    }

    #[test]
    fn network_request_completes_at_nic_rate() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small().with_nic(Mbps(100.0)));
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        // 50 megabits at 100 Mb/s -> 0.5 s.
        let req = Request::net_bound(ServiceId::new(0), SimTime::ZERO, 50.0);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(completed.len(), 1);
        let rt = completed[0].response_time.as_secs();
        assert!((0.5..0.8).contains(&rt), "response time {rt}");
    }

    #[test]
    fn tc_cap_throttles_egress() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small().with_nic(Mbps(100.0)));
        let ctr = cl
            .start_container(node, ready_spec(0).with_net_cap(Mbps(10.0)), SimTime::ZERO)
            .unwrap();
        let req = Request::net_bound(ServiceId::new(0), SimTime::ZERO, 10.0);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        let rt = completed[0].response_time.as_secs();
        assert!(
            rt >= 1.0,
            "capped at 10 Mb/s, 10 Mb should take ≥1 s, got {rt}"
        );
    }

    #[test]
    fn disk_request_completes_at_disk_rate() {
        let mut cl = cluster();
        // 300 Mb/s disks (NodeSpec::small): 60 megabits -> ~0.2 s.
        let node = cl.add_node(NodeSpec::small());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        let req = Request::disk_bound(ServiceId::new(0), SimTime::ZERO, 60.0);
        cl.admit_request(ctr, req, SimTime::ZERO).unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(completed.len(), 1);
        let rt = completed[0].response_time.as_secs();
        assert!((0.2..0.5).contains(&rt), "response time {rt}");
        // Disk usage shows up in the stats window.
        let usage = cl.node_usage_and_reset(node).unwrap();
        assert!(usage.containers[0].disk_used.get() > 0.0);
    }

    #[test]
    fn disk_pool_is_shared_fairly() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small()); // 300 Mb/s disk
        let a = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        let b = cl
            .start_container(node, ready_spec(1), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            a,
            Request::disk_bound(ServiceId::new(0), SimTime::ZERO, 150.0),
            SimTime::ZERO,
        )
        .unwrap();
        cl.admit_request(
            b,
            Request::disk_bound(ServiceId::new(1), SimTime::ZERO, 150.0),
            SimTime::ZERO,
        )
        .unwrap();
        let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(completed.len(), 2);
        // Each got ~half the pool: 150 Mb at 150 Mb/s -> ~1 s each.
        for done in &completed {
            let rt = done.response_time.as_secs();
            assert!((0.9..1.3).contains(&rt), "response time {rt}");
        }
    }

    #[test]
    fn docker_update_changes_shares_live() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.update_container(ctr, Cores(2.0), MemMb(1024.0)).unwrap();
        let c = cl.container(ctr).unwrap();
        assert_eq!(c.spec().cpu_request, Cores(2.0));
        assert_eq!(c.spec().mem_limit, MemMb(1024.0));
        assert!(cl
            .update_container(ContainerId::new(99), Cores(1.0), MemMb(1.0))
            .is_err());
    }

    #[test]
    fn free_resources_subtract_live_containers() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let (cpu0, mem0) = cl.free_resources(node).unwrap();
        assert_eq!(cpu0, Cores(4.0));
        assert_eq!(mem0, MemMb(8192.0));
        let ctr = cl
            .start_container(
                node,
                ready_spec(0)
                    .with_cpu_request(Cores(1.5))
                    .with_mem_limit(MemMb(512.0)),
                SimTime::ZERO,
            )
            .unwrap();
        let (cpu1, mem1) = cl.free_resources(node).unwrap();
        assert_eq!(cpu1, Cores(2.5));
        assert_eq!(mem1, MemMb(7680.0));
        cl.remove_container(ctr, SimTime::ZERO).unwrap();
        let (cpu2, _) = cl.free_resources(node).unwrap();
        assert_eq!(cpu2, Cores(4.0));
    }

    #[test]
    fn usage_windows_report_cpu_and_reset() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                node,
                ready_spec(0).with_cpu_request(Cores(1.0)),
                SimTime::ZERO,
            )
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            cl.advance(now, dt);
            now += dt;
        }
        let usage = cl.node_usage_and_reset(node).unwrap();
        assert_eq!(usage.containers.len(), 1);
        // One single-threaded request on an idle 4-core box: ~1 core.
        let cpu = usage.containers[0].cpu_used.get();
        assert!((0.9..=1.1).contains(&cpu), "cpu {cpu}");
        // Window reset: a fresh snapshot shows zero rates.
        let again = cl.node_usage_and_reset(node).unwrap();
        assert_eq!(again.containers[0].cpu_used, Cores::ZERO);
    }

    #[test]
    fn service_replicas_excludes_antagonists_and_other_services() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let a = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        let _b = cl
            .start_container(node, ready_spec(1), SimTime::ZERO)
            .unwrap();
        let _hog = cl
            .start_container(node, ready_spec(0).antagonist(), SimTime::ZERO)
            .unwrap();
        assert_eq!(cl.service_replicas(ServiceId::new(0)), vec![a]);
    }

    #[test]
    fn advance_with_zero_dt_is_a_no_op() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 1.0),
            SimTime::ZERO,
        )
        .unwrap();
        let rep = cl.advance(SimTime::ZERO, SimDuration::ZERO);
        assert!(rep.completed.is_empty() && rep.failed.is_empty());
        assert_eq!(cl.container(ctr).unwrap().in_flight_count(), 1);
    }

    #[test]
    fn unknown_ids_error() {
        let mut cl = cluster();
        assert!(cl.free_resources(NodeId::new(0)).is_err());
        assert!(cl.node_usage_and_reset(NodeId::new(0)).is_err());
        assert!(cl
            .start_container(
                NodeId::new(0),
                ContainerSpec::new(ServiceId::new(0)),
                SimTime::ZERO
            )
            .is_err());
        assert!(cl
            .admit_request(
                ContainerId::new(0),
                Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.1),
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn stateful_services_pay_per_replica_coordination() {
        let run = |replicas: usize, coordination: f64| -> f64 {
            let mut cl = cluster();
            let mut ctrs = Vec::new();
            for _ in 0..replicas {
                let node = cl.add_node(NodeSpec::uniform_worker());
                let ctr = cl
                    .start_container(
                        node,
                        ready_spec(0).with_coordination_secs(coordination),
                        SimTime::ZERO,
                    )
                    .unwrap();
                ctrs.push(ctr);
            }
            cl.admit_request(
                ctrs[0],
                Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.05),
                SimTime::ZERO,
            )
            .unwrap();
            let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
            completed[0].response_time.as_secs()
        };
        let single = run(1, 0.05);
        let quad_stateless = run(4, 0.0);
        let quad_stateful = run(4, 0.05);
        // 3 extra replicas at 50 ms sync each = +150 ms over stateless.
        assert!((quad_stateful - quad_stateless - 0.15).abs() < 1e-6);
        assert!(single < quad_stateful);
    }

    #[test]
    fn oversubscription_shows_negative_free_resources() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::small()); // 2 cores
        for svc in 0..3 {
            cl.start_container(
                node,
                ready_spec(svc).with_cpu_request(Cores(1.0)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let (cpu, _) = cl.free_resources(node).unwrap();
        assert!(cpu.get() < 0.0, "docker-style oversubscription: {cpu}");
    }

    #[test]
    fn net_cap_update_errors_on_removed_container() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.update_net_cap(ctr, Some(Mbps(10.0))).unwrap();
        cl.remove_container(ctr, SimTime::ZERO).unwrap();
        assert!(cl.update_net_cap(ctr, None).is_err());
        assert!(cl.update_container(ctr, Cores(1.0), MemMb(1.0)).is_err());
    }

    #[test]
    fn fanout_latency_grows_with_replica_count() {
        let run = |replicas: usize| -> f64 {
            let mut cl = cluster();
            let mut first = None;
            for _ in 0..replicas {
                let node = cl.add_node(NodeSpec::uniform_worker());
                let ctr = cl
                    .start_container(node, ready_spec(0), SimTime::ZERO)
                    .unwrap();
                first.get_or_insert(ctr);
            }
            cl.admit_request(
                first.unwrap(),
                Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 0.05),
                SimTime::ZERO,
            )
            .unwrap();
            let (completed, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
            completed[0].response_time.as_secs()
        };
        // Same request, same work; only the replica count (and thus the
        // distribution/fan-out latency) differs.
        assert!(run(8) > run(1));
    }

    #[test]
    fn antagonist_consumes_cpu_in_stats() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let hog = cl
            .start_container(
                node,
                ready_spec(9).with_cpu_request(Cores(4.0)).antagonist(),
                SimTime::ZERO,
            )
            .unwrap();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            cl.advance(now, dt);
            now += dt;
        }
        let usage = cl.container_usage(hog).unwrap();
        assert!(usage.cpu_used.get() > 3.5, "hog used {:?}", usage.cpu_used);
        // Antagonists never hold requests.
        assert_eq!(usage.in_flight, 0);
    }

    #[test]
    fn throughput_ewma_tracks_served_rate() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                node,
                ready_spec(0).with_mem_per_rps(MemMb(10.0)),
                SimTime::ZERO,
            )
            .unwrap();
        // Serve ~10 req/s of tiny requests for 60 s.
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for tick in 0..600 {
            if tick % 10 == 0 {
                cl.admit_request(
                    ctr,
                    Request::new(ServiceId::new(0), now, 0.01, MemMb(1.0), 0.0),
                    now,
                )
                .unwrap();
            }
            cl.advance(now, dt);
            now += dt;
        }
        let c = cl.container(ctr).unwrap();
        assert!(
            (0.5..2.0).contains(&c.throughput_rps()),
            "ewma {:.2} should approximate 1 req/s",
            c.throughput_rps()
        );
        // The working set follows: base 64 + ~10 MB.
        let resident = c.resident_mem().get();
        assert!((70.0..85.0).contains(&resident), "resident {resident}");
    }

    #[test]
    fn decommission_removes_containers_and_rejects_future_use() {
        let mut cl = cluster();
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        let n1 = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(n0, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            ctr,
            Request::cpu_bound(ServiceId::new(0), SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let failures = cl.decommission_node(n0, SimTime::from_secs(1.0)).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FailureKind::Removal);
        // The node is gone from every view.
        assert!(cl.node(n0).is_none());
        assert_eq!(cl.node_count(), 1);
        assert!(cl.free_resources(n0).is_err());
        assert!(cl
            .start_container(n0, ready_spec(1), SimTime::from_secs(2.0))
            .is_err());
        // Double decommission errors; other nodes unaffected.
        assert!(cl.decommission_node(n0, SimTime::from_secs(2.0)).is_err());
        assert!(cl
            .start_container(n1, ready_spec(1), SimTime::from_secs(2.0))
            .is_ok());
    }

    #[test]
    fn nodes_can_be_commissioned_at_runtime() {
        let mut cl = cluster();
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        assert_eq!(cl.node_count(), 1);
        // Simulate time passing, then grow the cluster.
        cl.advance(SimTime::ZERO, SimDuration::from_millis(100));
        let n1 = cl.add_node(NodeSpec::small());
        assert_eq!(cl.node_count(), 2);
        assert_ne!(n0, n1);
        let ctr = cl
            .start_container(n1, ready_spec(0), SimTime::from_secs(1.0))
            .unwrap();
        assert_eq!(cl.container(ctr).unwrap().node(), n1);
    }

    #[test]
    fn invalid_spec_rejected_at_start() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let bad = ContainerSpec::new(ServiceId::new(0)).with_cpu_request(Cores(-1.0));
        assert!(matches!(
            cl.start_container(node, bad, SimTime::ZERO),
            Err(ClusterError::InvalidSpec(_))
        ));
    }

    // --- Idle fast path ------------------------------------------------

    #[test]
    fn idle_grants_match_full_allocator_bit_for_bit() {
        let cases: Vec<(f64, Vec<(f64, f64)>)> = vec![
            // (capacity, [(demand, weight)]) — all feasible in round 1.
            (0.4, vec![(0.002, 1.0), (0.002, 1.0)]),
            (0.4, vec![(0.002, 0.5), (0.004, 2.0), (0.0, 1.0)]),
            // Zero-weight demander served by phase 2.
            (0.4, vec![(0.002, 1.0), (0.003, 0.0)]),
            // Only zero-weight demanders.
            (0.1, vec![(0.05, 0.0), (0.2, 0.0)]),
            // Nothing demands anything.
            (0.4, vec![(0.0, 1.0), (0.0, 0.0)]),
            // Capacity below the allocator's epsilon.
            (0.0, vec![(0.002, 1.0)]),
        ];
        for (capacity, spec) in cases {
            let demands: Vec<CpuDemand> = spec
                .iter()
                .enumerate()
                .map(|(i, &(d, w))| CpuDemand::new(ContainerId::new(i as u32), d, w))
                .collect();
            let mut fast = vec![CpuGrant {
                container: ContainerId::new(99),
                granted: -1.0,
            }];
            assert!(
                idle_grants(capacity, &demands, &mut fast),
                "case {spec:?} should be round-1 feasible"
            );
            let reference = CpuAllocator::allocate(capacity, &demands);
            assert_eq!(fast.len(), reference.len());
            for (f, r) in fast.iter().zip(&reference) {
                assert_eq!(f.container, r.container);
                assert_eq!(
                    f.granted.to_bits(),
                    r.granted.to_bits(),
                    "grant mismatch for {spec:?}"
                );
            }
        }

        // A demand exceeding its round-1 fair share must be rejected so
        // the slow path (which iterates) runs instead.
        let demands = vec![
            CpuDemand::new(ContainerId::new(0), 0.35, 1.0),
            CpuDemand::new(ContainerId::new(1), 0.002, 1.0),
        ];
        let mut fast = Vec::new();
        assert!(!idle_grants(0.4, &demands, &mut fast));
    }

    #[test]
    fn idle_ticks_complete_nothing_and_charge_base_cpu() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let weighted = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        // A zero-weight container still draws its base tax from leftover
        // capacity (the allocator's phase 2).
        let zero_weight = cl
            .start_container(
                node,
                ready_spec(1).with_cpu_request(Cores(0.0)),
                SimTime::ZERO,
            )
            .unwrap();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            let report = cl.advance(now, dt);
            assert!(report.completed.is_empty() && report.failed.is_empty());
            now += dt;
        }
        let usage = cl.node_usage_and_reset(node).unwrap();
        for c in &usage.containers {
            // Both idle containers burn exactly their 0.02-core base tax.
            assert!(
                (c.cpu_used.get() - 0.02).abs() < 1e-12,
                "container {:?} used {}",
                c.container,
                c.cpu_used
            );
            assert_eq!(c.in_flight, 0);
            assert!(!c.swapping);
        }
        assert_eq!(usage.containers.len(), 2);
        let _ = (weighted, zero_weight);
    }

    #[test]
    fn idle_ticks_decay_throughput_ewma() {
        let mut cl = cluster();
        let node = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(node, ready_spec(0), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            ctr,
            Request::new(ServiceId::new(0), SimTime::ZERO, 0.05, MemMb(1.0), 0.0),
            SimTime::ZERO,
        )
        .unwrap();
        let (done, _) = run_until_drained(&mut cl, SimTime::ZERO, 10.0);
        assert_eq!(done.len(), 1);
        let busy_rps = cl.container(ctr).unwrap().throughput_rps();
        assert!(busy_rps > 0.0);

        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::from_secs(10.0);
        for _ in 0..200 {
            cl.advance(now, dt);
            now += dt;
        }
        // The node parks once idle; replay the pending idle ticks so
        // the EWMA read below sees the decayed value.
        cl.flush_pending();
        let idle_rps = cl.container(ctr).unwrap().throughput_rps();
        assert!(
            idle_rps < busy_rps * 0.5,
            "EWMA should decay while idle: {busy_rps} -> {idle_rps}"
        );
    }
}
